"""LDAP-style scoped search.

The paper's Section 1 describes directory retrieval as matching "a
boolean combination of conditions on individual attributes, the
retrieval typically scoped to some subtree of the hierarchy".  This
module provides exactly that operation over
:class:`~repro.model.instance.DirectoryInstance`: the three standard
LDAP scopes (``base``, ``one``, ``sub``) plus ``children`` (subtree
minus the base, LDAP's ``subordinateSubtree``), an RFC 2254 filter, and
an optional size limit.

This rounds out the query layer for application use; the legality
machinery itself uses the algebra in :mod:`repro.query.ast` directly.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, List, Optional, Union

from repro.errors import QueryError
from repro.model.dn import DN
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.query.evaluator import FilterPlanner
from repro.query.filter_parser import parse_filter
from repro.query.filters import TRUE_FILTER, Filter

__all__ = ["SearchScope", "search"]


class SearchScope(str, Enum):
    """The LDAP search scopes."""

    #: Just the base entry.
    BASE = "base"
    #: Direct children of the base entry (LDAP ``singleLevel``).
    ONE = "one"
    #: The base entry and its whole subtree (LDAP ``wholeSubtree``).
    SUB = "sub"
    #: The subtree *excluding* the base (LDAP ``subordinateSubtree``).
    CHILDREN = "children"


def _in_scope(
    instance: DirectoryInstance,
    base: Optional[Entry],
    scope: SearchScope,
    entry: Entry,
) -> bool:
    """O(1) scope-membership test (interval numbering for subtree
    scopes) — lets index-planned searches visit only their candidates."""
    if base is None:
        if scope is SearchScope.BASE:
            return False
        if scope is SearchScope.ONE:
            return instance.parent_id(entry.eid) is None
        return True
    if scope is SearchScope.BASE:
        return entry.eid == base.eid
    if scope is SearchScope.ONE:
        return instance.parent_id(entry.eid) == base.eid
    if scope is SearchScope.SUB:
        return entry.eid == base.eid or instance.is_ancestor(base, entry)
    return instance.is_ancestor(base, entry)


def _candidates(
    instance: DirectoryInstance,
    base: Optional[Entry],
    scope: SearchScope,
) -> Iterator[Entry]:
    if base is None:
        # The empty base denotes the conceptual root above all entries.
        if scope is SearchScope.BASE:
            return
        if scope is SearchScope.ONE:
            yield from instance.roots()
            return
        for entry in instance:
            yield entry
        return
    if scope is SearchScope.BASE:
        yield base
    elif scope is SearchScope.ONE:
        yield from instance.children_of(base)
    elif scope is SearchScope.SUB:
        yield base
        yield from instance.descendants_of(base)
    else:
        yield from instance.descendants_of(base)


def search(
    instance: DirectoryInstance,
    base: Union[DN, str, None] = None,
    scope: Union[SearchScope, str] = SearchScope.SUB,
    filter: Union[Filter, str, None] = None,
    size_limit: Optional[int] = None,
) -> List[Entry]:
    """Scoped LDAP search.

    Parameters
    ----------
    base:
        DN (or DN string) of the search base; ``None`` or the empty DN
        searches from the conceptual root.
    scope:
        A :class:`SearchScope` or its string value.
    filter:
        A :class:`~repro.query.filters.Filter`, an RFC 2254 string, or
        ``None`` for match-all.
    size_limit:
        Stop after this many matches (LDAP ``sizeLimit``).

    Returns entries in document order.

    Raises
    ------
    QueryError
        If the base DN does not name an entry.
    """
    scope = SearchScope(scope)
    if filter is None:
        predicate: Filter = TRUE_FILTER
    elif isinstance(filter, str):
        predicate = parse_filter(filter)
    else:
        predicate = filter

    base_entry: Optional[Entry] = None
    if base is not None and str(base):
        base_entry = instance.find(base)
        if base_entry is None:
            raise QueryError(f"search base {base!s} does not exist")

    # Index-aware planning: when the instance carries secondary indexes,
    # bound the scan by a candidate superset first.  The residual
    # ``matches`` pass below still judges every candidate, so planner
    # output is byte-identical to the naive scan — only cheaper.
    planned: Optional[set] = None
    indexes = getattr(instance, "indexes", None)
    if indexes is not None and predicate is not TRUE_FILTER:
        planned = FilterPlanner(indexes).plan(predicate)

    results: List[Entry] = []
    if planned is not None:
        # Visit only the candidates, in document order — O(|C| log |C|)
        # plus one O(1) scope test each, not a pass over |D|.
        for eid in sorted(
            planned, key=lambda eid: instance.interval_of(eid)[0]
        ):
            entry = instance.entry(eid)
            if not _in_scope(instance, base_entry, scope, entry):
                continue
            if predicate.matches(entry):
                results.append(entry)
                if size_limit is not None and len(results) >= size_limit:
                    break
        return results
    for entry in _candidates(instance, base_entry, scope):
        if predicate.matches(entry):
            results.append(entry)
            if size_limit is not None and len(results) >= size_limit:
                break
    return results
