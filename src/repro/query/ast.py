"""Hierarchical selection queries — the query algebra of [9].

Section 3.2 of the paper reduces structure-schema legality to queries in
the directory query language of Jagadish et al. (SIGMOD 1999).  The
fragment the reduction needs consists of:

* **atomic selections** ``(filter)`` — all entries matching a filter;
* **hierarchical selections** ``(x F1 F2)`` for an axis ``x`` in
  ``{c, p, d, a}`` — the entries selected by ``F1`` that have at least one
  child / parent / descendant / ancestor selected by ``F2``; and
* the **complement form** ``(σ⁻ F1 F2)``, written ``(? F1 F2)`` in the
  paper — the entries selected by ``F1`` minus those selected by ``F2``.

For incremental legality testing (Figure 5), sub-expressions are annotated
with *evaluation scopes*: the same query shape is evaluated with one
sub-expression restricted to ``∅``, ``Δ``, ``D``, or ``D ± Δ``.  Scopes are
represented as symbolic labels on AST nodes; the evaluator receives a
mapping from labels to entry-id sets.  Unlabelled nodes evaluate over the
whole instance.

``str()`` renders the paper's surface syntax, e.g.::

    (?  (objectClass=orgGroup) (d (objectClass=orgGroup) (objectClass=person)))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.axes import Axis
from repro.query.filters import Filter

__all__ = ["Query", "Select", "HSelect", "Minus", "SCOPE_EMPTY", "SCOPE_OLD", "SCOPE_NEW", "SCOPE_DELTA"]

#: Scope label: evaluate on the empty instance (``∅`` rows of Figure 5).
SCOPE_EMPTY = "empty"
#: Scope label: evaluate on the pre-update instance ``D``.
SCOPE_OLD = "old"
#: Scope label: evaluate on the post-update instance (``D + Δ`` / ``D - Δ``).
SCOPE_NEW = "new"
#: Scope label: evaluate on the inserted/deleted subtree ``Δ``.
SCOPE_DELTA = "delta"


class Query:
    """Base class of the query algebra.  Nodes are immutable."""

    scope: Optional[str]

    def scoped(self, scope: Optional[str]) -> "Query":
        """Return a copy of this node with the given scope label."""
        raise NotImplementedError

    def size(self) -> int:
        """``|Q|`` — the number of AST nodes, used in the ``O(|Q| |D|)``
        complexity accounting of Theorem 3.1."""
        raise NotImplementedError


def _scope_suffix(scope: Optional[str]) -> str:
    if scope is None:
        return ""
    symbol = {
        SCOPE_EMPTY: "∅",
        SCOPE_OLD: "D",
        SCOPE_NEW: "D±Δ",
        SCOPE_DELTA: "Δ",
    }.get(scope, scope)
    return f"[{symbol}]"


@dataclass(frozen=True)
class Select(Query):
    """Atomic selection: all entries matching ``filter`` (within scope)."""

    filter: Filter
    scope: Optional[str] = None

    def scoped(self, scope: Optional[str]) -> "Select":
        return Select(self.filter, scope)

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.filter}{_scope_suffix(self.scope)}"


@dataclass(frozen=True)
class HSelect(Query):
    """Hierarchical selection ``(x outer inner)``: the entries selected by
    ``outer`` that have at least one ``axis``-related entry selected by
    ``inner``."""

    axis: Axis
    outer: Query
    inner: Query
    scope: Optional[str] = None

    def scoped(self, scope: Optional[str]) -> "HSelect":
        return HSelect(self.axis, self.outer, self.inner, scope)

    def size(self) -> int:
        return 1 + self.outer.size() + self.inner.size()

    def __str__(self) -> str:
        return f"({self.axis.value} {self.outer} {self.inner}){_scope_suffix(self.scope)}"


@dataclass(frozen=True)
class Minus(Query):
    """Complement form ``(σ⁻ outer inner)``: entries selected by ``outer``
    and not by ``inner``.  Written ``(? ...)`` in the paper."""

    outer: Query
    inner: Query
    scope: Optional[str] = None

    def scoped(self, scope: Optional[str]) -> "Minus":
        return Minus(self.outer, self.inner, scope)

    def size(self) -> int:
        return 1 + self.outer.size() + self.inner.size()

    def __str__(self) -> str:
        return f"(σ⁻ {self.outer} {self.inner}){_scope_suffix(self.scope)}"
