"""Hierarchical selection queries (the directory query language of [9])."""

from repro.query.ast import (
    SCOPE_DELTA,
    SCOPE_EMPTY,
    SCOPE_NEW,
    SCOPE_OLD,
    HSelect,
    Minus,
    Query,
    Select,
)
from repro.query.evaluator import QueryEvaluator, evaluate
from repro.query.filter_parser import parse_filter
from repro.query.filters import (
    TRUE_FILTER,
    And,
    Approx,
    Equals,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)
from repro.query.optimizer import (
    EMPTY_SELECT,
    OptimizationResult,
    SchemaAwareOptimizer,
)
from repro.query.query_parser import parse_query
from repro.query.search import SearchScope, search
from repro.query.translate import TranslatedCheck, class_selection, translate_element

__all__ = [
    "Query",
    "Select",
    "HSelect",
    "Minus",
    "SCOPE_EMPTY",
    "SCOPE_OLD",
    "SCOPE_NEW",
    "SCOPE_DELTA",
    "QueryEvaluator",
    "evaluate",
    "parse_filter",
    "Filter",
    "Equals",
    "Present",
    "Substring",
    "GreaterOrEqual",
    "LessOrEqual",
    "Approx",
    "And",
    "Or",
    "Not",
    "TRUE_FILTER",
    "TranslatedCheck",
    "class_selection",
    "translate_element",
    "SearchScope",
    "search",
    "parse_query",
    "SchemaAwareOptimizer",
    "OptimizationResult",
    "EMPTY_SELECT",
]
