"""Multi-process differential stress test (ISSUE 4 acceptance).

1 writer + 4 reader processes over ≥200 randomized transactions with
periodic compactions; every position a reader's refresh lands on is
compared — by full-content digest — against the writer's oracle record
for that exact ``(generation, seq)``, and every reader must end at the
writer's final position (catch-up, not sampling).  The heavier
configuration runs under ``-m slow``.
"""

import pytest

from harness.stress import run_stress


def test_stress_differential_oracle(tmp_path):
    results = run_stress(
        str(tmp_path),
        transactions=200,
        readers=4,
        compact_every=50,
        seed=20260806,
    )
    assert len(results) == 4
    # every reader verified a meaningful number of distinct positions
    for result in results:
        assert result["checked"] >= 5
    # compactions really happened under the readers (the interesting part)
    assert any(result["rebootstraps"] > 0 for result in results)


@pytest.mark.slow
def test_stress_differential_oracle_slow(tmp_path):
    # The full-content digest the writer logs per commit is O(|D|), so
    # the stream cost grows quadratically with its length — 600
    # transactions with 6 readers is ~10 minutes of single-core work
    # (the oracle stays affordable while the store triples in size).
    results = run_stress(
        str(tmp_path),
        transactions=600,
        readers=6,
        compact_every=40,
        seed=9,
        deadline_seconds=900,
    )
    assert len(results) == 6
    for result in results:
        assert result["checked"] >= 10
    assert any(result["rebootstraps"] > 0 for result in results)
