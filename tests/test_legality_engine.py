"""Tests for the parallel, memoized legality engine (``CheckSession``).

The engine must be verdict-identical to the sequential checkers under
every configuration — memoized or not, sharded over processes, threads,
or run inline — and its observability counters must account for exactly
the work done.
"""

import pytest

from repro.legality.checker import LegalityChecker
from repro.legality.engine import CheckSession, default_parallelism
from repro.legality.metrics import CheckStats
from repro.updates.incremental import IncrementalChecker
from repro.workloads import generate_whitepages, make_unit_subtree


def verdicts(report):
    """Ordered verdict list — the strongest equality we can assert."""
    return [(v.kind, v.message, v.dn, v.element) for v in report.violations]


def corrupt_some(instance, count=4):
    """Drop a required value from ``count`` person entries."""
    broken = 0
    for eid in sorted(instance.entries_with_class("person")):
        if broken == count:
            break
        entry = instance.entry(eid)
        entry.remove_value("name", next(iter(entry.values("name"))))
        broken += 1
    return instance


class TestVerdictEquivalence:
    def test_sequential_engine_matches_checker(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            assert verdicts(session.check(fig1)) == verdicts(
                LegalityChecker(wp_schema).check(fig1)
            )

    def test_engine_matches_on_violations(self, wp_schema, wp_medium):
        corrupt_some(wp_medium)
        expected = verdicts(LegalityChecker(wp_schema).check(wp_medium))
        assert expected
        with CheckSession(wp_schema) as session:
            assert verdicts(session.check(wp_medium)) == expected
            # warm pass: same verdicts straight from the cache
            assert verdicts(session.check(wp_medium)) == expected

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_pool_paths_match(self, wp_schema, wp_medium, executor):
        corrupt_some(wp_medium)
        expected = verdicts(LegalityChecker(wp_schema).check(wp_medium))
        with CheckSession(
            wp_schema, parallelism=2, executor=executor, min_parallel=1
        ) as session:
            assert verdicts(session.check(wp_medium)) == expected

    def test_naive_structure_strategy(self, wp_schema, fig1):
        # An empty orgUnit violates orgGroup →→ person.
        fig1.add_entry("ou=attLabs,o=att", "ou=empty",
                       ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]})
        with CheckSession(wp_schema, structure="naive") as session:
            report = session.check(fig1)
        assert not report.is_legal
        assert report.structure_violations()

    def test_unknown_structure_rejected(self, wp_schema):
        with pytest.raises(ValueError):
            CheckSession(wp_schema, structure="quantum")

    def test_unmemoized_engine_matches(self, wp_schema, fig1):
        with CheckSession(wp_schema, memoize=False) as session:
            first = session.check(fig1)
            second = session.check(fig1)
        assert verdicts(first) == verdicts(second)
        assert session.cache_size == 0

    def test_checker_parallelism_knob_delegates(self, wp_schema, wp_medium):
        corrupt_some(wp_medium)
        expected = verdicts(LegalityChecker(wp_schema).check(wp_medium))
        checker = LegalityChecker(wp_schema, parallelism=2)
        try:
            assert verdicts(checker.check(wp_medium)) == expected
            assert checker.is_legal(wp_medium) is False
        finally:
            checker.close()

    def test_extras_checked(self, wp_schema_extras, fig1):
        # Section 6.1 extras (uid keys) still run on the engine path.
        expected = verdicts(LegalityChecker(wp_schema_extras).check(fig1))
        with CheckSession(wp_schema_extras) as session:
            assert verdicts(session.check(fig1)) == expected


class TestMemoization:
    def test_second_check_is_all_hits(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            cold = session.check(fig1)
            warm = session.check(fig1)
        assert cold.stats.cache_hits == 0
        assert warm.stats.entries_checked == 0
        assert warm.stats.cache_hits == len(fig1)

    def test_mutation_invalidates_fingerprint(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            session.check(fig1)
            entry = fig1.entry("uid=laks,ou=databases,ou=attLabs,o=att")
            entry.add_value("telephoneNumber", "908-555-0100")
            report = session.check(fig1)
        assert report.stats.entries_checked == 1
        assert report.stats.cache_hits == len(fig1) - 1

    def test_identical_content_checked_once(self, wp_schema, wp_registry):
        # 50 clones of one entry shape -> a single content check.
        from repro.model.instance import DirectoryInstance

        instance = DirectoryInstance(attributes=wp_registry)
        root = instance.add_entry(None, "o=org", ["organization", "top"],
                                  {"o": ["org"]})
        for i in range(50):
            instance.add_entry(root, f"uid=u{i}", ["person", "top"],
                               {"uid": ["same"], "name": ["same name"]})
        with CheckSession(wp_schema) as session:
            report = session.check(instance)
        # the org plus one representative clone
        assert report.stats.entries_checked == 2
        assert session.cache_size == 2

    def test_cached_verdicts_rebind_dns(self, wp_schema, wp_registry):
        # Two entries with identical (illegal) content report their own
        # DNs even though the verdict is computed once.
        from repro.model.instance import DirectoryInstance

        instance = DirectoryInstance(attributes=wp_registry)
        root = instance.add_entry(None, "o=org", ["organization", "top"],
                                  {"o": ["org"]})
        instance.add_entry(root, "uid=a", ["person", "top"], {"uid": ["x"]})
        instance.add_entry(root, "uid=b", ["person", "top"], {"uid": ["x"]})
        with CheckSession(wp_schema) as session:
            report = session.check(instance)
        dns = {v.dn for v in report.violations}
        assert {"uid=a,o=org", "uid=b,o=org"} <= dns

    def test_check_entry_is_memoized(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            entry = fig1.entry("uid=laks,ou=databases,ou=attLabs,o=att")
            assert session.check_entry(entry) == []
            assert session.stats.cache_misses == 1
            assert session.check_entry(entry) == []
            assert session.stats.cache_hits == 1

    def test_clear_cache(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            session.check(fig1)
            assert session.cache_size > 0
            session.clear_cache()
            assert session.cache_size == 0
            assert session.check(fig1).stats.cache_hits == 0

    def test_cache_limit_bounds_memory(self, wp_schema, fig1):
        with CheckSession(wp_schema, cache_limit=3) as session:
            session.check(fig1)
            assert session.cache_size <= 3
            assert session.check(fig1).is_legal

    def test_lru_keeps_hot_verdicts_under_adversarial_stream(
        self, wp_schema, wp_registry
    ):
        # A hot entry re-checked between every one-shot stranger must
        # keep hitting the cache: eviction is LRU, not wholesale.
        from repro.model.instance import DirectoryInstance

        instance = DirectoryInstance(attributes=wp_registry)
        root = instance.add_entry(None, "o=org", ["organization", "top"],
                                  {"o": ["org"]})
        hot = instance.add_entry(root, "uid=hot", ["person", "top"],
                                 {"uid": ["hot"], "name": ["hot one"]})
        with CheckSession(wp_schema, cache_limit=4) as session:
            session.check_entry(hot)
            for i in range(3 * session.cache_limit):
                stranger = instance.add_entry(
                    root, f"uid=s{i}", ["person", "top"],
                    {"uid": [f"s{i}"], "name": [f"stranger {i}"]},
                )
                session.check_entry(stranger)
                before = session.stats.cache_hits
                session.check_entry(hot)
                assert session.stats.cache_hits == before + 1, (
                    f"hot verdict evicted by one-shot stream at step {i}"
                )
                assert session.cache_size <= session.cache_limit


class TestStats:
    def test_report_carries_per_call_stats(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            report = session.check(fig1)
        stats = report.stats
        assert stats.entries_checked == len(fig1)
        assert stats.queries_evaluated > 0
        assert stats.violations == 0
        assert stats.phase_seconds["content"] >= 0
        assert stats.phase_seconds["structure"] >= 0

    def test_session_stats_accumulate(self, wp_schema, fig1):
        with CheckSession(wp_schema) as session:
            session.check(fig1)
            session.check(fig1)
            assert session.stats.entries_checked == len(fig1)
            assert session.stats.cache_hits == len(fig1)

    def test_violation_count_recorded(self, wp_schema, wp_medium):
        corrupt_some(wp_medium, count=3)
        with CheckSession(wp_schema) as session:
            report = session.check(wp_medium)
        assert report.stats.violations == len(report.violations) == 3

    def test_format_table(self):
        stats = CheckStats(entries_checked=10, cache_hits=90, cache_misses=10)
        stats.phase_seconds["content"] = 0.5
        table = stats.format_table()
        assert "entries content-checked" in table
        assert "cache hit rate" in table
        assert "content" in table

    def test_merge_and_hit_rate(self):
        a = CheckStats(cache_hits=3, cache_misses=1)
        b = CheckStats(cache_hits=1, cache_misses=3, workers=4)
        a.merge(b)
        assert a.cache_hits == 4 and a.cache_misses == 4
        assert a.hit_rate == pytest.approx(0.5)
        assert a.workers == 4

    def test_parallel_stats_record_pool_shape(self, wp_schema, wp_medium):
        with CheckSession(
            wp_schema, parallelism=2, executor="thread", min_parallel=1
        ) as session:
            report = session.check(wp_medium)
        assert report.stats.workers == 2
        assert report.stats.chunks >= 1


class TestPoolBehaviour:
    def test_min_parallel_keeps_small_checks_inline(self, wp_schema, fig1):
        with CheckSession(wp_schema, parallelism=4, min_parallel=10_000) as session:
            report = session.check(fig1)
            assert session._executor is None  # pool never spun up
        assert report.stats.workers == 0

    def test_close_is_idempotent(self, wp_schema, fig1):
        session = CheckSession(wp_schema, parallelism=2, min_parallel=1)
        session.check(fig1)
        session.close()
        session.close()
        # a closed session still checks (inline or by respawning a pool)
        assert session.check(fig1).is_legal

    def test_default_parallelism_positive(self):
        assert default_parallelism() >= 1


class TestIncrementalIntegration:
    def test_shared_session_makes_recheck_delta_scoped(self, wp_schema):
        instance = generate_whitepages(orgs=2, units_per_level=2, depth=2,
                                       persons_per_unit=2, seed=3)
        total = len(instance)
        with CheckSession(wp_schema) as session:
            guard = IncrementalChecker(wp_schema, instance, session=session)
            # the baseline warmed the cache: a re-check re-runs nothing
            warm = guard.recheck()
            assert warm.is_legal
            assert warm.stats.entries_checked == 0
            assert warm.stats.cache_hits == total

            import random

            delta = make_unit_subtree(random.Random(5), persons=2,
                                      attributes=instance.attributes)
            assert guard.try_insert("o=org0", delta).applied
            # Δ was vetted through the session pre-graft; fingerprints
            # are position-independent, so post-graft it is still cached.
            after = guard.recheck()
            assert after.is_legal
            assert after.stats.entries_checked == 0
            assert after.stats.cache_hits == total + len(delta)

    def test_private_session_by_default(self, wp_schema, wp_medium):
        guard = IncrementalChecker(wp_schema, wp_medium)
        assert isinstance(guard.session, CheckSession)
        assert guard.recheck().is_legal
