"""Example-freshness tests: every script in examples/ must run clean
and print its key takeaways (so documentation can never rot silently)."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_is_complete():
    names = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship seven


def test_quickstart():
    out = run_example("quickstart.py")
    assert "LEGAL" in out
    assert "ILLEGAL" in out  # the violation demo
    assert "orgGroup →→ person" in out or "required" in out


def test_corporate_whitepages():
    out = run_example("corporate_whitepages.py")
    assert "applied: True" in out
    assert "applied: False" in out
    assert "person ↛ top" in out
    assert "dn: o=att" in out  # LDIF export


def test_den_network_policies():
    out = run_example("den_network_policies.py")
    assert "consistent: False" in out  # the authoring mistake
    assert "consistent: True" in out
    assert "∅ □" in out  # the proof
    assert "inventory still legal: True" in out


def test_schema_workbench():
    out = run_example("schema_workbench.py")
    assert out.count("consistent: False") >= 3
    assert "bounded model finder (≤4 entries) agrees: True" in out
    assert "can never be populated" in out  # the lint


def test_semistructured_catalog():
    out = run_example("semistructured_catalog.py")
    assert "country ↛↛ country" in out
    assert "graph checker:     True" in out
    assert "directory checker: True" in out
    assert "tree-shaped: False" in out  # the sharing demo


def test_schema_evolution_and_optimization():
    out = run_example("schema_evolution_and_optimization.py")
    assert "LIGHTWEIGHT" in out
    assert "NEEDS RE-VALIDATION" in out
    assert "because" in out  # optimizer explanations


def test_durable_directory():
    out = run_example("durable_directory.py")
    assert "applied: True" in out
    assert "applied: False" in out
    assert "identical to live state: True" in out
    assert "journal length: 0" in out
