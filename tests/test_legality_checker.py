"""Integration tests for the full legality test (Definition 2.7),
including corruption-sensitivity: every random corruption must be
detected with the right violation kind."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.legality.checker import LegalityChecker
from repro.legality.report import Kind, LegalityReport, Violation
from repro.workloads import corrupt, figure1_instance, generate_whitepages


class TestFullCheck:
    def test_figure1_is_legal(self, wp_schema, fig1):
        report = LegalityChecker(wp_schema).check(fig1)
        assert report.is_legal
        assert str(report) == "legal (no violations)"

    def test_generated_instances_are_legal(self, wp_schema):
        for seed in range(3):
            instance = generate_whitepages(
                orgs=2, units_per_level=2, depth=2, persons_per_unit=2, seed=seed
            )
            assert LegalityChecker(wp_schema).is_legal(instance)

    def test_naive_strategy_equivalent(self, wp_schema, fig1):
        assert LegalityChecker(wp_schema, structure="naive").check(fig1).is_legal

    def test_unknown_strategy_rejected(self, wp_schema):
        with pytest.raises(ValueError):
            LegalityChecker(wp_schema, structure="quantum")

    def test_structure_violation_reported(self, wp_schema, fig1):
        # An empty orgUnit violates orgGroup →→ person.
        fig1.add_entry("ou=attLabs,o=att", "ou=empty",
                       ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]})
        report = LegalityChecker(wp_schema).check(fig1)
        assert not report.is_legal
        assert report.structure_violations()
        assert not report.content_violations()

    def test_content_violation_reported(self, wp_schema, fig1):
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class("packetRouter")
        report = LegalityChecker(wp_schema).check(fig1)
        assert [v.kind for v in report] == [Kind.UNKNOWN_CLASS]

    def test_is_legal_matches_check(self, wp_schema, fig1):
        checker = LegalityChecker(wp_schema)
        assert checker.is_legal(fig1) == checker.check(fig1).is_legal
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class("packetRouter")
        assert checker.is_legal(fig1) == checker.check(fig1).is_legal is False


class TestCorruptionSensitivity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_corruption_detected(self, wp_schema, seed):
        instance = figure1_instance()
        kind, dn = corrupt(instance, wp_schema, seed=seed)
        report = LegalityChecker(wp_schema).check(instance)
        assert not report.is_legal
        assert any(v.kind == kind for v in report), (
            f"expected a {kind} violation at {dn}, got {report}"
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_corruption_detected_on_generated(self, wp_schema, seed):
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=2, seed=seed)
        kind, _ = corrupt(instance, wp_schema, seed=seed)
        assert not LegalityChecker(wp_schema).is_legal(instance)


class TestReportApi:
    def test_merge_and_filters(self):
        a = LegalityReport([Violation(Kind.UNKNOWN_CLASS, "x")])
        b = LegalityReport([Violation(Kind.REQUIRED_RELATIONSHIP, "y")])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(merged.content_violations()) == 1
        assert len(merged.structure_violations()) == 1
        assert merged.of_kind(Kind.UNKNOWN_CLASS)[0].message == "x"
        assert merged.summary() == (1, 1, 0)

    def test_str_lists_violations(self):
        report = LegalityReport([Violation(Kind.UNKNOWN_CLASS, "bad", dn="o=x")])
        text = str(report)
        assert "ILLEGAL" in text and "o=x" in text

    def test_iteration(self):
        report = LegalityReport([Violation(Kind.SINGLE_VALUED, "v")])
        assert [v.kind for v in report] == [Kind.SINGLE_VALUED]


class TestExtrasChecking:
    def test_duplicate_key_detected(self, wp_schema_extras, fig1):
        fig1.add_entry(
            "ou=databases,ou=attLabs,o=att", "uid=laks2",
            ["person", "top"], {"uid": ["laks"], "name": ["imposter"]},
        )
        report = LegalityChecker(wp_schema_extras).check(fig1)
        assert [v.kind for v in report] == [Kind.DUPLICATE_KEY]

    def test_single_valued_violation_detected(self, wp_schema_extras, fig1):
        entry = fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att")
        entry.add_value("uid", "suciu2")
        report = LegalityChecker(wp_schema_extras).check(fig1)
        assert Kind.SINGLE_VALUED in [v.kind for v in report]

    def test_extras_pass_on_legal_instance(self, wp_schema_extras, fig1):
        assert LegalityChecker(wp_schema_extras).check(fig1).is_legal
