"""The failover acceptance gate: kill the primary mid-storm.

Drives ``tests/harness/failover.py``: a write storm through the front
door with the primary killed at a chosen write index, a concurrent
reader holding ``require_seq`` at the latest acknowledged write.  The
front door must promote the most advanced follower and repoint the
write route without ever serving a torn or regressing frontier — and a
``require_seq`` holder never reads older state, before, during, or
after promotion (it gets the typed ``position_lost`` refusal exactly
when its position died with the old primary).

The default lane samples the kill matrix at a stride; ``-m slow`` runs
the kill point at every write index of the storm.
"""

from __future__ import annotations

import pytest

from harness.failover import (
    STORM_WRITES,
    run_failover_scenario,
    run_kill_matrix,
)


class TestFailoverStorm:
    def test_kill_before_first_write(self, tmp_path):
        """The storm opens on a dead primary: every write rides the
        failover window, nothing was ever acknowledged by generation 1
        beyond the bootstrap, so nothing can be lost."""
        results = run_failover_scenario(tmp_path, kill_at=0)
        assert len(results["acked"]) == STORM_WRITES
        assert results["survivors"] >= {
            f"w{i}" for i in range(STORM_WRITES)
        }

    def test_kill_mid_storm(self, tmp_path):
        results = run_failover_scenario(tmp_path, kill_at=STORM_WRITES // 2)
        assert len(results["acked"]) == STORM_WRITES
        # generation bumped exactly once across the storm
        generations = {pos["generation"] for pos in results["acked"]}
        assert generations == {1, 2}

    def test_kill_on_last_write(self, tmp_path):
        results = run_failover_scenario(tmp_path, kill_at=STORM_WRITES - 1)
        assert len(results["acked"]) == STORM_WRITES

    def test_kill_matrix_sampled(self, tmp_path):
        """Default-lane sweep: a stride over the kill matrix (the full
        every-index matrix runs under ``-m slow``)."""
        outcomes = run_kill_matrix(tmp_path, stride=5)
        assert set(outcomes) == set(range(0, STORM_WRITES, 5))
        for results in outcomes.values():
            assert len(results["acked"]) == STORM_WRITES


@pytest.mark.slow
class TestFailoverStormFullMatrix:
    def test_kill_at_every_write_index(self, tmp_path):
        outcomes = run_kill_matrix(tmp_path, stride=1)
        assert set(outcomes) == set(range(STORM_WRITES))
