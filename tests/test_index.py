"""Secondary indexes (:mod:`repro.store.index`).

Two properties matter and both are tested differentially against the
naive scan:

* **Planner soundness.**  The index-aware planner must never change
  what a search returns — only what it costs.  Unplannable shapes
  (``Not``, ``Approx``, the ordering filters, non-string equality)
  fall back cleanly, and randomized filter trees over an instance with
  deliberately mixed-typed values (the ``_comparable`` edges) produce
  byte-identical results with and without indexes.

* **Sidecar lifecycle.**  The persisted postings are a pure cache: a
  missing, stale (wrong generation after compaction), or corrupt
  (byte-flipped anywhere) sidecar must trigger a transparent rebuild —
  never a wrong answer — and a lock-free reader following the WAL
  across a compaction keeps its indexes in agreement with the scan
  oracle.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.model.types import INTEGER
from repro.query.filters import (
    And,
    Approx,
    Equals,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)
from repro.query.evaluator import FilterPlanner
from repro.query.filter_parser import parse_filter
from repro.query.search import search
from repro.store import DirectoryStore
from repro.store.index import (
    AttributeIndexes,
    index_sidecar_path,
    index_sidecar_status,
)
from repro.store.reader import StoreReader
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)


def naive(instance, filt):
    """The scan oracle: the same search with indexes detached."""
    indexes = instance.indexes
    instance.indexes = None
    try:
        return [str(e.dn) for e in search(instance, filter=filt)]
    finally:
        instance.indexes = indexes


def indexed(instance, filt):
    """The planned search, as DN strings for comparison."""
    return [str(e.dn) for e in search(instance, filter=filt)]


@pytest.fixture()
def instance():
    """A generated instance with indexes attached plus a handful of
    entries holding *integer* values, so comparisons between stored
    values and string operands exercise every ``_comparable`` branch."""
    registry = whitepages_registry()
    registry.declare("score", INTEGER)
    built = generate_whitepages(
        orgs=1, units_per_level=2, depth=1, persons_per_unit=3,
        seed=11, registry=registry,
    )
    org = built.find("o=org0")
    for i, score in enumerate((5, 17, 200)):
        built.add_entry(
            org, f"uid=scored{i}", ["person", "top"],
            {"uid": [f"scored{i}"], "name": [f"scored {i}"], "score": [score]},
        )
    AttributeIndexes.attach(built, frozenset({"uid"}), frozenset(), None)
    return built


class TestPlannerFallback:
    def test_unplannable_shapes_return_none(self, instance):
        planner = FilterPlanner(instance.indexes)
        for filt in (
            Approx("name", "scored"),
            GreaterOrEqual("score", 5),
            LessOrEqual("score", "17"),
            Not(Equals("uid", "scored0")),
            Equals("score", 5),  # non-string operand: text probe unsound
            And(()),  # TRUE: everything matches, nothing bounds it
            Present("objectClass"),  # vacuous: every entry has it
        ):
            assert planner.plan(filt) is None, f"expected no plan for {filt}"

    def test_false_filter_plans_empty(self, instance):
        assert FilterPlanner(instance.indexes).plan(Or(())) == set()

    def test_equality_and_substring_plans_bound_the_scan(self, instance):
        planner = FilterPlanner(instance.indexes)
        plan = planner.plan(Equals("uid", "scored1"))
        assert plan is not None and len(plan) == 1
        plan = planner.plan(Substring("uid", initial="scored"))
        assert plan is not None and len(plan) == 3
        # And needs one plannable conjunct; Or needs every disjunct.
        assert planner.plan(
            And((GreaterOrEqual("score", 5), Equals("uid", "scored1")))
        ) is not None
        assert planner.plan(
            Or((GreaterOrEqual("score", 5), Equals("uid", "scored1")))
        ) is None

    def test_fallback_shapes_still_answer_correctly(self, instance):
        for filt, expected in (
            (GreaterOrEqual("score", 17), {"uid=scored1,o=org0", "uid=scored2,o=org0"}),
            (LessOrEqual("score", "17"), {"uid=scored0,o=org0", "uid=scored1,o=org0"}),
            (Approx("name", "SCORED 0"), {"uid=scored0,o=org0"}),
            # A string operand that cannot coerce to int matches nothing.
            (GreaterOrEqual("score", "banana"), set()),
            # A string equality still matches the text form of an int.
            (Equals("score", "200"), {"uid=scored2,o=org0"}),
        ):
            assert set(indexed(instance, filt)) == expected
            assert indexed(instance, filt) == naive(instance, filt)


def _random_filter(rng: random.Random, vocabulary, depth: int):
    """A random filter tree mixing plannable and unplannable shapes."""
    attribute = rng.choice(
        ["uid", "name", "objectClass", "telephoneNumber", "mail", "score"]
    )
    value = rng.choice(vocabulary)
    if depth > 0 and rng.random() < 0.45:
        width = rng.randint(0, 3)
        children = tuple(
            _random_filter(rng, vocabulary, depth - 1) for _ in range(width)
        )
        return rng.choice(
            [And(children), Or(children), Not(_random_filter(rng, vocabulary, 0))]
        )
    kind = rng.randrange(6)
    if kind == 0:
        return Equals(attribute, value)
    if kind == 1:
        return Present(attribute)
    if kind == 2:
        text = value if isinstance(value, str) else str(value)
        middle = len(text) // 2
        return rng.choice(
            [
                Substring(attribute, initial=text[:middle]),
                Substring(attribute, final=text[middle:]),
                Substring(attribute, any_parts=(text[1:-1],) if len(text) > 2 else (text,)),
            ]
        )
    if kind == 3:
        return GreaterOrEqual(attribute, value)
    if kind == 4:
        return LessOrEqual(attribute, value)
    return Approx(attribute, value if isinstance(value, str) else str(value))


class TestPlannerDifferential:
    def test_randomized_trees_match_the_naive_scan(self, instance):
        vocabulary = ["u1", "u2", "scored1", "200", "banana", "", "or", 5, 17, 0]
        for eid in sorted(instance.entry_ids())[:10]:
            vocabulary.extend(
                str(v) for v in instance.entry(eid).values("uid")
            )
        for seed in range(150):
            rng = random.Random(seed)
            filt = _random_filter(rng, vocabulary, depth=3)
            assert indexed(instance, filt) == naive(instance, filt), (
                f"planner diverged from scan for {filt} (seed {seed})"
            )


SIDECAR_FILTERS = (
    "(uid=u1)",
    "(uid=*1*)",
    "(&(objectClass=person)(name=*a*))",
    "(|(uid=u1)(uid=u2))",
    "(telephoneNumber=*)",
)


def _agrees_with_oracle(instance):
    """Every sample filter answers identically with and without
    indexes on ``instance``."""
    for text in SIDECAR_FILTERS:
        filt = parse_filter(text)
        if indexed(instance, filt) != naive(instance, filt):
            return False
    return True


class TestSidecarLifecycle:
    @pytest.fixture()
    def closed_store(self, tmp_path):
        """A store created with Section 6.1 extras (so key postings are
        live), two committed transactions, cleanly closed — its index
        sidecar sits at (generation 1, position 2)."""
        schema = whitepages_schema(extras=True)
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, schema,
            generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                persons_per_unit=3, seed=11),
        )
        for i in range(2):
            assert store.apply(
                UpdateTransaction().insert(
                    f"uid=extra{i},o=org0", ["person", "top"],
                    {"uid": [f"extra{i}"], "name": [f"extra {i}"]},
                )
            ).applied
        store.close()
        return path, schema

    @pytest.fixture()
    def rebuild_counter(self, monkeypatch):
        """Counts :meth:`AttributeIndexes.rebuild` calls."""
        calls = []
        original = AttributeIndexes.rebuild

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(AttributeIndexes, "rebuild", counting)
        return calls

    def test_clean_reopen_adopts_the_sidecar(
        self, closed_store, rebuild_counter
    ):
        path, schema = closed_store
        assert index_sidecar_status(path, schema, 1, 2) == "present"
        with DirectoryStore.open(path, schema) as store:
            assert not rebuild_counter, "clean sidecar must adopt, not rebuild"
            assert _agrees_with_oracle(store.instance)

    def test_missing_sidecar_rebuilds(self, closed_store, rebuild_counter):
        path, schema = closed_store
        os.unlink(index_sidecar_path(path))
        assert index_sidecar_status(path, schema, 1, 2) == "missing"
        with DirectoryStore.open(path, schema) as store:
            assert rebuild_counter
            assert _agrees_with_oracle(store.instance)

    def test_corrupt_byte_sweep_rebuilds(self, closed_store):
        path, schema = closed_store
        sidecar = index_sidecar_path(path)
        with open(sidecar, "rb") as fh:
            pristine = fh.read()
        positions = range(0, len(pristine), max(1, len(pristine) // 24))
        for position in positions:
            flipped = bytearray(pristine)
            flipped[position] ^= 0xFF
            with open(sidecar, "wb") as fh:
                fh.write(bytes(flipped))
            status = index_sidecar_status(path, schema, 1, 2)
            assert status in ("corrupt", "stale"), (
                f"flip at byte {position} went undetected ({status})"
            )
            with DirectoryStore.open(path, schema) as store:
                assert _agrees_with_oracle(store.instance)
            # Reopening rewrote the sidecar at close; restore the flip
            # target for the next sweep position.
            with open(sidecar, "wb") as fh:
                fh.write(pristine)

    def test_stale_after_compaction_rebuilds(
        self, closed_store, rebuild_counter
    ):
        path, schema = closed_store
        sidecar = index_sidecar_path(path)
        with open(sidecar, "rb") as fh:
            old = fh.read()
        with DirectoryStore.open(path, schema) as store:
            store.compact()
        del rebuild_counter[:]
        # Resurrect the pre-compaction sidecar: well-formed, wrong
        # generation — the reopen must notice and rebuild.
        with open(sidecar, "wb") as fh:
            fh.write(old)
        with DirectoryStore.open(path, schema) as store:
            assert index_sidecar_status(
                path, schema, store.generation, 0
            ) == "stale"
            assert rebuild_counter
            assert _agrees_with_oracle(store.instance)

    def test_reader_follows_wal_across_compaction(self, tmp_path):
        schema = whitepages_schema(extras=True)
        path = str(tmp_path / "followed")
        store = DirectoryStore.create(
            path, schema,
            generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                persons_per_unit=3, seed=11),
        )
        reader = StoreReader.open(path, schema)
        try:
            for i in range(3):
                assert store.apply(
                    UpdateTransaction().insert(
                        f"uid=live{i},o=org0", ["person", "top"],
                        {"uid": [f"live{i}"], "name": [f"live {i}"]},
                    )
                ).applied
            reader.refresh()
            assert indexed(reader.instance, None) != []
            assert _agrees_with_oracle(reader.instance)
            assert indexed(
                reader.instance, parse_filter("(uid=live2)")
            ) == ["uid=live2,o=org0"]
            # Compact (new generation, fresh snapshot), delete one
            # entry, add another: the reader re-bootstraps and its
            # indexes must still agree with the oracle.
            store.compact()
            assert store.apply(
                UpdateTransaction().delete("uid=live0,o=org0")
            ).applied
            reader.refresh()
            assert _agrees_with_oracle(reader.instance)
            filt = Equals("uid", "live0")
            assert indexed(reader.instance, filt) == []
            assert naive(reader.instance, filt) == []
        finally:
            reader.close()
            store.close()
