"""Tests for incremental in-place modification (the beyond-Figure-5
extension) and RFC 2849 modify records."""

import pytest

from repro.errors import LdifError
from repro.ldif import serialize_ldif
from repro.ldif.modify import apply_modification, parse_modifications
from repro.legality.checker import LegalityChecker
from repro.updates.incremental import IncrementalChecker
from repro.workloads import generate_whitepages

LAKS = "uid=laks,ou=databases,ou=attLabs,o=att"
SUCIU = "uid=suciu,ou=databases,ou=attLabs,o=att"
DATABASES = "ou=databases,ou=attLabs,o=att"


@pytest.fixture()
def guard(wp_schema, fig1):
    return IncrementalChecker(wp_schema, fig1)


class TestTryModify:
    def test_attribute_change_accepted(self, guard, fig1):
        outcome = guard.try_modify(
            SUCIU, replace_attributes={"mail": []}
        )
        assert outcome.applied  # suciu has no mail; no-op replace is fine
        outcome = guard.try_modify(
            LAKS, replace_attributes={"mail": ["laks@example.edu"]}
        )
        assert outcome.applied
        assert fig1.entry(LAKS).values("mail") == ("laks@example.edu",)

    def test_disallowed_attribute_rejected_and_rolled_back(self, guard, fig1):
        before = serialize_ldif(fig1)
        outcome = guard.try_modify(
            SUCIU, replace_attributes={"mail": ["dan@x.com"]}
        )
        # suciu is not online, so mail is not allowed
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_required_attribute_removal_rejected(self, guard, fig1):
        before = serialize_ldif(fig1)
        outcome = guard.try_modify(SUCIU, replace_attributes={"name": []})
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_class_addition_enables_attribute(self, guard, fig1):
        outcome = guard.try_modify(
            SUCIU,
            add_classes=["online"],
            replace_attributes={"mail": ["dan@x.com"]},
        )
        assert outcome.applied
        assert fig1.entry(SUCIU).belongs_to("online")

    def test_incomparable_class_addition_rejected(self, guard, fig1):
        outcome = guard.try_modify(SUCIU, add_classes=["orgUnit"])
        assert not outcome.applied
        assert not fig1.entry(SUCIU).belongs_to("orgUnit")

    def test_class_removal_breaking_required_edge_rejected(self, wp_schema, fig1):
        """Removing databases' orgGroup class breaks
        orgUnit ← orgGroup for its children... no — it breaks
        organization → orgUnit? databases is not under organization
        directly.  It breaks orgUnit ← orgGroup for nothing, but it
        breaks the *chain* (orgUnit ⊑ orgGroup) — a content violation."""
        guard = IncrementalChecker(wp_schema, fig1)
        outcome = guard.try_modify(DATABASES, remove_classes=["orgGroup"])
        assert not outcome.applied
        assert fig1.entry(DATABASES).belongs_to("orgGroup")

    def test_class_removal_breaking_structure_rejected(self, wp_schema, fig1):
        """attLabs is the orgGroup parent of databases; stripping both
        orgUnit+orgGroup from attLabs would orphan databases
        (orgUnit ← orgGroup)."""
        guard = IncrementalChecker(wp_schema, fig1)
        outcome = guard.try_modify(
            "ou=attLabs,o=att", remove_classes=["orgUnit", "orgGroup"]
        )
        assert not outcome.applied
        # the violation is structural, not just content
        assert any(
            "orgUnit ← orgGroup" in (v.element or "") for v in outcome.report
        ) or not outcome.report.is_legal

    def test_modify_verdict_matches_full_recheck(self, wp_schema):
        """Differential: try_modify's verdict equals a from-scratch check
        of the hypothetically modified instance."""
        import random

        rng = random.Random(5)
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=2, seed=3)
        guard = IncrementalChecker(wp_schema, instance)
        full = LegalityChecker(wp_schema)
        person_dns = sorted(
            str(instance.dn_of(e)) for e in instance.entries_with_class("person")
        )
        scenarios = [
            dict(add_classes=["online"]),
            dict(add_classes=["orgUnit"]),
            dict(replace_attributes={"name": []}),
            dict(replace_attributes={"telephoneNumber": ["+1 555 0100"]}),
            dict(add_classes=["staffMember"]),
        ]
        for scenario in scenarios:
            target = rng.choice(person_dns)
            hypothetical = instance.copy()
            mirror = IncrementalChecker(wp_schema, hypothetical, assume_legal=True)
            mirror_outcome = mirror.try_modify(target, **scenario)
            # build the hypothetical end state by force
            if not mirror_outcome.applied:
                entry = hypothetical.entry(target)
                for cls in scenario.get("add_classes", []):
                    entry.add_class(cls)
                for name, values in scenario.get("replace_attributes", {}).items():
                    entry.replace_values(name, values)
            expected = full.is_legal(hypothetical)
            outcome = guard.try_modify(target, **scenario)
            assert outcome.applied == expected, scenario
            assert full.is_legal(instance)


class TestModifyRecords:
    RECORD = f"""\
dn: {LAKS}
changetype: modify
add: objectClass
objectClass: manager
-
replace: mail
mail: laks@example.edu
-
delete: telephoneNumber
-
"""

    def test_parse(self):
        records = parse_modifications(self.RECORD)
        assert len(records) == 1
        record = records[0]
        assert str(record.dn) == LAKS
        ops = {(op.op, op.attribute): op.values for op in record.ops}
        assert ops[("add", "objectClass")] == ("manager",)
        assert ops[("replace", "mail")] == ("laks@example.edu",)
        assert ops[("delete", "telephoneNumber")] == ()

    def test_apply(self, guard, fig1):
        record = parse_modifications(self.RECORD)[0]
        outcome = apply_modification(guard, record)
        assert outcome.applied
        laks = fig1.entry(LAKS)
        assert laks.belongs_to("manager")
        assert laks.values("mail") == ("laks@example.edu",)

    def test_apply_rejects_and_rolls_back(self, guard, fig1):
        bad = f"""\
dn: {SUCIU}
changetype: modify
replace: mail
mail: dan@x.com
-
"""
        before = serialize_ldif(fig1)
        record = parse_modifications(bad)[0]
        outcome = apply_modification(guard, record)
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_delete_specific_values(self, guard, fig1):
        record = parse_modifications(
            f"dn: {LAKS}\nchangetype: modify\n"
            "delete: mail\nmail: laks@cse.iitb.ernet.in\n-\n"
        )[0]
        outcome = apply_modification(guard, record)
        assert outcome.applied
        assert fig1.entry(LAKS).values("mail") == ("laks@cs.concordia.ca",)

    def test_add_merges_values(self, guard, fig1):
        record = parse_modifications(
            f"dn: {LAKS}\nchangetype: modify\n"
            "add: mail\nmail: laks@third.example\n-\n"
        )[0]
        assert apply_modification(guard, record).applied
        assert len(fig1.entry(LAKS).values("mail")) == 3

    def test_non_modify_record_rejected(self):
        with pytest.raises(LdifError, match="not a modify record"):
            parse_modifications("dn: o=x\nchangetype: add\nobjectClass: top\n")

    def test_clause_attribute_mismatch_rejected(self):
        with pytest.raises(LdifError, match="targets"):
            parse_modifications(
                "dn: o=x\nchangetype: modify\nreplace: mail\nphone: 123\n-\n"
            )

    def test_modrdn_rename(self, guard, fig1):
        record = parse_modifications(
            f"dn: {DATABASES}\nchangetype: modrdn\nnewrdn: ou=data\n"
            "deleteoldrdn: 1\n"
        )[0]
        outcome = apply_modification(guard, record)
        assert outcome.applied
        assert fig1.find("ou=data,ou=attLabs,o=att") is not None

    def test_moddn_with_newsuperior(self, guard, fig1):
        record = parse_modifications(
            f"dn: {LAKS}\nchangetype: moddn\n"
            "newsuperior: ou=attLabs,o=att\n"
        )[0]
        outcome = apply_modification(guard, record)
        assert outcome.applied
        assert fig1.find("uid=laks,ou=attLabs,o=att") is not None

    def test_modrdn_without_fields_rejected(self):
        with pytest.raises(LdifError, match="needs newrdn"):
            parse_modifications(
                "dn: o=x\nchangetype: modrdn\ndeleteoldrdn: 1\n"
            )

    def test_modrdn_with_junk_rejected(self):
        with pytest.raises(LdifError, match="unexpected line"):
            parse_modifications(
                "dn: o=x\nchangetype: modrdn\nnewrdn: o=y\ncolour: red\n"
            )

    def test_mixed_document(self, guard, fig1):
        text = (
            f"dn: {LAKS}\nchangetype: modify\n"
            "replace: mail\nmail: laks@new.example\n-\n"
            "\n"
            f"dn: {SUCIU}\nchangetype: moddn\n"
            "newsuperior: ou=attLabs,o=att\n"
        )
        records = parse_modifications(text)
        assert len(records) == 2
        for record in records:
            assert apply_modification(guard, record).applied
        assert fig1.find("uid=suciu,ou=attLabs,o=att") is not None

    def test_replace_object_class_rejected(self, guard):
        record = parse_modifications(
            f"dn: {LAKS}\nchangetype: modify\n"
            "replace: objectClass\nobjectClass: person\n-\n"
        )[0]
        with pytest.raises(LdifError, match="replace on objectClass"):
            apply_modification(guard, record)


class TestJournaledModify:
    """The store-level modify path: committed modifies are one ordinary
    WAL frame (recovery and lock-free readers blind-replay them),
    rejected ones leave zero durable footprint — on the single store and
    through the sharded coordinator's stage/check/commit-or-revert
    discipline."""

    GOOD = (
        f"dn: {LAKS}\nchangetype: modify\n"
        "replace: mail\nmail: laks@example.edu\n-\n"
    )
    BAD = (
        f"dn: {SUCIU}\nchangetype: modify\n"
        "replace: mail\nmail: dan@x.com\n-\n"  # suciu is not online
    )

    def _record(self, text):
        return parse_modifications(text)[0]

    def test_committed_modify_is_journaled_and_recovered(
        self, tmp_path, wp_schema, wp_registry
    ):
        from repro.store import DirectoryStore
        from repro.workloads import figure1_instance

        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, wp_schema, figure1_instance(), wp_registry
        )
        try:
            outcome = store.modify(self._record(self.GOOD))
            assert outcome.applied
            assert store.journal_length == 1
            before = serialize_ldif(store.instance)
        finally:
            store.close()
        with DirectoryStore.open(path, wp_schema, wp_registry) as reopened:
            assert serialize_ldif(reopened.instance) == before
            assert (
                reopened.instance.entry(LAKS).values("mail")
                == ("laks@example.edu",)
            )

    def test_rejected_modify_leaves_no_footprint(
        self, tmp_path, wp_schema, wp_registry
    ):
        from repro.store import DirectoryStore
        from repro.workloads import figure1_instance

        store = DirectoryStore.create(
            str(tmp_path / "store"), wp_schema, figure1_instance(), wp_registry
        )
        try:
            before = serialize_ldif(store.instance)
            outcome = store.modify(self._record(self.BAD))
            assert not outcome.applied
            assert store.journal_length == 0
            assert serialize_ldif(store.instance) == before
        finally:
            store.close()

    def test_reader_follows_modify_frames(
        self, tmp_path, wp_schema, wp_registry
    ):
        from repro.store import DirectoryStore
        from repro.store.reader import StoreReader
        from repro.workloads import figure1_instance

        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, wp_schema, figure1_instance(), wp_registry
        )
        try:
            with StoreReader.open(path, wp_schema, wp_registry) as reader:
                assert store.modify(self._record(self.GOOD)).applied
                result = reader.refresh()
                assert result.advanced
                assert (
                    reader.instance.entry(LAKS).values("mail")
                    == ("laks@example.edu",)
                )
        finally:
            store.close()

    def test_modrdn_record_refused_by_store(
        self, tmp_path, wp_schema, wp_registry
    ):
        from repro.errors import UpdateError
        from repro.store import DirectoryStore
        from repro.workloads import figure1_instance

        record = parse_modifications(
            f"dn: {DATABASES}\nchangetype: modrdn\nnewrdn: ou=data\n"
            "deleteoldrdn: 1\n"
        )[0]
        store = DirectoryStore.create(
            str(tmp_path / "store"), wp_schema, figure1_instance(), wp_registry
        )
        try:
            with pytest.raises(UpdateError, match="changetype: modify"):
                store.modify(record)
            assert store.journal_length == 0
        finally:
            store.close()

    def test_sharded_modify_routes_commits_and_recovers(
        self, tmp_path, wp_schema, wp_registry
    ):
        from repro.store.sharded import ShardedStore
        from repro.workloads import figure1_instance

        path = str(tmp_path / "sharded")
        bases = {"att": "o=att", "labs": "ou=attLabs,o=att"}
        store = ShardedStore.create(
            path, wp_schema, bases, figure1_instance(), wp_registry
        )
        try:
            outcome = store.modify(self._record(self.GOOD))
            assert outcome.applied
            # one ordinary WAL frame in the owning shard, none elsewhere
            assert store.shard("labs").journal_length == 1
            assert store.shard("att").journal_length == 0
            before = serialize_ldif(store.composite_instance())
        finally:
            store.close()
        with ShardedStore.open(path, wp_schema, wp_registry) as reopened:
            assert serialize_ldif(reopened.composite_instance()) == before

    def test_sharded_modify_reverts_on_composite_veto(
        self, tmp_path, wp_schema, wp_registry, monkeypatch
    ):
        """A modify the composite check vetoes is blind-reverted with
        zero durable footprint.  (In the white-pages schema no
        single-entry modify can break a cut-spanning element without
        first breaking a shard-local rule, so the veto is injected —
        same idiom as the checker-crash test in ``test_sharded``.)"""
        import repro.store.sharded as sharded_module
        from repro.legality.report import Kind, LegalityReport, Violation
        from repro.store.sharded import ShardedStore
        from repro.workloads import figure1_instance

        bases = {"att": "o=att", "labs": "ou=attLabs,o=att"}
        store = ShardedStore.create(
            str(tmp_path / "sharded"), wp_schema, bases,
            figure1_instance(), wp_registry,
        )
        try:
            before = serialize_ldif(store.composite_instance())

            def veto(*args, **kwargs):
                report = LegalityReport()
                report.add(Violation(
                    Kind.DISALLOWED_ATTRIBUTE, "injected composite veto"
                ))
                return report

            monkeypatch.setattr(sharded_module, "_composite_report", veto)
            outcome = store.modify(self._record(self.GOOD))
            assert not outcome.applied
            assert any("rolled back" in c for c in outcome.checks)
            monkeypatch.undo()
            assert serialize_ldif(store.composite_instance()) == before
            assert store.shard("labs").journal_length == 0
            assert store.shard("att").journal_length == 0
        finally:
            store.close()

    def test_sharded_modify_survives_checker_crash(
        self, tmp_path, wp_schema, wp_registry, monkeypatch
    ):
        """The composite check *raising* mid-modify (a checker bug, not
        a verdict) rolls the staged memory back and writes nothing."""
        import repro.store.sharded as sharded_module
        from repro.store.sharded import ShardedStore
        from repro.workloads import figure1_instance

        bases = {"att": "o=att", "labs": "ou=attLabs,o=att"}
        store = ShardedStore.create(
            str(tmp_path / "sharded"), wp_schema, bases,
            figure1_instance(), wp_registry,
        )
        try:
            before = serialize_ldif(store.composite_instance())

            def boom(*args, **kwargs):
                raise RuntimeError("checker bug")

            monkeypatch.setattr(sharded_module, "_composite_report", boom)
            with pytest.raises(RuntimeError, match="checker bug"):
                store.modify(self._record(self.GOOD))
            monkeypatch.undo()
            assert serialize_ldif(store.composite_instance()) == before
            assert store.shard("labs").journal_length == 0
            assert store.check().is_legal
        finally:
            store.close()
