"""Tests for LDIF change records ↔ update transactions."""

import pytest

from repro.errors import LdifError
from repro.ldif.changes import parse_changes, serialize_changes
from repro.updates.operations import DeleteEntry, InsertEntry, UpdateTransaction

ADD_AND_DELETE = """\
dn: ou=theory,ou=attLabs,o=att
changetype: add
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: theory

dn: uid=nina,ou=theory,ou=attLabs,o=att
changetype: add
objectClass: person
objectClass: top
uid: nina
name: nina novak

dn: uid=armstrong,o=att
changetype: delete
"""


class TestParsing:
    def test_mixed_document(self):
        tx = parse_changes(ADD_AND_DELETE)
        assert len(tx) == 3
        inserts = tx.insertions()
        assert [str(op.dn) for op in inserts] == [
            "ou=theory,ou=attLabs,o=att",
            "uid=nina,ou=theory,ou=attLabs,o=att",
        ]
        assert inserts[1].attribute_dict()["name"] == ["nina novak"]
        assert [str(op.dn) for op in tx.deletions()] == ["uid=armstrong,o=att"]

    def test_missing_changetype_defaults_to_add(self):
        text = "dn: o=x\nobjectClass: top\n"
        tx = parse_changes(text)
        assert isinstance(tx.operations[0], InsertEntry)

    def test_modify_rejected(self):
        text = "dn: o=x\nchangetype: modify\n"
        with pytest.raises(LdifError, match="modify"):
            parse_changes(text)

    def test_delete_with_attributes_rejected(self):
        text = "dn: o=x\nchangetype: delete\ncn: junk\n"
        with pytest.raises(LdifError, match="must not carry"):
            parse_changes(text)

    def test_add_without_classes_rejected(self):
        text = "dn: o=x\nchangetype: add\ncn: junk\n"
        with pytest.raises(LdifError, match="objectClass"):
            parse_changes(text)

    def test_duplicate_targets_rejected(self):
        text = "dn: o=x\nchangetype: delete\n\ndn: o=x\nchangetype: delete\n"
        with pytest.raises(LdifError, match="distinct"):
            parse_changes(text)


class TestRoundTrip:
    def test_serialize_then_parse(self):
        tx = (
            UpdateTransaction()
            .insert("ou=x,o=att", ["orgUnit", "top"], {"ou": ["x"]})
            .insert("uid=p,ou=x,o=att", ["person", "top"],
                    {"uid": ["p"], "name": ["p q"], "mail": ["a@x", "b@x"]})
            .delete("uid=old,o=att")
        )
        text = serialize_changes(tx)
        reparsed = parse_changes(text)
        assert serialize_changes(reparsed) == text
        assert len(reparsed.insertions()) == 2
        assert isinstance(reparsed.operations[2], DeleteEntry)

    def test_applies_through_incremental_checker(self, wp_schema, fig1):
        from repro.updates.incremental import IncrementalChecker

        guard = IncrementalChecker(wp_schema, fig1)
        outcome = guard.apply_transaction(parse_changes(ADD_AND_DELETE))
        assert outcome.applied
        assert fig1.find("uid=nina,ou=theory,ou=attLabs,o=att") is not None
        assert fig1.find("uid=armstrong,o=att") is None
