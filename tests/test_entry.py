"""Unit tests for directory entries (Definition 2.1 invariants)."""

import pytest

from repro.errors import ModelError
from repro.model.attributes import OBJECT_CLASS
from repro.model.dn import parse_rdn
from repro.model.entry import Entry


def make_entry(classes=("person", "top"), attributes=None):
    return Entry(parse_rdn("uid=test"), classes, attributes)


class TestClassInvariant:
    def test_empty_class_set_rejected(self):
        with pytest.raises(ModelError):
            Entry(parse_rdn("uid=x"), [])

    def test_object_class_values_mirror_classes(self):
        entry = make_entry({"person", "top", "online"})
        assert entry.values(OBJECT_CLASS) == ("online", "person", "top")

    def test_add_class_reflected_in_values(self):
        entry = make_entry()
        entry.add_class("online")
        assert entry.has_value(OBJECT_CLASS, "online")
        assert entry.belongs_to("online")

    def test_add_class_idempotent(self):
        entry = make_entry()
        entry.add_class("person")
        assert entry.values(OBJECT_CLASS).count("person") == 1

    def test_remove_class(self):
        entry = make_entry({"person", "top"})
        entry.remove_class("person")
        assert not entry.belongs_to("person")

    def test_remove_absent_class(self):
        entry = make_entry()
        with pytest.raises(ModelError):
            entry.remove_class("router")

    def test_cannot_remove_last_class(self):
        entry = Entry(parse_rdn("uid=x"), ["top"])
        with pytest.raises(ModelError):
            entry.remove_class("top")

    def test_add_value_on_object_class_adds_class(self):
        entry = make_entry()
        entry.add_value(OBJECT_CLASS, "online")
        assert entry.belongs_to("online")

    def test_remove_value_on_object_class_removes_class(self):
        entry = make_entry({"person", "top"})
        entry.remove_value(OBJECT_CLASS, "person")
        assert not entry.belongs_to("person")


class TestValues:
    def test_values_are_a_set_of_pairs(self):
        entry = make_entry()
        entry.add_value("mail", "a@example.com")
        entry.add_value("mail", "a@example.com")
        assert entry.values("mail") == ("a@example.com",)

    def test_multivalued_attribute(self):
        entry = make_entry()
        entry.add_value("mail", "a@x.com")
        entry.add_value("mail", "b@x.com")
        assert entry.values("mail") == ("a@x.com", "b@x.com")

    def test_first_value(self):
        entry = make_entry(attributes={"mail": ["a@x.com", "b@x.com"]})
        assert entry.first_value("mail") == "a@x.com"
        assert entry.first_value("ghost") is None

    def test_has_attribute(self):
        entry = make_entry(attributes={"mail": ["a@x.com"]})
        assert entry.has_attribute("mail")
        assert not entry.has_attribute("phone")
        assert entry.has_attribute(OBJECT_CLASS)

    def test_remove_value(self):
        entry = make_entry(attributes={"mail": ["a@x.com", "b@x.com"]})
        entry.remove_value("mail", "a@x.com")
        assert entry.values("mail") == ("b@x.com",)

    def test_remove_last_value_drops_attribute(self):
        entry = make_entry(attributes={"mail": ["a@x.com"]})
        entry.remove_value("mail", "a@x.com")
        assert not entry.has_attribute("mail")
        assert "mail" not in entry.attribute_names()

    def test_remove_absent_value(self):
        entry = make_entry()
        with pytest.raises(ModelError):
            entry.remove_value("mail", "nope")

    def test_replace_values(self):
        entry = make_entry(attributes={"mail": ["old@x.com"]})
        entry.replace_values("mail", ["new1@x.com", "new2@x.com"])
        assert entry.values("mail") == ("new1@x.com", "new2@x.com")

    def test_replace_object_class_rejected(self):
        entry = make_entry()
        with pytest.raises(ModelError):
            entry.replace_values(OBJECT_CLASS, ["x"])

    def test_pairs_include_object_classes(self):
        entry = make_entry({"person", "top"}, {"uid": ["u1"]})
        pairs = set(entry.pairs())
        assert (OBJECT_CLASS, "person") in pairs
        assert (OBJECT_CLASS, "top") in pairs
        assert ("uid", "u1") in pairs

    def test_value_count(self):
        entry = make_entry({"person", "top"}, {"mail": ["a", "b"], "uid": ["u"]})
        assert entry.value_count() == 5

    def test_detached_entry_dn_is_rdn(self):
        entry = make_entry()
        assert str(entry.dn) == "uid=test"
