"""Tests for the Figure 4 translation: every schema-element form maps to
the exact query of the paper, and query verdicts coincide with the
direct Definition 2.6 semantics on arbitrary instances."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.errors import QueryError
from repro.query.translate import translate_element
from repro.schema.elements import (
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    Subclass,
)
from repro.workloads import random_forest


class TestFigure4Shapes:
    """Row-by-row comparison with Figure 4 (rendered via str())."""

    def test_required_child_row(self):
        check = translate_element(RequiredEdge(Axis.CHILD, "ci", "cj"))
        assert str(check.query) == (
            "(σ⁻ (objectClass=ci) (c (objectClass=ci) (objectClass=cj)))"
        )
        assert check.legal_when_empty

    def test_required_parent_row(self):
        check = translate_element(RequiredEdge(Axis.PARENT, "ci", "cj"))
        assert str(check.query) == (
            "(σ⁻ (objectClass=ci) (p (objectClass=ci) (objectClass=cj)))"
        )

    def test_required_descendant_row(self):
        check = translate_element(RequiredEdge(Axis.DESCENDANT, "ci", "cj"))
        assert str(check.query) == (
            "(σ⁻ (objectClass=ci) (d (objectClass=ci) (objectClass=cj)))"
        )

    def test_required_ancestor_row(self):
        check = translate_element(RequiredEdge(Axis.ANCESTOR, "ci", "cj"))
        assert str(check.query) == (
            "(σ⁻ (objectClass=ci) (a (objectClass=ci) (objectClass=cj)))"
        )

    def test_forbidden_child_row(self):
        check = translate_element(ForbiddenEdge(Axis.CHILD, "ci", "cj"))
        assert str(check.query) == "(c (objectClass=ci) (objectClass=cj))"
        assert check.legal_when_empty

    def test_forbidden_descendant_row(self):
        check = translate_element(ForbiddenEdge(Axis.DESCENDANT, "ci", "cj"))
        assert str(check.query) == "(d (objectClass=ci) (objectClass=cj))"

    def test_required_class_row(self):
        check = translate_element(RequiredClass("c"))
        assert str(check.query) == "(objectClass=c)"
        assert not check.legal_when_empty

    def test_content_elements_have_no_row(self):
        with pytest.raises(QueryError):
            translate_element(Subclass("a", "b"))
        with pytest.raises(QueryError):
            translate_element(Disjoint("a", "b"))


_label = st.sampled_from(["k0", "k1", "k2"])


@st.composite
def structure_elements(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return RequiredClass(draw(_label))
    if kind == 1:
        axis = draw(st.sampled_from(list(Axis)))
        return RequiredEdge(axis, draw(_label), draw(_label))
    axis = draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
    return ForbiddenEdge(axis, draw(_label), draw(_label))


class TestReductionCorrectness:
    """The paper's central equivalence: D legal w.r.t. element iff the
    Figure 4 query verdict says so — on arbitrary random instances."""

    @settings(max_examples=60, deadline=None)
    @given(structure_elements(), st.integers(0, 10_000), st.integers(5, 60))
    def test_query_verdict_equals_direct_semantics(self, element, seed, size):
        instance = random_forest(n_entries=size, labels=["k0", "k1", "k2"], seed=seed)
        check = translate_element(element)
        assert check.is_legal(instance) == element.is_satisfied(instance)

    def test_witnesses_identify_offending_entries(self):
        instance = random_forest(n_entries=30, labels=["k0", "k1"], seed=4)
        element = RequiredEdge(Axis.CHILD, "k0", "k1")
        check = translate_element(element)
        witnesses = check.witnesses(instance)
        for eid in witnesses:
            entry = instance.entry(eid)
            assert entry.belongs_to("k0")
            assert not any(
                c.belongs_to("k1") for c in instance.children_of(entry)
            )

    def test_required_class_has_no_witnesses(self):
        instance = random_forest(n_entries=5, labels=["k0"], seed=0)
        check = translate_element(RequiredClass("k9"))
        assert not check.is_legal(instance)
        assert check.witnesses(instance) == set()

    def test_str_shows_polarity(self):
        check = translate_element(RequiredClass("c"))
        assert "non-empty" in str(check)
