"""Differential property test: the incremental checker (Figure 5 rules)
against from-scratch legality checking, step for step.

A random stream of subtree insertions and deletions is played through
an :class:`IncrementalChecker`; at every step the incremental verdict
must match a from-scratch :class:`LegalityChecker` run on a copy with
the update applied unconditionally — and the guarded instance itself
must remain legal throughout (Theorem 4.2: the incremental test accepts
exactly the legality-preserving updates).
"""

import random

import pytest

from repro.legality.checker import LegalityChecker
from repro.updates.incremental import IncrementalChecker
from repro.workloads import generate_whitepages
from repro.workloads.update_streams import (
    deletable_units,
    insertion_points,
    make_person_subtree,
    make_unit_subtree,
)

STEPS = 12


def raw_insert_is_legal(checker, instance, parent, delta):
    """Apply the graft unconditionally on a copy; check from scratch."""
    trial = instance.copy()
    trial.insert_subtree(parent, delta)
    return checker.check(trial).is_legal


def raw_delete_is_legal(checker, instance, dn):
    trial = instance.copy()
    trial.delete_subtree(dn)
    return checker.check(trial).is_legal


@pytest.mark.parametrize("seed", [0, 1, 7, 23])
def test_incremental_matches_from_scratch_on_random_streams(wp_schema, seed):
    rng = random.Random(seed)
    instance = generate_whitepages(orgs=2, units_per_level=2, depth=2,
                                   persons_per_unit=2, seed=seed)
    guard = IncrementalChecker(wp_schema, instance)
    oracle = LegalityChecker(wp_schema)

    inserts = deletes = rejected = 0
    for _ in range(STEPS):
        do_delete = rng.random() < 0.4 and deletable_units(instance)
        if do_delete:
            target = rng.choice(deletable_units(instance))
            expected = raw_delete_is_legal(oracle, instance, target)
            outcome = guard.try_delete(target)
            deletes += 1
        else:
            parent = rng.choice(insertion_points(instance))
            if rng.random() < 0.5:
                delta = make_unit_subtree(rng, persons=rng.randrange(1, 3),
                                          attributes=instance.attributes)
            else:
                delta = make_person_subtree(rng, attributes=instance.attributes)
            expected = raw_insert_is_legal(oracle, instance, parent, delta)
            outcome = guard.try_insert(parent, delta)
            inserts += 1

        assert outcome.applied == expected, (
            f"incremental verdict {outcome.applied} != from-scratch "
            f"{expected} at step insert={inserts} delete={deletes}:\n"
            f"{outcome.report}"
        )
        rejected += not outcome.applied
        # rollback (on reject) and commit (on apply) both leave a legal
        # instance — checked from scratch, not through the guard
        assert oracle.check(instance).is_legal

    assert inserts + deletes == STEPS


def test_rejected_stream_steps_roll_back_cleanly(wp_schema):
    """Force rejections: inserting under a non-orgGroup parent violates
    structure; the guard must refuse and restore the exact DN set."""
    rng = random.Random(99)
    instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                   persons_per_unit=2, seed=99)
    guard = IncrementalChecker(wp_schema, instance)
    person_dn = sorted(
        str(instance.dn_of(e)) for e in instance.entries_with_class("person")
    )[0]
    before = sorted(instance.dn_string_of(e) for e in instance)

    delta = make_unit_subtree(rng, persons=1, attributes=instance.attributes)
    outcome = guard.try_insert(person_dn, delta)  # unit under a person
    assert not outcome.applied
    after = sorted(instance.dn_string_of(e) for e in instance)
    assert before == after
    assert LegalityChecker(wp_schema).is_legal(instance)
