"""Tests for the crash-safe directory store (snapshot + WAL journal)."""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    StoreError,
    StoreLockedError,
    StoreReadOnlyError,
    UpdateError,
)
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.store.wal import encode_record
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)


@pytest.fixture()
def store(tmp_path, wp_schema):
    with DirectoryStore.create(
        str(tmp_path / "store"), wp_schema, figure1_instance()
    ) as handle:
        yield handle


def good_tx(n=1, seed=0, instance=None):
    return random_transaction(instance or figure1_instance(), inserts=n, seed=seed)


def unit_tx(i):
    """A deterministic legal transaction: one org unit with one person."""
    return (
        UpdateTransaction()
        .insert(
            f"ou=unit{i},o=att",
            ["orgUnit", "orgGroup", "top"],
            {"ou": [f"unit{i}"]},
        )
        .insert(
            f"uid=member{i},ou=unit{i},o=att",
            ["person", "top"],
            {"uid": [f"member{i}"], "name": [f"member {i}"]},
        )
    )


class TestLifecycle:
    def test_create_writes_snapshot_and_journal(self, tmp_path, wp_schema):
        path = tmp_path / "store"
        DirectoryStore.create(str(path), wp_schema, figure1_instance()).close()
        assert (path / "snapshot.ldif").exists()
        assert (path / "journal.ldif").exists()

    def test_create_twice_rejected(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        with pytest.raises(UpdateError, match="already contains"):
            DirectoryStore.create(path, wp_schema, figure1_instance())

    def test_create_rejects_nonempty_directory(self, tmp_path, wp_schema):
        path = tmp_path / "store"
        path.mkdir()
        (path / "unrelated.txt").write_text("hello")
        with pytest.raises(UpdateError, match="not empty"):
            DirectoryStore.create(str(path), wp_schema, figure1_instance())

    def test_create_accepts_existing_empty_directory(self, tmp_path, wp_schema):
        path = tmp_path / "store"
        path.mkdir()
        DirectoryStore.create(str(path), wp_schema, figure1_instance()).close()
        assert (path / "snapshot.ldif").exists()

    def test_create_rejects_illegal_initial(self, tmp_path, wp_schema):
        bad = figure1_instance()
        bad.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class("martian")
        with pytest.raises(UpdateError):
            DirectoryStore.create(str(tmp_path / "store"), wp_schema, bad)

    def test_open_empty_journal_roundtrips(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert serialize_ldif(reopened.instance) == serialize_ldif(
                figure1_instance()
            )
            assert reopened.generation == 1
            assert not reopened.read_only


class TestLocking:
    def test_second_open_rejected_while_lock_held(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        try:
            with pytest.raises(StoreLockedError):
                DirectoryStore.open(path, wp_schema,
                                    registry=whitepages_registry())
        finally:
            store.close()

    def test_close_releases_the_lock(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        first = DirectoryStore.open(path, wp_schema,
                                    registry=whitepages_registry())
        first.close()
        second = DirectoryStore.open(path, wp_schema,
                                     registry=whitepages_registry())
        second.close()

    def test_closed_store_refuses_updates(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.apply(unit_tx(1))


class TestUpdatesAndRecovery:
    def test_committed_updates_survive_reopen(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        tx = good_tx(n=2, seed=1, instance=store.instance)
        assert store.apply(tx).applied
        before = serialize_ldif(store.instance)
        store.close()

        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert serialize_ldif(reopened.instance) == before
            assert reopened.journal_length == 1

    def test_rejected_updates_not_journaled(self, store):
        bad = UpdateTransaction().insert(
            "ou=empty,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]}
        )
        outcome = store.apply(bad)
        assert not outcome.applied
        assert store.journal_length == 0

    def test_torn_final_record_discarded(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        assert store.apply(good_tx(1, seed=2, instance=store.instance)).applied
        good_state = serialize_ldif(store.instance)
        store.close()
        # simulate a crash mid-append: half a frame, cut mid-payload
        frame = encode_record(2, 1, "dn: ou=torn,o=att\nchangetype: add\n")
        with open(os.path.join(path, "journal.ldif"), "ab") as fh:
            fh.write(frame[: len(frame) // 2])
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert serialize_ldif(reopened.instance) == good_state
            assert not reopened.read_only  # a torn tail is repaired, not fatal
            assert reopened.recovery_report.tail_state == "torn"
        # the torn bytes were quarantined, not silently dropped
        assert os.path.getsize(os.path.join(path, "journal.quarantine")) > 0

    def test_foreign_garbage_degrades_to_read_only(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        assert store.apply(good_tx(1, seed=3, instance=store.instance)).applied
        good_state = serialize_ldif(store.instance)
        store.close()
        # bytes our appender never writes (the seed store's torn-record
        # simulation): complete lines that are not WAL frames
        with open(os.path.join(path, "journal.ldif"), "a", encoding="utf-8") as fh:
            fh.write("dn: ou=torn,o=att\nchangetype: add\nobjectClass: orgUnit\n")
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert serialize_ldif(reopened.instance) == good_state
            assert reopened.read_only
            assert reopened.recovery_report.tail_state == "corrupt"
            with pytest.raises(StoreReadOnlyError):
                reopened.apply(unit_tx(9))

    def test_checksum_damage_degrades_to_read_only(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        for i in (1, 2):
            assert store.apply(unit_tx(i)).applied
        store.close()
        journal = os.path.join(path, "journal.ldif")
        data = bytearray(open(journal, "rb").read())
        data[data.find(b"\n") + 5] ^= 0xFF  # flip a payload byte of record 1
        open(journal, "wb").write(bytes(data))
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.read_only
            assert reopened.recovery_report.tail_state == "corrupt"
            # damage in record 1 loses record 2 too — but never silently:
            assert reopened.journal_length == 0
            assert serialize_ldif(reopened.instance) == serialize_ldif(
                figure1_instance()
            )

    def test_compaction_preserves_state(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        for seed in (3, 4):
            assert store.apply(good_tx(1, seed=seed, instance=store.instance)).applied
        state = serialize_ldif(store.instance)
        store.compact()
        assert store.journal_length == 0
        assert store.generation == 2
        store.close()
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert serialize_ldif(reopened.instance) == state
            assert reopened.generation == 2

    def test_check_reports_current_contents(self, store):
        assert store.check().is_legal

    def test_legacy_store_is_recovered_and_upgraded(self, tmp_path, wp_schema):
        """A pre-WAL store (no snapshot header, `# commit` markers) opens
        through the legacy scanner and is rewritten in the WAL format."""
        from repro.ldif.changes import serialize_changes

        path = tmp_path / "store"
        path.mkdir()
        (path / "snapshot.ldif").write_text(
            serialize_ldif(figure1_instance()), encoding="utf-8"
        )
        tx = unit_tx(1)
        (path / "journal.ldif").write_text(
            serialize_changes(tx) + "\n# commit\n\n", encoding="utf-8"
        )
        with DirectoryStore.open(
            str(path), wp_schema, registry=whitepages_registry()
        ) as store:
            assert store.recovery_report.legacy_format
            assert store.instance.find("uid=member1,ou=unit1,o=att") is not None
            assert store.generation == 1  # upgraded: compacted into WAL format
            assert not store.read_only
        # the upgraded snapshot now carries the generation header
        head = (path / "snapshot.ldif").read_text(encoding="utf-8").splitlines()[0]
        assert head.startswith("# repro-store snapshot gen=1")

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_recovery_equals_live_state(self, tmp_path_factory, seed, n_txs):
        """Crash-recovery property: after any sequence of committed
        transactions, open() reproduces the live state exactly."""
        schema = whitepages_schema()
        path = str(tmp_path_factory.mktemp("store") / "s")
        store = DirectoryStore.create(path, schema, figure1_instance())
        rng = random.Random(seed)
        for i in range(n_txs):
            tx = good_tx(rng.randrange(1, 3), seed=seed * 10 + i,
                         instance=store.instance)
            assert store.apply(tx).applied
        live = serialize_ldif(store.instance)
        store.close()
        with DirectoryStore.open(
            path, schema, registry=whitepages_registry()
        ) as recovered:
            assert serialize_ldif(recovered.instance) == live
            assert recovered.check().is_legal


class TestCaseCollisionMigration:
    """Stores written before DN resolution became case-insensitive can
    hold two DNs that differ only in case.  Those must fail to load
    with an explicit migration error naming both spellings — not an
    uncaught duplicate-entry exception."""

    COLLIDER = (
        "\ndn: uid=ARMSTRONG,o=att\n"
        "objectClass: person\n"
        "objectClass: top\n"
        "uid: armstrong\n"
        "name: duplicate spelling\n"
    )

    def test_snapshot_collision_is_a_migration_error(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        with open(
            os.path.join(path, "snapshot.ldif"), "a", encoding="utf-8"
        ) as fh:
            fh.write(self.COLLIDER)
        with pytest.raises(StoreError) as excinfo:
            DirectoryStore.open(path, wp_schema, registry=whitepages_registry())
        message = str(excinfo.value)
        assert "case-insensitive" in message
        assert "migrate" in message
        # Both spellings are named, so the operator knows what to rename.
        assert "uid=ARMSTRONG,o=att" in message
        assert "uid=armstrong,o=att" in message

    def test_journal_collision_degrades_with_migration_note(
        self, tmp_path, wp_schema
    ):
        """A replayed journal frame colliding case-insensitively hits
        the blind-replay failure path: the store opens read-only up to
        the committed prefix, and the notes spell out the migration."""
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        payload = (
            "dn: uid=ARMSTRONG,o=att\n"
            "changetype: add\n"
            "objectClass: person\n"
            "objectClass: top\n"
            "uid: armstrong\n"
            "name: duplicate spelling\n"
        )
        with open(os.path.join(path, "journal.ldif"), "ab") as fh:
            fh.write(encode_record(1, 1, payload))
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.read_only
            notes = " ".join(reopened.recovery_report.notes)
            assert "differ only in case" in notes
            assert "migrate" in notes
            # The committed prefix is intact.
            assert reopened.instance.find("uid=armstrong,o=att") is not None


class TestCommitStats:
    def test_apply_attaches_per_transaction_stats(self, store):
        outcome = store.apply(unit_tx(1))
        assert outcome.applied
        assert outcome.stats is not None
        assert outcome.stats.entries_checked >= 2  # the unit + its member

    def test_stats_are_delta_scoped_not_cumulative(self, store):
        first = store.apply(unit_tx(1)).stats
        second = store.apply(unit_tx(2)).stats
        # same transaction shape -> same work; cumulative counters would
        # make the second strictly larger
        assert second.entries_checked <= first.entries_checked

    def test_rejected_transactions_still_report_work(self, store):
        bad = UpdateTransaction().insert(
            "ou=empty,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]}
        )
        outcome = store.apply(bad)
        assert not outcome.applied
        assert outcome.stats is not None
        assert outcome.stats.entries_checked >= 1


class TestWarmStartSidecar:
    def sidecar_path(self, path):
        return os.path.join(path, "verdicts.cache")

    def test_close_writes_sidecar_and_reopen_starts_warm(
        self, tmp_path, wp_schema
    ):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        assert os.path.exists(self.sidecar_path(path))
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.warm_start_verdicts > 0
            # a warm recheck resolves every entry from imported verdicts
            guard = reopened._guard
            baseline = guard.session.stats.copy()
            assert guard.recheck().is_legal
            delta = guard.session.stats.since(baseline)
            assert delta.entries_checked == 0
            assert delta.cache_hits > 0

    def test_compact_refreshes_the_sidecar(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        assert store.apply(unit_tx(1)).applied
        store.compact()
        assert os.path.exists(self.sidecar_path(path))
        store.close()
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.warm_start_verdicts > 0

    @pytest.mark.parametrize("damage", ["truncate", "garble", "bad-crc"])
    def test_corrupt_sidecar_degrades_to_cold_start(
        self, tmp_path, wp_schema, damage
    ):
        import json

        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        sidecar = self.sidecar_path(path)
        if damage == "truncate":
            with open(sidecar, "r+b") as fh:
                fh.truncate(os.path.getsize(sidecar) // 2)
        elif damage == "garble":
            with open(sidecar, "r+b") as fh:
                fh.seek(4)
                fh.write(b"\x00\xffnonsense")
        else:  # valid JSON, wrong checksum
            with open(sidecar, encoding="utf-8") as fh:
                payload = json.load(fh)
            payload["crc"] = (payload["crc"] + 1) & 0xFFFFFFFF
            with open(sidecar, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            # cold start, never a wrong verdict
            assert reopened.warm_start_verdicts == 0
            assert reopened.check().is_legal
            assert serialize_ldif(reopened.instance) == serialize_ldif(
                figure1_instance()
            )

    def test_schema_mismatch_sidecar_ignored(self, tmp_path, wp_schema):
        import json

        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        sidecar = self.sidecar_path(path)
        with open(sidecar, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["schema"] = "0" * len(payload["schema"])
        with open(sidecar, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.warm_start_verdicts == 0
            assert reopened.check().is_legal

    def test_missing_sidecar_is_fine(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        os.remove(self.sidecar_path(path))
        with DirectoryStore.open(
            path, wp_schema, registry=whitepages_registry()
        ) as reopened:
            assert reopened.warm_start_verdicts == 0
            assert reopened.check().is_legal
