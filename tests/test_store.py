"""Tests for the durable directory store (snapshot + journal)."""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UpdateError
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)


@pytest.fixture()
def store(tmp_path, wp_schema):
    return DirectoryStore.create(
        str(tmp_path / "store"), wp_schema, figure1_instance()
    )


def good_tx(n=1, seed=0, instance=None):
    return random_transaction(instance or figure1_instance(), inserts=n, seed=seed)


class TestLifecycle:
    def test_create_writes_snapshot_and_journal(self, tmp_path, wp_schema):
        path = tmp_path / "store"
        DirectoryStore.create(str(path), wp_schema, figure1_instance())
        assert (path / "snapshot.ldif").exists()
        assert (path / "journal.ldif").exists()

    def test_create_twice_rejected(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance())
        with pytest.raises(UpdateError, match="already contains"):
            DirectoryStore.create(path, wp_schema, figure1_instance())

    def test_create_rejects_illegal_initial(self, tmp_path, wp_schema):
        bad = figure1_instance()
        bad.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class("martian")
        with pytest.raises(UpdateError):
            DirectoryStore.create(str(tmp_path / "store"), wp_schema, bad)

    def test_open_empty_journal_roundtrips(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        DirectoryStore.create(path, wp_schema, figure1_instance())
        reopened = DirectoryStore.open(path, wp_schema,
                                       registry=whitepages_registry())
        assert serialize_ldif(reopened.instance) == serialize_ldif(
            figure1_instance()
        )


class TestUpdatesAndRecovery:
    def test_committed_updates_survive_reopen(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        tx = good_tx(n=2, seed=1, instance=store.instance)
        assert store.apply(tx).applied
        before = serialize_ldif(store.instance)

        reopened = DirectoryStore.open(path, wp_schema,
                                       registry=whitepages_registry())
        assert serialize_ldif(reopened.instance) == before
        assert reopened.journal_length == 1

    def test_rejected_updates_not_journaled(self, store):
        bad = UpdateTransaction().insert(
            "ou=empty,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]}
        )
        outcome = store.apply(bad)
        assert not outcome.applied
        assert store.journal_length == 0

    def test_torn_final_record_discarded(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        assert store.apply(good_tx(1, seed=2, instance=store.instance)).applied
        good_state = serialize_ldif(store.instance)
        # simulate a crash mid-append: write half a record, no marker
        with open(os.path.join(path, "journal.ldif"), "a", encoding="utf-8") as fh:
            fh.write("dn: ou=torn,o=att\nchangetype: add\nobjectClass: orgUnit\n")
        reopened = DirectoryStore.open(path, wp_schema,
                                       registry=whitepages_registry())
        assert serialize_ldif(reopened.instance) == good_state

    def test_compaction_preserves_state(self, tmp_path, wp_schema):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(path, wp_schema, figure1_instance())
        for seed in (3, 4):
            assert store.apply(good_tx(1, seed=seed, instance=store.instance)).applied
        state = serialize_ldif(store.instance)
        store.compact()
        assert store.journal_length == 0
        reopened = DirectoryStore.open(path, wp_schema,
                                       registry=whitepages_registry())
        assert serialize_ldif(reopened.instance) == state

    def test_check_reports_current_contents(self, store):
        assert store.check().is_legal

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_recovery_equals_live_state(self, tmp_path_factory, seed, n_txs):
        """Crash-recovery property: after any sequence of committed
        transactions, open() reproduces the live state exactly."""
        schema = whitepages_schema()
        path = str(tmp_path_factory.mktemp("store") / "s")
        store = DirectoryStore.create(path, schema, figure1_instance())
        rng = random.Random(seed)
        for i in range(n_txs):
            tx = good_tx(rng.randrange(1, 3), seed=seed * 10 + i,
                         instance=store.instance)
            assert store.apply(tx).applied
        live = serialize_ldif(store.instance)
        recovered = DirectoryStore.open(path, schema,
                                        registry=whitepages_registry())
        assert serialize_ldif(recovered.instance) == live
        assert recovered.check().is_legal
