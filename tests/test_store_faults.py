"""Fault-injection matrix for the WAL storage engine.

The central property (ISSUE 1 acceptance): for **every** I/O boundary —
each write (torn at three fractions), fsync, and rename across
``create``, ``apply`` and ``compact`` — crashing there and recovering
yields a schema-legal instance equal to the state after the last fully
committed transaction (or the in-flight one, when its frame hit the
disk before the crash), and an interrupted ``compact`` never
double-applies a journaled transaction.

The scenario uses handcrafted deterministic transactions so that the
states recorded by an undisturbed dry run are byte-identical to the
states a crashed run would have produced, making cross-run comparison
exact.
"""

import os

import pytest

from repro.errors import StoreError, UpdateError
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.store.faults import (
    FaultPlan,
    FaultyIO,
    InjectedCrash,
    InjectedIOError,
)
from repro.store.recovery import recover
from repro.store.wal import scan
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema


def unit_tx(i):
    return (
        UpdateTransaction()
        .insert(
            f"ou=unit{i},o=att",
            ["orgUnit", "orgGroup", "top"],
            {"ou": [f"unit{i}"]},
        )
        .insert(
            f"uid=member{i},ou=unit{i},o=att",
            ["person", "top"],
            {"uid": [f"member{i}"], "name": [f"member {i}"]},
        )
    )


def run_scenario(path, io):
    """create → tx1 → tx2 → compact → tx3, recording ``(ops_executed,
    state)`` at every committed point.  Raises the injected fault."""
    states = []
    store = DirectoryStore.create(
        path, whitepages_schema(), figure1_instance(), io=io
    )
    try:
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        for i in (1, 2):
            assert store.apply(unit_tx(i)).applied
            states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        store.compact()
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        assert store.apply(unit_tx(3)).applied
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
    finally:
        store.close()
    return states


def dry_run(tmp_path):
    io = FaultyIO(FaultPlan())
    states = run_scenario(str(tmp_path / "dry"), io)
    return states, io.plan


def reopen_clean(path):
    return DirectoryStore.open(
        path, whitepages_schema(), registry=whitepages_registry()
    )


def assert_committed_prefix(path, states, crash_op):
    """The recovered store must hold the last state whose I/O completed
    before the crash — or the next one, when the in-flight frame made it
    to disk in full before the crash point."""
    with reopen_clean(path) as recovered:
        got = serialize_ldif(recovered.instance)
        assert not recovered.read_only, (
            f"crash at own op {crash_op} must look torn/stale, not corrupt: "
            f"{recovered.recovery_report.summary()}"
        )
        assert recovered.check().is_legal
        last = max(i for i, (ops, _) in enumerate(states) if ops <= crash_op)
        allowed = {states[last][1]}
        if last + 1 < len(states):
            allowed.add(states[last + 1][1])
        assert got in allowed, (
            f"crash at op {crash_op}: recovered state is not the committed "
            f"prefix (expected state {last} or {last + 1})"
        )
        # the store must stay fully usable after recovery
        assert recovered.apply(unit_tx(7)).applied


class TestCrashMatrix:
    def test_crash_at_every_io_boundary(self, tmp_path):
        states, plan = dry_run(tmp_path)
        total_ops = plan.ops_executed
        assert total_ops >= 14, f"scenario too small: {plan.trace}"
        checked = 0
        for crash_op in range(total_ops):
            for fraction in (0.0, 0.5, 1.0):
                path = str(tmp_path / f"crash-{crash_op}-{int(fraction * 10)}")
                io = FaultyIO(
                    FaultPlan(crash_at_op=crash_op, torn_fraction=fraction)
                )
                try:
                    run_scenario(path, io)
                except InjectedCrash:
                    pass
                else:
                    pytest.fail(f"op {crash_op} never executed")
                if not os.path.exists(path):
                    # died inside create: no partial store may exist, and
                    # a clean retry must succeed from scratch
                    with DirectoryStore.create(
                        path, whitepages_schema(), figure1_instance()
                    ) as retry:
                        assert retry.check().is_legal
                else:
                    assert_committed_prefix(path, states, crash_op)
                checked += 1
        assert checked == 3 * total_ops

    def test_interrupted_compact_never_double_applies(self, tmp_path):
        """Regression for the seed store's crash window: a crash between
        the snapshot rename and the journal truncation replayed every
        journaled transaction on top of the already-compacted snapshot."""
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        for i in (1, 2, 3):
            assert store.apply(unit_tx(i)).applied
        state = serialize_ldif(store.instance)
        # reproduce the exact crash ordering: snapshot replaced, journal
        # not yet reset
        with open(os.path.join(path, "journal.ldif"), "rb") as fh:
            old_journal = fh.read()
        store.compact()
        with open(os.path.join(path, "journal.ldif"), "wb") as fh:
            fh.write(old_journal)
        store.close()

        with reopen_clean(path) as recovered:
            assert serialize_ldif(recovered.instance) == state, (
                "journal replayed against the already-compacted snapshot"
            )
            assert recovered.recovery_report.stale_discarded == 3
            assert not recovered.read_only
            assert recovered.journal_length == 0
        # the stale journal was reset on disk, so the next open is clean
        with reopen_clean(path) as again:
            assert again.recovery_report.healthy

    def test_create_is_atomic(self, tmp_path):
        """Regression for the seed store's partial initialization: a
        failure between the snapshot write and the journal creation left
        a directory that create() rejected and that shadowed real data."""
        # enumerate create's own I/O ops
        probe = FaultyIO(FaultPlan())
        DirectoryStore.create(
            str(tmp_path / "probe"), whitepages_schema(), figure1_instance(),
            io=probe,
        ).close()
        create_ops = probe.plan.ops_executed
        for crash_op in range(create_ops):
            path = str(tmp_path / f"c{crash_op}")
            io = FaultyIO(FaultPlan(crash_at_op=crash_op, torn_fraction=0.5))
            with pytest.raises(InjectedCrash):
                DirectoryStore.create(
                    path, whitepages_schema(), figure1_instance(), io=io
                )
            # never a half-initialised target:
            assert not os.path.exists(os.path.join(path, "snapshot.ldif")) or (
                os.path.exists(os.path.join(path, "journal.ldif"))
            )
            # and a clean retry always succeeds
            with DirectoryStore.create(
                path, whitepages_schema(), figure1_instance()
            ) as retry:
                assert serialize_ldif(retry.instance) == serialize_ldif(
                    figure1_instance()
                )

    def test_legacy_partial_init_directory_still_opens(self, tmp_path):
        """A directory in the seed bug's end state (snapshot written,
        journal never created) must open cleanly instead of crashing."""
        path = tmp_path / "store"
        path.mkdir()
        (path / "snapshot.ldif").write_text(
            serialize_ldif(figure1_instance()), encoding="utf-8"
        )
        with reopen_clean(str(path)) as store:
            assert serialize_ldif(store.instance) == serialize_ldif(
                figure1_instance()
            )
        # create() still refuses to clobber it
        with pytest.raises(UpdateError, match="already contains"):
            DirectoryStore.create(
                str(path), whitepages_schema(), figure1_instance()
            )


class TestTornRecords:
    def test_recovery_at_every_byte_of_the_final_record(self, tmp_path):
        """Satellite: truncate ``journal.ldif`` at every byte offset of
        the final record; recovery must yield exactly the committed
        prefix and quarantine the torn tail."""
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        states = []
        for i in (1, 2, 3):
            assert store.apply(unit_tx(i)).applied
            states.append(serialize_ldif(store.instance))
        store.close()
        journal = os.path.join(path, "journal.ldif")
        quarantine = os.path.join(path, "journal.quarantine")
        with open(journal, "rb") as fh:
            data = fh.read()
        records = scan(data).records
        assert len(records) == 3
        final_start = records[-1].offset
        for cut in range(final_start, len(data)):
            with open(journal, "wb") as fh:
                fh.write(data[:cut])
            if os.path.exists(quarantine):
                os.remove(quarantine)
            with reopen_clean(path) as recovered:
                assert serialize_ldif(recovered.instance) == states[1], (
                    f"truncation at byte {cut} did not recover the "
                    "committed prefix"
                )
                assert recovered.journal_length == 2
                assert not recovered.read_only
            if cut > final_start:
                assert os.path.exists(quarantine), (
                    f"torn tail at byte {cut} was dropped silently"
                )
                assert os.path.getsize(quarantine) >= cut - final_start
            # recovery truncated the journal back to the committed prefix
            assert os.path.getsize(journal) == final_start


class TestSurvivableIOErrors:
    def test_disk_full_poisons_store_and_recovery_keeps_prefix(self, tmp_path):
        states, plan = dry_run(tmp_path)
        total_bytes = plan.bytes_written
        all_states = {state for _, state in states}
        budgets = sorted({total_bytes * k // 12 for k in range(1, 12)})
        exercised = 0
        for budget in budgets:
            path = str(tmp_path / f"full-{budget}")
            io = FaultyIO(FaultPlan(disk_budget=budget))
            try:
                run_scenario(path, io)
                continue  # budget never hit (scenario fit under it)
            except StoreError:
                # apply/compact wrapped the ENOSPC and poisoned the store
                exercised += 1
            except OSError:
                # ENOSPC inside create(): the target must not exist
                assert not os.path.exists(path)
                continue
            with reopen_clean(path) as recovered:
                assert recovered.check().is_legal
                assert serialize_ldif(recovered.instance) in all_states
                assert recovered.apply(unit_tx(8)).applied
        assert exercised >= 3

    def test_poisoned_store_refuses_everything_until_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        io = FaultyIO(FaultPlan())
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance(), io=io
        )
        assert store.apply(unit_tx(1)).applied
        committed = serialize_ldif(store.instance)
        io.plan.disk_budget = io.plan.bytes_written + 10  # next append fails
        with pytest.raises(StoreError, match="poisoned"):
            store.apply(unit_tx(2))
        with pytest.raises(StoreError, match="poisoned"):
            store.apply(unit_tx(3))
        with pytest.raises(StoreError, match="poisoned"):
            store.compact()
        store.close()
        with reopen_clean(path) as recovered:
            assert serialize_ldif(recovered.instance) == committed
            assert recovered.apply(unit_tx(4)).applied

    def test_failed_fsync_at_every_point(self, tmp_path):
        states, plan = dry_run(tmp_path)
        all_states = {state for _, state in states}
        total_fsyncs = plan.fsyncs_executed
        assert total_fsyncs >= 6
        survived_advisory = 0
        for k in range(total_fsyncs):
            path = str(tmp_path / f"fsync-{k}")
            io = FaultyIO(FaultPlan(fail_fsync_at=k))
            try:
                run_scenario(path, io)
                # The scenario completed despite the failed fsync: only
                # permissible for an *advisory* write (the manifest,
                # whose publish is best-effort because the snapshot
                # header stays authoritative) — never for a snapshot or
                # journal fsync.  Durability must therefore be whole:
                # reopening yields the full final scenario state.
                with reopen_clean(path) as survived:
                    assert serialize_ldif(survived.instance) == states[-1][1]
                survived_advisory += 1
                continue
            except StoreError:
                pass  # poisoned by apply/compact
            except InjectedIOError:
                # raw failure inside create(): target must not exist
                assert not os.path.exists(path)
                continue
            with reopen_clean(path) as recovered:
                assert recovered.check().is_legal
                assert serialize_ldif(recovered.instance) in all_states
                assert recovered.apply(unit_tx(9)).applied
        # Exactly one advisory fsync per scenario (compact's manifest
        # publish): if this grows, a durable-path fsync has been
        # silently downgraded to best-effort.
        assert survived_advisory <= 1


class TestExplicitRecovery:
    def test_recover_force_quarantines_corruption(self, tmp_path):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        for i in (1, 2):
            assert store.apply(unit_tx(i)).applied
        store.close()
        journal = os.path.join(path, "journal.ldif")
        data = bytearray(open(journal, "rb").read())
        records = scan(bytes(data)).records
        data[records[1].offset + len(b"#WAL s")] ^= 0xFF  # wreck record 2's header
        open(journal, "wb").write(bytes(data))

        # default open: degraded, files untouched
        with reopen_clean(path) as degraded:
            assert degraded.read_only
        assert os.path.getsize(journal) == len(data)

        # explicit recover --force: quarantine, keep the good prefix
        _, report = recover(
            path, whitepages_schema(), whitepages_registry(), force=True
        )
        assert report.repaired
        assert not report.read_only
        assert report.replayed == 1
        assert os.path.getsize(os.path.join(path, "journal.quarantine")) > 0
        with reopen_clean(path) as healed:
            assert not healed.read_only
            assert healed.journal_length == 1
            assert healed.instance.find("ou=unit1,o=att") is not None
            assert healed.instance.find("ou=unit2,o=att") is None
            assert healed.apply(unit_tx(5)).applied
