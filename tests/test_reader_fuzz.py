"""Property-based fuzz for the reader: randomized interleavings of
``apply`` / ``compact`` / ``refresh`` / reader-reopen (ISSUE 4
satellite).

Hypothesis drives a single-process interleaving of writer operations
and reader refreshes against one on-disk store.  The invariant after
*every* reader operation: the reader's ``(generation, seq)`` position
appears in the oracle of states the writer really committed, with a
byte-identical serialized instance — and since there is no concurrent
writer mid-refresh here, a refresh must always land exactly on the
writer's current position with zero lag.

Seeded and shrinkable by construction (hypothesis owns the entropy).
A bounded example count runs in the default CI lane; the heavier
configuration runs under ``-m slow``.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.store.reader import StoreReader
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)


def digest(instance) -> str:
    return hashlib.blake2b(serialize_ldif(instance).encode("utf-8")).hexdigest()


OPS = st.lists(
    st.sampled_from(["apply", "apply", "apply", "compact", "refresh", "reopen"]),
    min_size=4,
    max_size=24,
)


def run_interleaving(tmp_path_factory, seed: int, ops) -> None:
    schema = whitepages_schema()
    registry = whitepages_registry()
    path = str(tmp_path_factory.mktemp("fuzz") / "store")
    store = DirectoryStore.create(path, schema, figure1_instance(), registry)
    reader = StoreReader.open(path, schema, registry)
    # oracle of every committed state the writer passed through
    oracle = {(store.generation, store.journal_length): digest(store.instance)}

    def check_reader():
        position = reader.position()
        assert position in oracle, (
            f"reader at {position}, a position the writer never committed"
        )
        assert digest(reader.instance) == oracle[position], (
            f"reader state at {position} diverges from the writer's"
        )

    try:
        for i, op in enumerate(ops):
            if op == "apply":
                tx = random_transaction(
                    store.instance, inserts=1, seed=seed * 100 + i
                )
                assert store.apply(tx).applied
            elif op == "compact":
                store.compact()
            elif op == "refresh":
                result = reader.refresh(strict=True)
                assert not result.stale
            elif op == "reopen":
                reader.close()
                reader = StoreReader.open(path, schema, registry)
            oracle[(store.generation, store.journal_length)] = digest(
                store.instance
            )
            # Invariants after *every* step, whoever moved:
            check_reader()
            if op in ("refresh", "reopen"):
                # no concurrent writer: the reader must be fully caught up
                assert reader.position() == (
                    store.generation,
                    store.journal_length,
                )
                assert reader.lag().current
        # the final view always converges
        reader.refresh(strict=True)
        assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)
    finally:
        reader.close()
        store.close()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), OPS)
def test_reader_interleavings(tmp_path_factory, seed, ops):
    run_interleaving(tmp_path_factory, seed, ops)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(st.integers(0, 1_000_000), OPS)
def test_reader_interleavings_slow(tmp_path_factory, seed, ops):
    run_interleaving(tmp_path_factory, seed, ops)
