"""Unit tests for content-schema legality (Section 3.1)."""

from repro.legality.content import ContentChecker
from repro.legality.report import Kind
from repro.model.instance import DirectoryInstance
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.extras import SchemaExtras
from repro.schema.structure_schema import StructureSchema


def schema_with_extras(extras=None):
    classes = (
        ClassSchema()
        .add_core("person")
        .add_core("researcher", parent="person")
        .add_core("orgUnit")
        .add_auxiliary("online")
        .add_auxiliary("facultyMember")
        .allow_auxiliary("researcher", "facultyMember")
        .allow_auxiliary("person", "online")
    )
    attributes = (
        AttributeSchema()
        .declare("top")
        .declare("person", required=("name", "uid"))
        .declare("researcher")
        .declare("orgUnit", required=("ou",))
        .declare("online", allowed=("mail",))
        .declare("facultyMember")
    )
    if extras == "extensible":
        classes.add_auxiliary("extensibleObject")
        classes.allow_auxiliary("person", "extensibleObject")
        attributes.declare("extensibleObject")
        ex = SchemaExtras().declare_extensible("extensibleObject")
    else:
        ex = None
    return DirectorySchema(attributes, classes, StructureSchema(), extras=ex).validate()


def single(classes, attributes=None, extras=None):
    schema = schema_with_extras(extras)
    d = DirectoryInstance()
    d.add_entry(None, "uid=x", classes, attributes or {})
    return ContentChecker(schema), d


def kinds_of(checker, instance):
    return [v.kind for v in checker.check(instance)]


class TestAttributeSchemaConditions:
    def test_legal_entry(self):
        checker, d = single(
            ["person", "top"], {"name": ["n"], "uid": ["x"]}
        )
        assert checker.check(d).is_legal
        assert checker.is_legal(d)

    def test_missing_required_attribute(self):
        checker, d = single(["person", "top"], {"name": ["n"]})
        assert kinds_of(checker, d) == [Kind.MISSING_REQUIRED_ATTRIBUTE]

    def test_required_inherited_through_membership(self):
        # researcher entries also belong to person, so person's required
        # attributes apply.
        checker, d = single(["researcher", "person", "top"], {"uid": ["x"]})
        assert Kind.MISSING_REQUIRED_ATTRIBUTE in kinds_of(checker, d)

    def test_disallowed_attribute(self):
        checker, d = single(
            ["person", "top"], {"name": ["n"], "uid": ["x"], "mail": ["m@x"]}
        )
        assert kinds_of(checker, d) == [Kind.DISALLOWED_ATTRIBUTE]

    def test_aux_class_allows_its_attributes(self):
        checker, d = single(
            ["person", "online", "top"],
            {"name": ["n"], "uid": ["x"], "mail": ["m@x"]},
        )
        assert checker.check(d).is_legal

    def test_extensible_class_allows_everything(self):
        checker, d = single(
            ["person", "extensibleObject", "top"],
            {"name": ["n"], "uid": ["x"], "anything": ["goes"]},
            extras="extensible",
        )
        assert checker.check(d).is_legal

    def test_extensible_does_not_waive_required(self):
        checker, d = single(
            ["person", "extensibleObject", "top"], {}, extras="extensible"
        )
        assert Kind.MISSING_REQUIRED_ATTRIBUTE in kinds_of(checker, d)


class TestClassSchemaConditions:
    def test_unknown_class(self):
        checker, d = single(["person", "martian", "top"],
                            {"name": ["n"], "uid": ["x"]})
        assert Kind.UNKNOWN_CLASS in kinds_of(checker, d)

    def test_no_core_class(self):
        checker, d = single(["online"])
        assert Kind.NO_CORE_CLASS in kinds_of(checker, d)

    def test_missing_superclass(self):
        checker, d = single(["researcher", "top"], {"name": ["n"], "uid": ["x"]})
        assert Kind.MISSING_SUPERCLASS in kinds_of(checker, d)

    def test_missing_top(self):
        checker, d = single(["person"], {"name": ["n"], "uid": ["x"]})
        assert Kind.MISSING_SUPERCLASS in kinds_of(checker, d)

    def test_incomparable_core_classes(self):
        checker, d = single(
            ["person", "orgUnit", "top"],
            {"name": ["n"], "uid": ["x"], "ou": ["u"]},
        )
        assert Kind.INCOMPARABLE_CORE_CLASSES in kinds_of(checker, d)

    def test_disallowed_auxiliary(self):
        # facultyMember is only allowed on researcher, not plain person.
        checker, d = single(
            ["person", "facultyMember", "top"], {"name": ["n"], "uid": ["x"]}
        )
        assert Kind.DISALLOWED_AUXILIARY in kinds_of(checker, d)

    def test_auxiliary_allowed_via_subclass_core(self):
        checker, d = single(
            ["researcher", "person", "facultyMember", "top"],
            {"name": ["n"], "uid": ["x"]},
        )
        assert checker.check(d).is_legal


class TestInstanceLevel:
    def test_figure1_content_legal(self, wp_schema, fig1):
        assert ContentChecker(wp_schema).check(fig1).is_legal

    def test_violations_name_the_entry(self, wp_schema, fig1):
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").remove_value("name", "dan suciu")
        report = ContentChecker(wp_schema).check(fig1)
        assert len(report) == 1
        assert report.violations[0].dn == "uid=suciu,ou=databases,ou=attLabs,o=att"

    def test_check_entry_matches_check(self, wp_schema, fig1):
        checker = ContentChecker(wp_schema)
        total = sum(len(checker.check_entry(e)) for e in fig1)
        assert total == len(checker.check(fig1))
