"""Unit and property tests for distinguished names."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.model.dn import DN, RDN, parse_dn, parse_rdn


class TestRdn:
    def test_str(self):
        assert str(RDN("uid", "laks")) == "uid=laks"

    def test_parse(self):
        assert parse_rdn("uid=laks") == RDN("uid", "laks")

    def test_parse_strips_whitespace(self):
        assert parse_rdn(" ou = databases ") == RDN("ou", "databases")

    def test_escaped_comma_in_value(self):
        rdn = RDN("cn", "Lakshmanan, Laks")
        assert str(rdn) == "cn=Lakshmanan\\, Laks"
        assert parse_rdn(str(rdn)) == rdn

    def test_escaped_equals_in_value(self):
        rdn = RDN("cn", "a=b")
        assert parse_rdn(str(rdn)) == rdn

    def test_missing_separator(self):
        with pytest.raises(ModelError):
            parse_rdn("no-separator")

    def test_empty_attribute(self):
        with pytest.raises(ModelError):
            parse_rdn("=value")


class TestDn:
    def test_parse_and_str(self):
        dn = parse_dn("uid=laks,ou=databases,o=att")
        assert dn.depth() == 3
        assert str(dn) == "uid=laks,ou=databases,o=att"

    def test_rdn_is_leaf_most(self):
        dn = parse_dn("uid=laks,ou=databases,o=att")
        assert dn.rdn == RDN("uid", "laks")

    def test_parent(self):
        dn = parse_dn("uid=laks,ou=databases,o=att")
        assert str(dn.parent()) == "ou=databases,o=att"

    def test_child(self):
        dn = parse_dn("o=att")
        assert str(dn.child("ou=labs")) == "ou=labs,o=att"

    def test_root_predicates(self):
        assert parse_dn("o=att").is_root()
        assert not parse_dn("ou=x,o=att").is_root()
        assert parse_dn("").is_empty()

    def test_empty_dn_has_no_rdn(self):
        with pytest.raises(ModelError):
            _ = parse_dn("").rdn

    def test_empty_dn_has_no_parent(self):
        with pytest.raises(ModelError):
            parse_dn("").parent()

    def test_ancestor_of(self):
        att = parse_dn("o=att")
        labs = parse_dn("ou=labs,o=att")
        laks = parse_dn("uid=laks,ou=labs,o=att")
        assert att.is_ancestor_of(labs)
        assert att.is_ancestor_of(laks)
        assert labs.is_ancestor_of(laks)
        assert not laks.is_ancestor_of(labs)
        assert not att.is_ancestor_of(att)

    def test_ancestor_requires_suffix_match(self):
        assert not parse_dn("o=ibm").is_ancestor_of(parse_dn("ou=x,o=att"))

    def test_empty_dn_is_ancestor_of_everything(self):
        assert parse_dn("").is_ancestor_of(parse_dn("o=att"))
        assert not parse_dn("").is_ancestor_of(parse_dn(""))

    def test_iteration_and_len(self):
        dn = parse_dn("a=1,b=2")
        assert len(dn) == 2
        assert [r.attribute for r in dn] == ["a", "b"]


_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)
_value = st.text(min_size=1, max_size=12).filter(lambda s: s.strip() == s and s.strip())


class TestDnProperties:
    @given(st.lists(st.tuples(_name, _value), min_size=1, max_size=5))
    def test_roundtrip_through_string(self, parts):
        dn = DN(tuple(RDN(a, v) for a, v in parts))
        assert parse_dn(str(dn)) == dn

    @given(st.lists(st.tuples(_name, _value), min_size=2, max_size=5))
    def test_parent_is_proper_ancestor(self, parts):
        dn = DN(tuple(RDN(a, v) for a, v in parts))
        assert dn.parent().is_ancestor_of(dn)

    @given(_name, _value)
    def test_rdn_roundtrip(self, attribute, value):
        rdn = RDN(attribute, value)
        assert parse_rdn(str(rdn)) == rdn
