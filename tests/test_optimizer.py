"""Tests for schema-aware query optimization.

The contract: on instances *legal* w.r.t. the schema, the optimized
query returns exactly the original query's result — property-tested on
generated legal instances; plus per-rule fold tests."""

from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.query.ast import HSelect, Minus, Select
from repro.query.evaluator import evaluate
from repro.query.filters import Equals
from repro.query.optimizer import EMPTY_SELECT, SchemaAwareOptimizer
from repro.query.translate import class_selection, translate_element
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema
from repro.workloads import generate_whitepages, whitepages_schema


def optimizer():
    return SchemaAwareOptimizer(whitepages_schema())


def oc(name):
    return class_selection(name)


class TestFolds:
    def test_forbidden_child_folds_to_empty(self):
        # person ↛ top: persons never have children (of any class).
        result = optimizer().optimize(HSelect(Axis.CHILD, oc("person"), oc("top")))
        assert result.provably_empty
        assert any("forbidden-edge" in n for n in result.notes)

    def test_forbidden_implies_deeper_folds(self):
        # top ↛ organization propagates: organizations have no parents,
        # so (p (oc=organization) (oc=orgGroup)) is empty on legal data.
        result = optimizer().optimize(
            HSelect(Axis.PARENT, oc("organization"), oc("orgGroup"))
        )
        assert result.provably_empty

    def test_required_edge_drops_inner_test(self):
        # organization → orgUnit: the inner test is a tautology.
        result = optimizer().optimize(
            HSelect(Axis.CHILD, oc("organization"), oc("orgUnit"))
        )
        assert result.query == oc("organization")
        assert any("required-edge" in n for n in result.notes)

    def test_required_child_witnesses_descendant_test(self):
        result = optimizer().optimize(
            HSelect(Axis.DESCENDANT, oc("organization"), oc("orgUnit"))
        )
        assert result.query == oc("organization")

    def test_figure4_violation_query_folds_empty(self):
        element_check = translate_element(
            next(iter(whitepages_schema().structure_schema.required_edges))
        )
        result = optimizer().optimize(element_check.query)
        assert result.provably_empty
        assert any(
            "minus-required" in n or "required-edge" in n for n in result.notes
        )

    def test_all_figure4_violation_queries_fold_empty(self):
        """Every Figure 3 element's violation query is provably empty on
        legal instances — the optimizer re-derives the schema."""
        schema = whitepages_schema()
        opt = SchemaAwareOptimizer(schema)
        for element in schema.structure_schema.relationship_elements():
            check = translate_element(element)
            result = opt.optimize(check.query)
            assert result.provably_empty, f"{element}: {result.query}"

    def test_empty_class_folds(self):
        classes = ClassSchema().add_core("a").add_core("b")
        structure = StructureSchema().require_descendant("a", "a")  # a unpopulatable
        schema = DirectorySchema(AttributeSchema(), classes, structure).validate()
        result = SchemaAwareOptimizer(schema).optimize(oc("a"))
        assert result.provably_empty
        assert any("empty-class" in n for n in result.notes)

    def test_minus_with_empty_inner_folds_to_outer(self):
        classes = ClassSchema().add_core("a").add_core("b")
        structure = StructureSchema().require_descendant("a", "a")
        schema = DirectorySchema(AttributeSchema(), classes, structure).validate()
        result = SchemaAwareOptimizer(schema).optimize(Minus(oc("b"), oc("a")))
        assert result.query == oc("b")

    def test_no_fold_when_no_fact_applies(self):
        result = optimizer().optimize(
            HSelect(Axis.CHILD, oc("orgUnit"), oc("person"))
        )
        assert not result.changed
        assert result.query == HSelect(Axis.CHILD, oc("orgUnit"), oc("person"))

    def test_scoped_queries_left_untouched(self):
        from repro.query.ast import SCOPE_DELTA

        scoped = HSelect(
            Axis.CHILD, oc("person").scoped(SCOPE_DELTA), oc("top")
        ).scoped(SCOPE_DELTA)
        result = optimizer().optimize(scoped)
        assert result.query == scoped and not result.changed

    def test_non_class_selections_left_untouched(self):
        query = Select(Equals("mail", "x@y"))
        assert optimizer().optimize(query).query == query


class TestEquivalenceOnLegalInstances:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 7))
    def test_results_identical(self, seed, pick):
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed)
        queries = [
            HSelect(Axis.CHILD, oc("person"), oc("top")),
            HSelect(Axis.CHILD, oc("organization"), oc("orgUnit")),
            HSelect(Axis.DESCENDANT, oc("orgGroup"), oc("person")),
            HSelect(Axis.PARENT, oc("orgUnit"), oc("orgGroup")),
            HSelect(Axis.ANCESTOR, oc("person"), oc("organization")),
            Minus(oc("orgGroup"),
                  HSelect(Axis.DESCENDANT, oc("orgGroup"), oc("person"))),
            Minus(oc("person"),
                  HSelect(Axis.PARENT, oc("person"), oc("orgUnit"))),
            HSelect(Axis.CHILD, oc("top"), oc("organization")),
        ]
        query = queries[pick]
        opt = SchemaAwareOptimizer(schema).optimize(query)
        assert evaluate(opt.query, instance) == evaluate(query, instance)

    def test_empty_select_evaluates_without_scanning(self, fig1):
        from repro.query.evaluator import QueryEvaluator

        evaluator = QueryEvaluator(fig1)
        assert evaluator.evaluate(EMPTY_SELECT) == set()
        assert evaluator.cost == 0
