"""Unit tests for the WAL frame format, snapshot header, legacy journal
scanning, and the typed recovery errors."""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptJournalError, ReplicationError, StaleJournalError
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.store.recovery import recover, scan_store
from repro.store.replicate import (
    decode_stream_message,
    encode_frames_message,
    encode_schema_message,
    encode_snapshot_message,
)
from repro.store.wal import (
    LEGACY_GENERATION,
    decode_snapshot,
    encode_decide,
    encode_prepare,
    encode_record,
    encode_snapshot,
    resolve_decided,
    scan,
    verify_stream,
)
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema

PAYLOAD = "dn: ou=x,o=att\nchangetype: add\nobjectClass: orgUnit\nou: x\n"


class TestFrameFormat:
    def test_roundtrip_single_record(self):
        frame = encode_record(1, 7, PAYLOAD)
        result = scan(frame)
        assert result.tail_state == "clean"
        assert len(result.records) == 1
        record = result.records[0]
        assert (record.seq, record.generation) == (1, 7)
        assert record.payload == PAYLOAD
        assert record.end == len(frame)

    def test_roundtrip_many_records(self):
        data = b"".join(
            encode_record(i + 1, 3, PAYLOAD + f"# tx {i}\n") for i in range(5)
        )
        result = scan(data)
        assert result.tail_state == "clean"
        assert [r.seq for r in result.records] == [1, 2, 3, 4, 5]
        assert result.tail_offset == len(data)

    def test_payload_gets_trailing_newline(self):
        frame = encode_record(1, 1, "dn: ou=x,o=att")
        assert scan(frame).records[0].payload == "dn: ou=x,o=att\n"

    def test_length_prefix_protects_marker_lookalikes(self):
        """Payload lines that look like frame delimiters are data: the
        scanner reads exact byte counts, it never pattern-matches."""
        tricky = "dn: ou=x,o=att\ndescription: #END\ndescription: #WAL seq=1\n"
        data = encode_record(1, 1, tricky) + encode_record(2, 1, PAYLOAD)
        result = scan(data)
        assert result.tail_state == "clean"
        assert len(result.records) == 2
        assert result.records[0].payload == tricky

    def test_checksum_failure_is_corrupt(self):
        frame = bytearray(encode_record(1, 1, PAYLOAD))
        frame[frame.find(b"\n") + 3] ^= 0x01
        result = scan(bytes(frame))
        assert result.tail_state == "corrupt"
        assert "checksum" in result.tail_reason
        assert result.records == []

    def test_sequence_gap_is_corrupt(self):
        data = encode_record(1, 1, PAYLOAD) + encode_record(3, 1, PAYLOAD)
        result = scan(data)
        assert result.tail_state == "corrupt"
        assert "sequence gap" in result.tail_reason
        assert len(result.records) == 1  # the good prefix survives

    def test_generation_change_mid_journal_is_corrupt(self):
        data = encode_record(1, 1, PAYLOAD) + encode_record(2, 2, PAYLOAD)
        assert scan(data).tail_state == "corrupt"

    def test_newer_generation_than_snapshot_is_corrupt(self):
        data = encode_record(1, 9, PAYLOAD)
        assert scan(data, expect_generation=2).tail_state == "corrupt"
        assert scan(data, expect_generation=9).tail_state == "clean"

    def test_truncation_is_torn_not_corrupt(self):
        frame = encode_record(1, 1, PAYLOAD)
        for cut in range(1, len(frame)):
            result = scan(frame[:cut])
            assert result.tail_state == "torn", f"cut at {cut}"
            assert result.records == []
            assert result.tail_bytes == cut

    def test_foreign_complete_lines_are_corrupt(self):
        data = encode_record(1, 1, PAYLOAD) + b"dn: ou=evil,o=att\n"
        result = scan(data)
        assert result.tail_state == "corrupt"
        assert len(result.records) == 1


class Test2PCFrames:
    """The ``#PREPARE``/``#DECIDE`` frame pair and the scan discipline
    that keeps in-doubt state out of every reader."""

    def test_prepare_decide_roundtrip(self):
        data = (
            encode_prepare("tx-1", 1, 3, PAYLOAD)
            + encode_decide("tx-1", "commit", 2, 3)
        )
        result = scan(data)
        assert result.tail_state == "clean"
        prepare, decide = result.records
        assert (prepare.kind, prepare.txid, prepare.seq) == ("prepare", "tx-1", 1)
        assert prepare.payload == PAYLOAD
        assert (decide.kind, decide.txid, decide.verdict) == (
            "decide", "tx-1", "commit",
        )

    def test_undecided_prepare_is_clean_only_as_last_frame(self):
        data = encode_record(1, 1, PAYLOAD) + encode_prepare("tx-9", 2, 1, PAYLOAD)
        result = scan(data)
        assert result.tail_state == "clean"
        assert result.records[-1].kind == "prepare"
        # ... but any frame AFTER an undecided prepare is corruption:
        # the appender never starts a new frame while one is pending.
        overrun = data + encode_record(3, 1, PAYLOAD)
        result = scan(overrun)
        assert result.tail_state == "corrupt"
        assert "undecided prepare" in result.tail_reason

    def test_decide_without_pending_prepare_is_corrupt(self):
        data = encode_record(1, 1, PAYLOAD) + encode_decide("tx-1", "commit", 2, 1)
        result = scan(data)
        assert result.tail_state == "corrupt"
        assert "no pending prepare" in result.tail_reason

    def test_decide_for_wrong_txid_is_corrupt(self):
        data = (
            encode_prepare("tx-1", 1, 1, PAYLOAD)
            + encode_decide("tx-2", "commit", 2, 1)
        )
        result = scan(data)
        assert result.tail_state == "corrupt"
        assert "tx-2" in result.tail_reason and "tx-1" in result.tail_reason

    def test_torn_prepare_is_torn_not_corrupt(self):
        frame = encode_prepare("tx-1", 1, 1, PAYLOAD)
        for cut in range(1, len(frame)):
            result = scan(frame[:cut])
            assert result.tail_state == "torn", f"cut at {cut}"
            assert result.records == []

    def test_prepare_checksum_covers_txid(self):
        frame = bytearray(encode_prepare("tx-1", 1, 1, PAYLOAD))
        frame[frame.find(b"tx-1") + 3] = ord("7")  # tx-1 -> tx-7
        assert scan(bytes(frame)).tail_state == "corrupt"

    def test_resolve_decided_folds_pairs(self):
        data = (
            encode_record(1, 1, PAYLOAD)
            + encode_prepare("tx-1", 2, 1, PAYLOAD + "# committed tx\n")
            + encode_decide("tx-1", "commit", 3, 1)
            + encode_prepare("tx-2", 4, 1, PAYLOAD + "# aborted tx\n")
            + encode_decide("tx-2", "abort", 5, 1)
            + encode_prepare("tx-3", 6, 1, PAYLOAD + "# in doubt\n")
        )
        result = scan(data)
        assert result.tail_state == "clean"
        visible, pending = resolve_decided(result.records)
        # ordinary frame + the committed prepare; the aborted pair and
        # both decide frames vanish; the trailing prepare is in doubt.
        assert [r.seq for r in visible] == [1, 2]
        assert pending is not None and pending.txid == "tx-3"

    def test_invalid_verdict_rejected_at_encode_time(self):
        with pytest.raises(ValueError, match="verdict"):
            encode_decide("tx-1", "maybe", 1, 1)


class TestSnapshotHeader:
    def test_roundtrip(self):
        generation, text = decode_snapshot(encode_snapshot(42, "dn: o=att\n"))
        assert generation == 42
        assert text == "dn: o=att\n"

    def test_missing_header_is_legacy(self):
        generation, text = decode_snapshot("dn: o=att\nobjectClass: org\n")
        assert generation == LEGACY_GENERATION
        assert text.startswith("dn: o=att")

    def test_header_is_an_ldif_comment(self):
        from repro.ldif.reader import parse_ldif_records

        text = encode_snapshot(3, "dn: o=att\nobjectClass: organization\n")
        records = parse_ldif_records(text)
        assert len(records) == 1  # the header line parses as a comment


def _legacy_store(tmp_path, journal_text):
    path = tmp_path / "store"
    path.mkdir()
    (path / "snapshot.ldif").write_text(
        serialize_ldif(figure1_instance()), encoding="utf-8"
    )
    (path / "journal.ldif").write_text(journal_text, encoding="utf-8")
    return str(path)


class TestLegacyJournal:
    def _tx_text(self, i=1):
        from repro.ldif.changes import serialize_changes

        tx = UpdateTransaction().insert(
            f"ou=unit{i},o=att", ["orgUnit", "orgGroup", "top"],
            {"ou": [f"unit{i}"]},
        ).insert(
            f"uid=m{i},ou=unit{i},o=att", ["person", "top"],
            {"uid": [f"m{i}"], "name": [f"m {i}"]},
        )
        return serialize_changes(tx)

    def test_exact_marker_commits(self, tmp_path):
        path = _legacy_store(tmp_path, self._tx_text() + "\n# commit\n\n")
        generation, _, result, legacy, _ = scan_store(path)
        assert legacy and generation == LEGACY_GENERATION
        assert len(result.records) == 1
        assert result.tail_state == "clean"

    def test_whitespace_variant_marker_is_data_not_marker(self, tmp_path):
        """The seed reader's ``line.strip()`` match fired on LDIF
        continuation lines like ``" # commit"``; the scanner now matches
        the marker exactly as the writer emitted it."""
        body = (
            "dn: ou=x,o=att\nchangetype: add\nobjectClass: orgUnit\n"
            "description: prefix\n # commit suffix\n"  # folded LDIF line
        )
        path = _legacy_store(tmp_path, body + "\n# commit\n\n")
        _, _, result, _, _ = scan_store(path)
        assert len(result.records) == 1
        # the folded line stayed inside the record's payload
        assert " # commit" in result.records[0].payload

    def test_torn_legacy_tail_quarantined(self, tmp_path):
        path = _legacy_store(
            tmp_path,
            self._tx_text(1) + "\n# commit\n\ndn: ou=torn,o=att\nchangetype",
        )
        instance, report = recover(
            path, whitepages_schema(), whitepages_registry()
        )
        assert report.tail_state == "torn"
        assert report.replayed == 1
        assert not report.read_only
        assert instance.find("ou=unit1,o=att") is not None
        assert os.path.exists(os.path.join(path, "journal.quarantine"))

    def test_replay_error_raises_typed_error_with_index(self, tmp_path):
        """Satellite: replay errors surface as CorruptJournalError with
        the offending record index, not an unhandled parse exception."""
        bad = "dn: ou=nope,o=att\nchangetype: frobnicate\n"
        path = _legacy_store(
            tmp_path,
            self._tx_text(1) + "\n# commit\n" + bad + "\n# commit\n\n",
        )
        with pytest.raises(CorruptJournalError) as excinfo:
            recover(path, whitepages_schema(), whitepages_registry(),
                    strict=True)
        assert excinfo.value.record_index == 1
        # lenient mode degrades instead, keeping the good prefix
        instance, report = recover(
            path, whitepages_schema(), whitepages_registry()
        )
        assert report.read_only
        assert report.replayed == 1
        assert instance.find("ou=unit1,o=att") is not None


class TestStrictErrors:
    def test_stale_journal_raises_in_strict_mode(self, tmp_path):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        tx = UpdateTransaction().insert(
            "ou=unit1,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["unit1"]}
        ).insert(
            "uid=m1,ou=unit1,o=att", ["person", "top"],
            {"uid": ["m1"], "name": ["m 1"]},
        )
        assert store.apply(tx).applied
        old_journal = open(os.path.join(path, "journal.ldif"), "rb").read()
        store.compact()
        open(os.path.join(path, "journal.ldif"), "wb").write(old_journal)
        store.close()
        with pytest.raises(StaleJournalError):
            recover(path, whitepages_schema(), whitepages_registry(),
                    strict=True)

    def test_corrupt_tail_raises_in_strict_mode(self, tmp_path):
        path = str(tmp_path / "store")
        DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        ).close()
        with open(os.path.join(path, "journal.ldif"), "ab") as fh:
            fh.write(b"garbage line\n")
        with pytest.raises(CorruptJournalError) as excinfo:
            recover(path, whitepages_schema(), whitepages_registry(),
                    strict=True)
        assert excinfo.value.offset == 0
        assert excinfo.value.record_index == 0

    def test_missing_snapshot_raises(self, tmp_path):
        path = tmp_path / "store"
        path.mkdir()
        with pytest.raises(FileNotFoundError, match="snapshot"):
            recover(str(path), whitepages_schema())


# ----------------------------------------------------------------------
# Hypothesis round-trip properties: frames and the replication envelope
# ----------------------------------------------------------------------
_payloads = st.text(max_size=120)
_generations = st.integers(min_value=1, max_value=999)
_verdicts = st.sampled_from(["commit", "abort"])

#: One journal step: a plain commit frame, or an adjacent decided
#: ``#PREPARE``/``#DECIDE`` pair (the only shapes a committed journal
#: prefix — and therefore a replication frames batch — may contain).
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), _payloads),
        st.tuples(st.just("pair"), _payloads, _verdicts),
    ),
    min_size=1,
    max_size=8,
)


def _build_journal(generation, steps):
    """Deterministic journal bytes from a step list; returns the raw
    bytes, the last seq, and the payloads replay must surface."""
    data, seq, visible = b"", 0, []
    for index, step in enumerate(steps):
        expected = step[1] if step[1].endswith("\n") else step[1] + "\n"
        if step[0] == "commit":
            seq += 1
            data += encode_record(seq, generation, step[1])
            visible.append(expected)
        else:
            txid = f"tx-{index}"
            seq += 1
            data += encode_prepare(txid, seq, generation, step[1])
            seq += 1
            data += encode_decide(txid, step[2], seq, generation)
            if step[2] == "commit":
                visible.append(expected)
    return data, seq, visible


class TestFrameRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(generation=_generations, steps=_steps)
    def test_scan_round_trips_any_committed_journal(self, generation, steps):
        """encode → scan is lossless for every mix of commit frames and
        decided 2PC pairs: clean tail, contiguous seqs, exact payloads,
        and ``resolve_decided`` surfaces precisely the committed ones."""
        data, last_seq, visible = _build_journal(generation, steps)
        result = scan(data, expect_generation=generation)
        assert result.tail_state == "clean"
        assert [r.seq for r in result.records] == list(range(1, last_seq + 1))
        assert all(r.generation == generation for r in result.records)
        replay, pending = resolve_decided(result.records)
        assert pending is None
        assert [r.payload for r in replay] == visible

    @settings(max_examples=60, deadline=None)
    @given(generation=_generations, steps=_steps)
    def test_frames_envelope_round_trips_through_json(self, generation, steps):
        """The ``frames`` stream message survives the wire's JSON hop
        byte-for-byte, and its payload passes ``verify_stream`` — the
        exact validation a replica applies before appending."""
        data, last_seq, _ = _build_journal(generation, steps)
        message = json.loads(
            json.dumps(encode_frames_message(generation, 1, data))
        )
        decoded = decode_stream_message(message)
        assert decoded.kind == "frames"
        assert decoded.data == data
        assert [r.seq for r in decoded.records] == list(range(1, last_seq + 1))
        assert [r.seq for r in verify_stream(data, generation, 1)] == \
            [r.seq for r in decoded.records]

    @settings(max_examples=60, deadline=None)
    @given(generation=_generations, steps=_steps, payload=_payloads)
    def test_in_doubt_prepare_never_decodes(self, generation, steps, payload):
        """A batch ending in an undecided ``#PREPARE`` violates the
        stream contract on *both* ends: ``verify_stream`` and the
        envelope decoder refuse it — in-doubt 2PC state cannot reach a
        replica even through a buggy or malicious shipper."""
        data, last_seq, _ = _build_journal(generation, steps)
        data += encode_prepare("tx-hung", last_seq + 1, generation, payload)
        with pytest.raises(ValueError, match="in-doubt"):
            verify_stream(data, generation, 1)
        with pytest.raises(ReplicationError):
            decode_stream_message(encode_frames_message(generation, 1, data))

    @settings(max_examples=60, deadline=None)
    @given(generation=_generations, steps=_steps)
    def test_tampered_frames_message_is_refused(self, generation, steps):
        """Any single-character corruption of the ``data`` field trips
        the envelope checksum."""
        data, _, _ = _build_journal(generation, steps)
        message = encode_frames_message(generation, 1, data)
        text = message["data"]
        flipped = ("#" if text[0] != "#" else "%") + text[1:]
        with pytest.raises(ReplicationError):
            decode_stream_message({**message, "data": flipped})

    @settings(max_examples=60, deadline=None)
    @given(
        generation=_generations,
        crc=st.integers(min_value=0, max_value=2**32 - 1),
        base_seq=st.integers(min_value=0, max_value=10**6),
        folds=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    )
    def test_schema_envelope_round_trips(self, generation, crc, base_seq, folds):
        message = json.loads(
            json.dumps(encode_schema_message(generation, crc, base_seq, folds))
        )
        decoded = decode_stream_message(message)
        assert decoded.kind == "schema"
        assert (decoded.generation, decoded.schema_crc) == (generation, crc)
        assert (decoded.base_seq, decoded.folds) == (base_seq, folds)

    @settings(max_examples=60, deadline=None)
    @given(
        generation=_generations,
        crc=st.integers(min_value=0, max_value=2**32 - 1),
        ldif=st.text(max_size=200),
    )
    def test_snapshot_envelope_round_trips(self, generation, crc, ldif):
        text = encode_snapshot(generation, ldif)
        message = json.loads(
            json.dumps(encode_snapshot_message(generation, crc, text))
        )
        decoded = decode_stream_message(message)
        assert decoded.kind == "snapshot"
        assert decoded.snapshot == text
        assert decode_snapshot(decoded.snapshot) == (generation, ldif)
