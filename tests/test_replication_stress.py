"""Multi-process differential stress test for WAL-shipping replication.

One primary server process storms randomized transactions (with
periodic compactions) while N replica processes follow the
``replicate`` stream into their own local stores; every position a
replica lands on is digest-checked against the primary's oracle log,
and every replica must converge to the primary's final frontier.  The
heavier matrix (more replicas, longer storm, a mid-stream replica
restart) runs under ``-m slow``.
"""

import pytest

from harness.replication_stress import run_replication_stress


def test_replication_stress_differential_oracle(tmp_path):
    results = run_replication_stress(
        str(tmp_path),
        transactions=40,
        replicas=2,
        compact_every=15,
        seed=20260808,
    )
    assert len(results) == 2
    for result in results:
        # every replica verified several distinct positions, including
        # across at least one compaction fold
        assert result["checked"] >= 3


@pytest.mark.slow
def test_replication_stress_differential_oracle_slow(tmp_path):
    results = run_replication_stress(
        str(tmp_path),
        transactions=200,
        replicas=4,
        compact_every=40,
        seed=11,
        deadline_seconds=900,
        restart_replica=0,
        restart_after=20,
    )
    assert len(results) == 4
    for result in results:
        assert result["checked"] >= 5
    assert results[0]["restarts"] > 0
