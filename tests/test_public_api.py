"""Public-API surface tests: everything exported exists, and every
public item is documented (the documentation deliverable, enforced)."""

import importlib
import inspect
import pkgutil


import repro


def all_repro_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_subpackage_alls_resolve(self):
        for module in all_repro_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (
                    f"{module.__name__}.__all__ lists missing {name!r}"
                )

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in all_repro_modules():
            assert module.__doc__ and module.__doc__.strip(), (
                f"module {module.__name__} lacks a docstring"
            )

    def test_every_public_item_is_documented(self):
        undocumented = []
        for module in all_repro_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue  # constants/aliases document themselves in the module
                doc = inspect.getdoc(obj)
                if not doc or len(doc.strip()) < 10:
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_are_documented(self):
        """Every public method of every public class carries a docstring."""
        undocumented = []
        seen = set()
        for module in all_repro_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj) or obj in seen:
                    continue
                seen.add(obj)
                import dataclasses

                field_names = (
                    set(obj.__dataclass_fields__)
                    if dataclasses.is_dataclass(obj)
                    else set()
                )
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_") or attr_name in field_names:
                        continue
                    if not (inspect.isfunction(attr) or isinstance(
                        attr, (property, classmethod, staticmethod)
                    )):
                        continue
                    target = attr
                    if isinstance(attr, (classmethod, staticmethod)):
                        target = attr.__func__
                    elif isinstance(attr, property):
                        target = attr.fget
                    doc = inspect.getdoc(target)
                    if not doc:
                        undocumented.append(f"{obj.__module__}.{obj.__name__}.{attr_name}")
        assert not undocumented, f"undocumented methods: {undocumented}"
