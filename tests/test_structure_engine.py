"""Tests for the batched, parallel, memoized structure-check engine.

The engine must be *report-identical* to ``QueryStructureChecker`` (same
violations, same order) and verdict-identical to
``NaiveStructureChecker`` on arbitrary instances; its memo must
re-evaluate exactly the elements whose classes intersect the dirty set.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.legality.structure_engine import StructureEngine
from repro.model.instance import DirectoryInstance
from repro.schema.structure_schema import StructureSchema
from repro.workloads import random_forest

LABELS = ["k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"]
AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.PARENT, Axis.ANCESTOR]


def report_lines(report):
    """Ordered report identity: kind, message, dn, element — everything."""
    return [(v.kind, v.message, v.dn, v.element) for v in report]


def verdict_signature(report):
    """Order-independent identity (the naive checker orders differently)."""
    return sorted((v.kind, v.element or "", v.dn or "") for v in report)


def big_random_schema(seed, n_elements=36):
    """A randomized structure schema with mixed axes and polarities —
    the >= 32-element shape the satellite asks for."""
    rng = random.Random(seed)
    schema = StructureSchema()
    for _ in range(n_elements):
        source, target = rng.sample(LABELS, 2)
        if rng.random() < 0.35:
            # forbidden edges are downward-only (Definition 2.4)
            schema.forbid(source, rng.choice(AXES[:2]), target)
        else:
            schema.require(source, rng.choice(AXES), target)
    for name in rng.sample(LABELS, 2):
        schema.require_class(name)
    return schema


def tower_instance(n=120, width=4):
    """A deep, bushy forest where every label is populated enough that
    the adaptive evaluator picks whole-forest flag passes."""
    d = DirectoryInstance()
    rng = random.Random(7)
    parents = [None]
    for i in range(n):
        parent = rng.choice(parents[-width:])
        dn = f"o=e{i}" if parent is None else f"o=e{i},{parent}"
        d.add_entry(parent, f"o=e{i}", [LABELS[i % len(LABELS)], "top"])
        parents.append(dn)
    return d


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(10, 80), st.integers(0, 10_000))
    def test_engine_matches_both_checkers(self, seed, size, schema_seed):
        schema = big_random_schema(schema_seed)
        instance = random_forest(n_entries=size, labels=LABELS, seed=seed)
        with StructureEngine(schema) as engine:
            engine_report = engine.check(instance)
            assert engine.is_legal(instance) == engine_report.is_legal
        query_report = QueryStructureChecker(schema).check(instance)
        naive_report = NaiveStructureChecker(schema).check(instance)
        # byte-identical to the query reduction, including order
        assert report_lines(engine_report) == report_lines(query_report)
        # verdict-identical to the naive baseline
        assert verdict_signature(engine_report) == verdict_signature(naive_report)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_parallel_reports_are_deterministic(self, schema_seed):
        schema = big_random_schema(schema_seed)
        instance = random_forest(n_entries=60, labels=LABELS, seed=schema_seed)
        sequential = QueryStructureChecker(schema).check(instance)
        with StructureEngine(schema, parallelism=4) as engine:
            first = engine.check(instance)
            engine.clear_memo()
            second = engine.check(instance)
        assert report_lines(first) == report_lines(second)
        assert report_lines(first) == report_lines(sequential)

    def test_warm_check_after_updates_stays_identical(self):
        schema = big_random_schema(3)
        instance = random_forest(n_entries=50, labels=LABELS, seed=3)
        with StructureEngine(schema) as engine:
            engine.check(instance)
            for i in range(8):
                instance.add_entry(None, f"o=new{i}", [LABELS[i % 3], "top"])
                warm = engine.check(instance)
                cold = QueryStructureChecker(schema).check(instance)
                assert report_lines(warm) == report_lines(cold)


class TestBatching:
    def test_flag_bound_checks_share_two_passes(self):
        schema = (
            StructureSchema()
            .require_descendant("k0", "k1")
            .require_descendant("k2", "k3")
            .require_ancestor("k4", "k5")
            .forbid("k6", Axis.DESCENDANT, "k7")
            .require("k1", Axis.ANCESTOR, "k6")
        )
        instance = tower_instance()
        with StructureEngine(schema) as engine:
            engine.check(instance)
            assert engine.last_batched == 5
            # one reverse sweep answers all descendant checks, one
            # forward sweep all ancestor checks — never one per element
            assert engine.last_flag_passes == 2

    def test_batched_cost_beats_per_query(self):
        elements = [(LABELS[i % 8], LABELS[(i + 3) % 8]) for i in range(16)]
        schema = StructureSchema()
        for source, target in elements:
            schema.require_descendant(source, target)
        instance = tower_instance(n=400)
        with StructureEngine(schema, memoize=False) as engine:
            engine.check(instance)
            batched_cost = engine.last_cost
            assert engine.last_batched > 0
        query = QueryStructureChecker(schema)
        query.check(instance)
        assert batched_cost < query.last_cost

    def test_required_class_is_constant_cost(self):
        schema = StructureSchema().require_class("k0")
        instance = tower_instance(n=200)
        with StructureEngine(schema) as engine:
            report = engine.check(instance)
            assert report.is_legal
            assert engine.last_cost == 1
            assert engine.last_flag_passes == 0


class TestMemoization:
    def test_warm_recheck_evaluates_nothing(self):
        schema = big_random_schema(11)
        instance = random_forest(n_entries=40, labels=LABELS, seed=11)
        with StructureEngine(schema) as engine:
            engine.check(instance)
            assert engine.last_checks_evaluated == len(engine.checks)
            engine.check(instance)
            assert engine.last_checks_evaluated == 0
            assert engine.last_cache_hits == len(engine.checks)
            assert engine.last_cost == 0

    def test_only_dirty_class_elements_reevaluate(self):
        schema = (
            StructureSchema()
            .require_child("k0", "k1")
            .require_descendant("k2", "k3")
            .forbid_child("k4", "k5")
            .require_class("k6")
        )
        instance = random_forest(n_entries=40, labels=LABELS, seed=2)
        with StructureEngine(schema) as engine:
            engine.check(instance)
            # touch k2 only: exactly one element mentions it
            instance.add_entry(None, "o=dirty", ["k2", "top"])
            engine.check(instance)
            assert engine.last_checks_evaluated == 1
            assert engine.last_cache_hits == len(engine.checks) - 1
            # touching an unmentioned class re-evaluates nothing
            instance.add_entry(None, "o=other", ["k7", "top"])
            engine.check(instance)
            assert engine.last_checks_evaluated == 0

    def test_memo_never_leaks_across_instances(self):
        schema = StructureSchema().require_child("k0", "k1")
        legal = DirectoryInstance()
        legal.add_entry(None, "o=a", ["k0", "top"])
        legal.add_entry("o=a", "o=b,o=a", ["k1", "top"])
        illegal = DirectoryInstance()
        illegal.add_entry(None, "o=a", ["k0", "top"])
        illegal.add_entry("o=a", "o=b,o=a", ["k2", "top"])
        with StructureEngine(schema) as engine:
            assert engine.is_legal(legal)
            assert not engine.is_legal(illegal)
            assert engine.is_legal(legal)

    def test_memo_is_bounded_by_schema_size(self):
        schema = big_random_schema(5)
        with StructureEngine(schema) as engine:
            for seed in range(6):
                engine.check(random_forest(n_entries=20, labels=LABELS, seed=seed))
            assert engine.memo_size <= len(engine.checks)

    def test_memoize_false_always_reevaluates(self):
        schema = big_random_schema(9)
        instance = random_forest(n_entries=30, labels=LABELS, seed=9)
        with StructureEngine(schema, memoize=False) as engine:
            engine.check(instance)
            engine.check(instance)
            assert engine.last_cache_hits == 0
            assert engine.last_checks_evaluated == len(engine.checks)

    def test_clear_memo(self):
        schema = big_random_schema(13)
        instance = random_forest(n_entries=30, labels=LABELS, seed=13)
        with StructureEngine(schema) as engine:
            engine.check(instance)
            assert engine.memo_size > 0
            engine.clear_memo()
            assert engine.memo_size == 0
            engine.check(instance)
            assert engine.last_cache_hits == 0


class TestPoolDegradation:
    def test_broken_pool_falls_back_inline(self, monkeypatch):
        schema = big_random_schema(17)
        instance = random_forest(n_entries=50, labels=LABELS, seed=17)
        expected = report_lines(QueryStructureChecker(schema).check(instance))
        engine = StructureEngine(schema, parallelism=4)
        try:
            executor = engine._get_executor()
            assert executor is not None

            def explode(*args, **kwargs):
                raise RuntimeError("pool died")

            monkeypatch.setattr(executor, "map", explode)
            assert report_lines(engine.check(instance)) == expected
            assert engine._pool_broken
            # subsequent calls stay inline and stay correct
            engine.clear_memo()
            assert report_lines(engine.check(instance)) == expected
        finally:
            engine.close()

    def test_pool_unavailable_at_construction(self, monkeypatch):
        import repro.legality.structure_engine as mod

        def no_pool(*args, **kwargs):
            raise OSError("no threads for you")

        monkeypatch.setattr(mod, "ThreadPoolExecutor", no_pool)
        schema = big_random_schema(19)
        instance = random_forest(n_entries=50, labels=LABELS, seed=19)
        with StructureEngine(schema, parallelism=4) as engine:
            report = engine.check(instance)
        expected = QueryStructureChecker(schema).check(instance)
        assert report_lines(report) == report_lines(expected)


class TestLifecycle:
    def test_close_is_idempotent(self):
        engine = StructureEngine(StructureSchema().require_class("k0"))
        engine.close()
        engine.close()

    def test_unknown_parallelism_normalised(self):
        engine = StructureEngine(StructureSchema(), parallelism=0)
        assert engine.parallelism == 1
        engine = StructureEngine(StructureSchema(), parallelism=None)
        assert engine.parallelism == 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
