"""Multi-process test harness for the reader/writer store split.

* :mod:`harness.stress` — a differential stress driver: one writer
  process applying randomized ``update_streams`` transactions (plus
  periodic compactions) while N reader processes concurrently follow
  the WAL, asserting every refreshed view is byte-identical to the
  writer's instance at the same ``(generation, seq)`` position.
* :mod:`harness.crash` — a crash-consistency matrix: the writer is
  killed at every fault-injected I/O boundary (``store/faults.py``)
  and a lock-free reader of the wreckage must agree with crash
  recovery on the committed prefix — and touch nothing.

Both are plain importable modules (driven by ``tests/test_reader_stress.py``
and ``tests/test_reader_crash.py``) so they can also be run by hand
against bigger parameters than CI uses.
"""
