"""Crash-consistency harness: a lock-free reader over writer wreckage.

The scenario mirrors ``tests/test_store_faults.py`` (create → tx1 →
tx2 → compact → tx3, with deterministic transactions so states are
byte-comparable across runs), but the property checked is the
reader/writer split's half of the contract: after the writer is killed
at an arbitrary fault-injected I/O boundary,

1. a :class:`~repro.store.reader.StoreReader` opens the wreckage
   without any lock and materializes **a committed prefix state** —
   one of the states the dry run recorded (or the in-flight successor,
   when the frame fully hit the disk before the crash);
2. the reader's state **equals what a recovery dry-run computes** —
   reader and recovery stop at the same frame on the same damage;
3. the reader **modified nothing**: every store file is byte-identical
   before and after the reader session (readers must be safe to point
   at a store that a recovery tool is about to inspect);
4. after a real (repairing) recovery, the same reader ``refresh()``es
   onto the recovered state — wreckage → repair is just another
   transition the reader follows.
"""

from __future__ import annotations

import os

from repro.ldif.writer import serialize_ldif
from repro.store import DirectoryStore
from repro.store.faults import FaultPlan, FaultyIO
from repro.store.reader import StoreReader
from repro.store.recovery import recover
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)


def unit_tx(i: int) -> UpdateTransaction:
    """The fault-matrix scenario's deterministic unit transaction."""
    return (
        UpdateTransaction()
        .insert(
            f"ou=unit{i},o=att",
            ["orgUnit", "orgGroup", "top"],
            {"ou": [f"unit{i}"]},
        )
        .insert(
            f"uid=member{i},ou=unit{i},o=att",
            ["person", "top"],
            {"uid": [f"member{i}"], "name": [f"member {i}"]},
        )
    )


def run_crash_scenario(path: str, io):
    """create → tx1 → tx2 → compact → tx3 under ``io``, recording
    ``(ops_executed, serialized state)`` at every committed point.
    Raises whatever fault ``io`` injects."""
    states = []
    store = DirectoryStore.create(
        path, whitepages_schema(), figure1_instance(), io=io
    )
    try:
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        for i in (1, 2):
            assert store.apply(unit_tx(i)).applied
            states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        store.compact()
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
        assert store.apply(unit_tx(3)).applied
        states.append((io.plan.ops_executed, serialize_ldif(store.instance)))
    finally:
        store.close()
    return states


def dry_run(tmp_path):
    """Undisturbed run: the reference states and the op count."""
    io = FaultyIO(FaultPlan())
    states = run_crash_scenario(str(tmp_path / "dry"), io)
    return states, io.plan


def snapshot_files(path: str):
    """``{filename: bytes}`` of every file in the store directory — the
    before/after comparison proving the reader wrote nothing."""
    contents = {}
    for name in sorted(os.listdir(path)):
        full = os.path.join(path, name)
        if os.path.isfile(full):
            with open(full, "rb") as fh:
                contents[name] = fh.read()
    return contents


def allowed_states(states, crash_op):
    """The committed-prefix rule: the last state whose I/O completed
    before ``crash_op``, or its successor when the in-flight frame fully
    reached the disk."""
    last = max(i for i, (ops, _) in enumerate(states) if ops <= crash_op)
    allowed = {states[last][1]}
    if last + 1 < len(states):
        allowed.add(states[last + 1][1])
    return allowed


def assert_reader_matches_wreckage(path: str, states, crash_op: int) -> None:
    """Properties 1-4 above, for one crashed store directory."""
    before = snapshot_files(path)

    with StoreReader.open(
        path, whitepages_schema(), whitepages_registry()
    ) as reader:
        reader_state = serialize_ldif(reader.instance)

        # 1. a committed prefix state, nothing else
        assert reader_state in allowed_states(states, crash_op), (
            f"crash at op {crash_op}: reader materialized a state the "
            "writer never committed"
        )

        # 2. reader and recovery agree on the committed prefix
        recovered_instance, report = recover(
            path,
            whitepages_schema(),
            whitepages_registry(),
            repair=False,  # fsck dry-run: decide, touch nothing
        )
        assert serialize_ldif(recovered_instance) == reader_state, (
            f"crash at op {crash_op}: reader stopped at a different "
            f"frame than recovery (tail={report.tail_state}: "
            f"{report.notes})"
        )

        # 3. the reader (and the recovery dry-run) wrote nothing
        assert snapshot_files(path) == before, (
            f"crash at op {crash_op}: a read-only pass modified the store"
        )

        # 4. repairing recovery is just another transition to follow
        with DirectoryStore.open(
            path, whitepages_schema(), registry=whitepages_registry()
        ) as repaired:
            repaired_state = serialize_ldif(repaired.instance)
            refreshed = reader.refresh()
            assert not refreshed.stale, refreshed.note
            assert serialize_ldif(reader.instance) == repaired_state, (
                f"crash at op {crash_op}: reader did not converge onto "
                "the recovered state"
            )
