"""Differential multi-process stress driver for the reader/writer split.

Topology: one **writer** process runs a randomized transaction stream
(``workloads.update_streams.random_transaction``) with periodic
compactions against a real on-disk store; N **reader** processes open
lock-free :class:`~repro.store.reader.StoreReader` views of the same
directory and spin on ``refresh()``.

The correctness oracle is *differential*: after every durable commit
(and every compaction) the writer appends one line

    ``<generation> <seq> <blake2b(serialize_ldif(instance))>``

to an oracle file via a single ``O_APPEND`` write (well under
``PIPE_BUF``, so lines never interleave).  Whenever a reader's refresh
moves its view to a new ``(generation, seq)`` position, the reader
digests its own instance and compares against the oracle entry for
that exact position — waiting for the entry if the writer has
committed but not yet logged it.  A mismatch means the reader
materialized a state the writer never passed through at that position:
the one thing the split must never do.

Termination: the writer drops a done-marker after its last commit;
readers run until their view reaches the writer's final position (so
every reader provably catches up, not merely samples).
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.errors import StaleReadError
from repro.ldif.writer import serialize_ldif
from repro.store import DirectoryStore
from repro.store.reader import StoreReader
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

ORACLE_FILE = "oracle.log"
DONE_FILE = "writer.done"


def state_digest(instance) -> str:
    """Canonical digest of an instance's full serialized content — the
    byte-identity the stress oracle compares."""
    return hashlib.blake2b(serialize_ldif(instance).encode("utf-8")).hexdigest()


def _append_oracle(path: str, generation: int, seq: int, digest: str) -> None:
    line = f"{generation} {seq} {digest}\n".encode("ascii")
    assert len(line) < 512  # single O_APPEND write: never interleaves
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        written = os.write(fd, line)
        while written < len(line):  # pragma: no cover - short-write safety
            written += os.write(fd, line[written:])
    finally:
        os.close(fd)


def load_oracle(path: str):
    """``{(generation, seq): digest}`` plus the last-written position
    (the writer's frontier), or ``({}, None)`` before the file exists."""
    entries = {}
    last = None
    digest_len = hashlib.blake2b().digest_size * 2
    try:
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                # A concurrent reader can observe the frontier line
                # mid-write: only complete lines count.
                if not line.endswith("\n"):
                    continue
                parts = line.split()
                if len(parts) != 3 or len(parts[2]) != digest_len:
                    continue
                position = (int(parts[0]), int(parts[1]))
                entries[position] = parts[2]
                last = position
    except FileNotFoundError:
        pass
    return entries, last


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
def writer_main(
    workdir: str,
    transactions: int,
    compact_every: int,
    seed: int,
    inserts: int = 2,
) -> None:
    """The writer process body: create, commit, compact, mark done."""
    store_dir = os.path.join(workdir, "store")
    oracle = os.path.join(workdir, ORACLE_FILE)
    done = os.path.join(workdir, DONE_FILE)
    store = DirectoryStore.create(
        store_dir, whitepages_schema(), figure1_instance(), whitepages_registry()
    )
    try:
        # The oracle line always lands *after* the state it describes is
        # durable, so any position a reader can observe is (eventually)
        # in the oracle.
        _append_oracle(oracle, store.generation, 0, state_digest(store.instance))
        for i in range(transactions):
            tx = random_transaction(store.instance, inserts=inserts, seed=seed + i)
            outcome = store.apply(tx)
            assert outcome.applied, f"stress transaction {i} rejected: {outcome}"
            _append_oracle(
                oracle,
                store.generation,
                store.journal_length,
                state_digest(store.instance),
            )
            if compact_every and (i + 1) % compact_every == 0:
                store.compact()
                _append_oracle(
                    oracle, store.generation, 0, state_digest(store.instance)
                )
    finally:
        store.close()
        with open(done, "w") as fh:
            fh.write("done\n")


def reader_main(
    workdir: str, reader_id: int, deadline_seconds: float = 120.0
) -> None:
    """The reader process body: follow the WAL, check every new position
    against the oracle, stop once caught up with a finished writer.
    Writes a JSON result file; any exception lands in the result too so
    the driver can report it instead of a bare nonzero exit."""
    store_dir = os.path.join(workdir, "store")
    oracle = os.path.join(workdir, ORACLE_FILE)
    done = os.path.join(workdir, DONE_FILE)
    result_path = os.path.join(workdir, f"reader-{reader_id}.json")
    result = {
        "reader": reader_id,
        "checked": 0,
        "refreshes": 0,
        "rebootstraps": 0,
        "mismatches": [],
        "error": None,
        "final": None,
    }
    deadline = time.monotonic() + deadline_seconds
    reader = None
    try:
        # The store directory appears atomically (create() renames a
        # complete temp dir into place) but possibly after we start.
        while reader is None:
            try:
                reader = StoreReader.open(
                    store_dir, whitepages_schema(), whitepages_registry()
                )
            except (FileNotFoundError, StaleReadError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.01)
        checked_position = None
        while True:
            refreshed = reader.refresh()
            result["refreshes"] += 1
            if refreshed.rebootstrapped:
                result["rebootstraps"] += 1
            if not refreshed.advanced:
                # Polite polling: a busy spin would starve the writer on
                # small machines (CI runners can be single-core).
                time.sleep(0.002)
            position = reader.position()
            if position != checked_position:
                digest = state_digest(reader.instance)
                entries, _ = load_oracle(oracle)
                while position not in entries:
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"oracle never recorded position {position}"
                        )
                    time.sleep(0.005)
                    entries, _ = load_oracle(oracle)
                if entries[position] != digest:
                    result["mismatches"].append(
                        {"position": list(position), "digest": digest,
                         "expected": entries[position]}
                    )
                result["checked"] += 1
                checked_position = position
            if os.path.exists(done):
                _, frontier = load_oracle(oracle)
                if frontier is not None and checked_position == frontier:
                    break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"reader stuck at {checked_position} before the "
                    "writer's frontier"
                )
        result["final"] = list(checked_position)
    except BaseException as exc:  # report, don't just die
        result["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        if reader is not None:
            reader.close()
        with open(result_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_stress(
    workdir: str,
    transactions: int = 200,
    readers: int = 4,
    compact_every: int = 50,
    seed: int = 20260806,
    deadline_seconds: float = 120.0,
):
    """Run the full topology; returns the list of reader result dicts.

    Raises ``AssertionError`` with full diagnostics when any process
    failed, any reader saw a divergent state, or any reader failed to
    catch up with the writer's final position.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    writer = ctx.Process(
        target=writer_main,
        args=(workdir, transactions, compact_every, seed),
        name="stress-writer",
    )
    reader_procs = [
        ctx.Process(
            target=reader_main,
            args=(workdir, i, deadline_seconds),
            name=f"stress-reader-{i}",
        )
        for i in range(readers)
    ]
    writer.start()
    for proc in reader_procs:
        proc.start()
    writer.join(deadline_seconds)
    for proc in reader_procs:
        proc.join(deadline_seconds)
    alive = [p.name for p in [writer, *reader_procs] if p.is_alive()]
    for proc in [writer, *reader_procs]:
        if proc.is_alive():  # pragma: no cover - deadline pathology
            proc.terminate()
            proc.join()
    assert not alive, f"stress processes missed the deadline: {alive}"
    assert writer.exitcode == 0, f"writer exited {writer.exitcode}"

    _, frontier = load_oracle(os.path.join(workdir, ORACLE_FILE))
    results = []
    for i in range(readers):
        path = os.path.join(workdir, f"reader-{i}.json")
        assert os.path.exists(path), f"reader {i} left no result file"
        with open(path, "r", encoding="utf-8") as fh:
            result = json.load(fh)
        assert result["error"] is None, f"reader {i}: {result['error']}"
        assert not result["mismatches"], (
            f"reader {i} diverged from the writer: {result['mismatches'][:3]}"
        )
        assert result["final"] == list(frontier), (
            f"reader {i} finished at {result['final']}, "
            f"writer's frontier is {frontier}"
        )
        assert result["checked"] > 0
        results.append(result)
    return results
