"""Crash-consistency harness for cross-shard two-phase commit.

The scenario opens a pre-created sharded store (Figure 1 split across a
nested cut) under fault-injected I/O and drives spanning transactions
through 2PC: one that commits, one whose composite check fails (so the
coordinator aborts after the prepares), and a second commit.  The
property checked is all-or-nothing atomicity:

1. after the coordinator/participant process is killed at *any* I/O
   boundary — or at any of the named protocol steps
   (``2pc:begin`` … ``2pc:complete``) — reopening the sharded store
   resolves every in-doubt participant from the coordinator log
   (presumed abort) and materializes one of the states the dry run
   recorded: every shard committed or every shard rolled back, never a
   mix;
2. the decision point is the coordinator log's durable ``commit``
   record: a crash at any named point *before* it recovers to the
   pre-transaction state, a crash at any point *after* it recovers to
   the post-transaction state;
3. nothing is left in doubt: after recovery no shard holds a pending
   prepare and the coordinator log has no unfinished transaction;
4. the recovered store stays fully usable — a fresh spanning
   transaction still commits.
"""

from __future__ import annotations

from repro.ldif.writer import serialize_ldif
from repro.store.faults import FaultPlan, FaultyIO
from repro.store.sharded import ShardedStore
from repro.store.txlog import inspect_txlog
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)

NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}


def make_sharded(path: str) -> None:
    """Create the scenario's sharded store (clean I/O) and close it."""
    ShardedStore.create(
        path,
        whitepages_schema(),
        NESTED_BASES,
        figure1_instance(),
        whitepages_registry(),
    ).close()


def commit_tx(i: int) -> UpdateTransaction:
    """A deterministic spanning transaction both shards accept and the
    composite check passes: commits through 2PC."""
    return (
        UpdateTransaction()
        .insert(
            f"uid=c{i}att,o=att",
            ["person", "top"],
            {"uid": [f"c{i}att"], "name": [f"c{i} att"]},
        )
        .insert(
            f"uid=c{i}labs,ou=databases,ou=attLabs,o=att",
            ["person", "top"],
            {"uid": [f"c{i}labs"], "name": [f"c{i} labs"]},
        )
    )


def abort_tx() -> UpdateTransaction:
    """A spanning transaction that 2PC must abort: the empty orgUnit in
    the labs shard is illegal, so after the att prepare the coordinator
    decides abort and rolls the staged memory back."""
    return (
        UpdateTransaction()
        .insert(
            "uid=never,o=att",
            ["person", "top"],
            {"uid": ["never"], "name": ["never lands"]},
        )
        .insert(
            "ou=ghost,ou=attLabs,o=att",
            ["orgUnit", "orgGroup", "top"],
            {"ou": ["ghost"]},
        )
    )


def composite_state(store: ShardedStore) -> str:
    """The canonical byte-comparable serialization of the composite."""
    return serialize_ldif(store.composite_instance())


def run_2pc_scenario(path: str, io, transactions=None):
    """open → spanning transactions under ``io``, recording
    ``(ops_executed, composite state)`` at every decided point.  Raises
    whatever fault ``io`` injects (``ShardedStore.open``'s own handler
    releases the shard locks when the crash lands inside the open)."""
    if transactions is None:
        transactions = [commit_tx(1), abort_tx(), commit_tx(2)]
    states = []
    store = ShardedStore.open(
        path, whitepages_schema(), whitepages_registry(), io=io
    )
    try:
        states.append((io.plan.ops_executed, composite_state(store)))
        for tx in transactions:
            store.apply(tx)
            states.append((io.plan.ops_executed, composite_state(store)))
    finally:
        store.close()
    return states


def dry_run_2pc(tmp_path, transactions=None):
    """Undisturbed run: the reference states, the op count, and the
    named fault points crossed (in order)."""
    path = str(tmp_path / "dry")
    make_sharded(path)
    io = FaultyIO(FaultPlan())
    states = run_2pc_scenario(path, io, transactions)
    return states, io.plan


def allowed_2pc_states(states, crash_op):
    """The all-or-nothing rule: the last decided state whose I/O
    completed before ``crash_op``, or its successor when the in-flight
    decision became durable before the crash — never a per-shard mix."""
    candidates = [i for i, (ops, _) in enumerate(states) if ops <= crash_op]
    last = max(candidates) if candidates else 0
    allowed = {states[last][1]}
    if last + 1 < len(states):
        allowed.add(states[last + 1][1])
    return allowed


def assert_atomic_recovery(path: str, states, crash_op: int) -> str:
    """Properties 1, 3 and 4 above for one crashed store directory;
    returns the recovered composite state (for point-wise assertions)."""
    with ShardedStore.open(
        path, whitepages_schema(), whitepages_registry()
    ) as recovered:
        got = composite_state(recovered)
        assert got in allowed_2pc_states(states, crash_op), (
            f"crash at op {crash_op}: recovered composite is neither "
            "all-committed nor all-rolled-back"
        )
        assert recovered.check().is_legal, (
            f"crash at op {crash_op}: recovered composite is illegal"
        )
        # nothing left in doubt, anywhere
        for name in recovered.shard_names():
            assert recovered.shard(name).pending_txid is None, (
                f"crash at op {crash_op}: shard {name!r} still holds an "
                "in-doubt prepare after recovery"
            )
    log = inspect_txlog(path)
    assert log is None or not log.unfinished(), (
        f"crash at op {crash_op}: coordinator log still has unfinished "
        "transactions after recovery"
    )
    # the store stays fully usable: a fresh spanning transaction commits
    with ShardedStore.open(
        path, whitepages_schema(), whitepages_registry()
    ) as probe:
        assert probe.apply(commit_tx(9)).applied
    return got
