"""Multi-process differential stress driver for WAL-shipping replication.

Topology: one **primary** process runs a :class:`DirectoryServer` over a
real on-disk store and storms it with randomized transactions (plus
periodic compactions) through its own wire client; N **replica**
processes each run a :class:`~repro.store.replicate.ReplicaApplier` fed
by the ``replicate`` stream of that server, persisting frames to their
own local store directories.

The correctness oracle is the same differential one
:mod:`harness.stress` uses: after every durable commit (and every
compaction) the primary appends ``<generation> <seq> <digest>`` to an
oracle log.  Whenever a replica's applied position moves, the replica
digests its *own local store's* instance and compares against the
oracle entry for that exact position — a mismatch means replication
materialized a state the primary never committed at that position.

Termination: the primary drops a done-marker after its last commit;
replicas follow the live stream until their applied position reaches
the primary's final frontier (so every replica provably converges, not
merely samples).  The slow lane additionally restarts a replica
mid-stream — close the applier and the connection, reopen from the
durable local position, resubscribe — exercising resume-from-WAL under
load.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from harness.stress import (
    DONE_FILE,
    ORACLE_FILE,
    _append_oracle,
    load_oracle,
    state_digest,
)
from repro.store import DirectoryStore
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

PORT_FILE = "primary.port"
STOP_FILE = "primary.stop"


def _write_atomic(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="ascii") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _wait_for_port(workdir: str, deadline: float) -> int:
    path = os.path.join(workdir, PORT_FILE)
    while True:
        try:
            with open(path, "r", encoding="ascii") as fh:
                return int(fh.read().strip())
        except (FileNotFoundError, ValueError):
            if time.monotonic() > deadline:
                raise TimeoutError("primary never published its port")
            time.sleep(0.01)


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
def primary_main(
    workdir: str,
    transactions: int,
    compact_every: int,
    seed: int,
    inserts: int = 2,
    deadline_seconds: float = 120.0,
) -> None:
    """The primary process body: serve, storm, mark done, keep serving
    until the driver drops the stop marker (replicas must be able to
    finish catching up after the last commit)."""
    asyncio.run(
        _primary(workdir, transactions, compact_every, seed, inserts,
                 deadline_seconds)
    )


async def _primary(
    workdir: str,
    transactions: int,
    compact_every: int,
    seed: int,
    inserts: int,
    deadline_seconds: float,
) -> None:
    from repro.server import DirectoryServer
    from repro.server.client import DirectoryClient

    store_dir = os.path.join(workdir, "primary")
    oracle = os.path.join(workdir, ORACLE_FILE)
    done = os.path.join(workdir, DONE_FILE)
    stop = os.path.join(workdir, STOP_FILE)

    store = DirectoryStore.create(
        store_dir, whitepages_schema(), figure1_instance(), whitepages_registry()
    )
    store.close()

    server = DirectoryServer(
        store_dir, whitepages_schema(), whitepages_registry(), port=0
    )
    await server.start()
    _write_atomic(os.path.join(workdir, PORT_FILE), f"{server.port}\n")
    loop = asyncio.get_running_loop()
    try:
        _append_oracle(
            oracle, server.store.generation, 0, state_digest(server.store.instance)
        )
        client = await DirectoryClient.connect("127.0.0.1", server.port)
        await client.bind("cn=stress-writer")
        from repro.ldif.changes import serialize_changes

        for i in range(transactions):
            tx = random_transaction(
                server.store.instance, inserts=inserts, seed=seed + i
            )
            response = await client.txn(serialize_changes(tx))
            assert response["applied"], (
                f"stress transaction {i} rejected: {response}"
            )
            _append_oracle(
                oracle,
                server.store.generation,
                server.store.journal_length,
                state_digest(server.store.instance),
            )
            if compact_every and (i + 1) % compact_every == 0:
                # Same single writer thread the server's mutations use —
                # the storm above is sequential, so nothing overlaps.
                await loop.run_in_executor(
                    server._writer_pool, server.store.compact
                )
                await server._commit_happened()  # wake replication feeds
                _append_oracle(
                    oracle, server.store.generation, 0,
                    state_digest(server.store.instance),
                )
        await client.unbind()
        with open(done, "w") as fh:
            fh.write("done\n")
        # Keep serving until every replica reports in (driver drops the
        # stop marker) — followers still need the tail of the stream.
        deadline = time.monotonic() + deadline_seconds
        while not os.path.exists(stop):
            if time.monotonic() > deadline:
                break  # pragma: no cover - driver died; shut down anyway
            await asyncio.sleep(0.02)
    finally:
        await server.stop(drain=False)


def replica_main(
    workdir: str,
    replica_id: int,
    deadline_seconds: float = 120.0,
    restart_after: int = 0,
) -> None:
    """The replica process body: subscribe, apply, digest-check every
    observed position against the oracle, stop once converged with a
    finished primary.  ``restart_after > 0``: after that many verified
    positions, tear the applier and connection down once and resume
    from the durable local position (the slow lane's restart probe).
    Writes a JSON result file; any exception lands in the result too."""
    result = {
        "replica": replica_id,
        "checked": 0,
        "restarts": 0,
        "snapshots": 0,
        "mismatches": [],
        "error": None,
        "final": None,
    }
    result_path = os.path.join(workdir, f"replica-{replica_id}.json")
    try:
        asyncio.run(
            _replica(workdir, replica_id, deadline_seconds, restart_after, result)
        )
    except BaseException as exc:  # report, don't just die
        result["error"] = f"{type(exc).__name__}: {exc}"
    with open(result_path, "w", encoding="utf-8") as fh:
        json.dump(result, fh)


async def _replica(
    workdir: str,
    replica_id: int,
    deadline_seconds: float,
    restart_after: int,
    result: dict,
) -> None:
    from repro.server.client import DirectoryClient, sync_replica
    from repro.store.replicate import ReplicaApplier

    oracle = os.path.join(workdir, ORACLE_FILE)
    done = os.path.join(workdir, DONE_FILE)
    replica_dir = os.path.join(workdir, f"replica-{replica_id}")
    deadline = time.monotonic() + deadline_seconds
    port = _wait_for_port(workdir, deadline)
    loop = asyncio.get_running_loop()

    async def attach():
        client = await DirectoryClient.connect("127.0.0.1", port)
        await client.bind(f"cn=replica-{replica_id}")
        applier = ReplicaApplier(
            replica_dir,
            whitepages_schema(),
            whitepages_registry(),
            upstream=f"127.0.0.1:{port}",
        )
        await sync_replica(client, applier)
        return client, applier

    client, applier = await attach()
    checked_position = None
    restarted = restart_after <= 0
    try:
        while True:
            position = applier.position()
            if position != checked_position:
                digest = state_digest(applier.reader.instance)
                entries, _ = load_oracle(oracle)
                while position not in entries:
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"oracle never recorded position {position}"
                        )
                    await asyncio.sleep(0.005)
                    entries, _ = load_oracle(oracle)
                if entries[position] != digest:
                    result["mismatches"].append(
                        {"position": list(position), "digest": digest,
                         "expected": entries[position]}
                    )
                result["checked"] += 1
                checked_position = position
                if not restarted and result["checked"] >= restart_after:
                    restarted = True
                    applier.close()
                    await client.close()
                    client, applier = await attach()
                    result["restarts"] += 1
                    checked_position = None  # re-verify the resume point
                    continue
            if os.path.exists(done):
                _, frontier = load_oracle(oracle)
                if frontier is not None and checked_position == frontier:
                    break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replica stuck at {checked_position} before the "
                    "primary's frontier"
                )
            try:
                message = await client.next_stream_message(timeout=0.2)
            except asyncio.TimeoutError:
                continue
            await loop.run_in_executor(None, applier.apply_message, message)
        result["snapshots"] = applier.snapshots_installed
        result["final"] = list(checked_position)
    finally:
        applier.close()
        await client.close()


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_replication_stress(
    workdir: str,
    transactions: int = 100,
    replicas: int = 3,
    compact_every: int = 30,
    seed: int = 20260808,
    deadline_seconds: float = 120.0,
    restart_replica: int = -1,
    restart_after: int = 0,
):
    """Run the full topology; returns the list of replica result dicts.

    Raises ``AssertionError`` with full diagnostics when any process
    failed, any replica applied a state the primary never committed, or
    any replica failed to converge to the primary's final frontier.
    ``restart_replica``/``restart_after``: make that replica restart
    itself after verifying that many positions (slow-lane probe).
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    primary = ctx.Process(
        target=primary_main,
        args=(workdir, transactions, compact_every, seed, 2, deadline_seconds),
        name="replication-primary",
    )
    replica_procs = [
        ctx.Process(
            target=replica_main,
            args=(
                workdir,
                i,
                deadline_seconds,
                restart_after if i == restart_replica else 0,
            ),
            name=f"replication-replica-{i}",
        )
        for i in range(replicas)
    ]
    primary.start()
    for proc in replica_procs:
        proc.start()
    for proc in replica_procs:
        proc.join(deadline_seconds)
    _write_atomic(os.path.join(workdir, STOP_FILE), "stop\n")
    primary.join(deadline_seconds)
    alive = [p.name for p in [primary, *replica_procs] if p.is_alive()]
    for proc in [primary, *replica_procs]:
        if proc.is_alive():  # pragma: no cover - deadline pathology
            proc.terminate()
            proc.join()
    assert not alive, f"replication processes missed the deadline: {alive}"
    assert primary.exitcode == 0, f"primary exited {primary.exitcode}"

    _, frontier = load_oracle(os.path.join(workdir, ORACLE_FILE))
    results = []
    for i in range(replicas):
        path = os.path.join(workdir, f"replica-{i}.json")
        assert os.path.exists(path), f"replica {i} left no result file"
        with open(path, "r", encoding="utf-8") as fh:
            result = json.load(fh)
        assert result["error"] is None, f"replica {i}: {result['error']}"
        assert not result["mismatches"], (
            f"replica {i} diverged from the primary: {result['mismatches'][:3]}"
        )
        assert result["final"] == list(frontier), (
            f"replica {i} finished at {result['final']}, "
            f"primary's frontier is {frontier}"
        )
        assert result["checked"] > 0
        if i == restart_replica and restart_after > 0:
            assert result["restarts"] > 0, (
                f"replica {i} never exercised the mid-stream restart"
            )
        results.append(result)
    return results
