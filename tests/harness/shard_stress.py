"""Differential multi-process stress driver for the sharded store.

Topology: a flat K-shard store (one ``o=orgN`` subtree per shard), one
**writer process per shard** opened through
:meth:`~repro.store.sharded.ShardedStore.open_shard` (its own advisory
lock, shard-local schema), each running an independent randomized
transaction stream with periodic compactions; M **composite reader**
processes open lock-free :class:`~repro.store.sharded.CompositeReader`
views of the same root and spin on ``refresh()``.

The correctness oracle is per shard: writer *W* appends

    ``<generation> <seq> <blake2b(serialize_ldif(instance))>``

to ``oracle-<shard>.log`` after every durable commit (same O_APPEND
single-write idiom as :mod:`harness.stress`).  Whenever a composite
reader's refresh moves shard *S*'s slice to a new position, the reader
digests ``shard_reader(S).instance`` and compares against *S*'s oracle
entry for that exact position — so every slice of the composite view is
provably a state its shard's writer actually passed through.  On top of
the per-slice checks the reader validates the stitch itself each round:
the composite instance must hold exactly the union of the slices.

Termination: every writer drops ``writer-<shard>.done`` after its last
commit; readers run until every shard's checked position reaches that
shard's oracle frontier (catch-up on all shards, not sampling).
"""

from __future__ import annotations

import json
import os
import time

from harness.stress import _append_oracle, load_oracle, state_digest
from repro.errors import ShardMapError, StaleReadError
from repro.store.sharded import CompositeReader, ShardedStore
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)


def shard_names(shards: int):
    return [f"org{i}" for i in range(shards)]


def _oracle_path(workdir: str, name: str) -> str:
    return os.path.join(workdir, f"oracle-{name}.log")


def _done_path(workdir: str, name: str) -> str:
    return os.path.join(workdir, f"writer-{name}.done")


def create_store(workdir: str, shards: int, seed: int) -> str:
    """Create the K-shard store the processes will contend on; returns
    its root directory."""
    root = os.path.join(workdir, "sharded")
    initial = generate_whitepages(
        orgs=shards, units_per_level=2, depth=1, persons_per_unit=2,
        seed=seed,
    )
    bases = {name: f"o={name}" for name in shard_names(shards)}
    ShardedStore.create(
        root, whitepages_schema(), bases, initial, whitepages_registry()
    ).close()
    return root


# ----------------------------------------------------------------------
# processes
# ----------------------------------------------------------------------
def shard_writer_main(
    workdir: str,
    name: str,
    transactions: int,
    compact_every: int,
    seed: int,
) -> None:
    """One shard's writer body: open the shard standalone, commit a
    randomized stream against it, log every durable state, mark done."""
    root = os.path.join(workdir, "sharded")
    oracle = _oracle_path(workdir, name)
    store = ShardedStore.open_shard(
        root, name, whitepages_schema(), whitepages_registry()
    )
    try:
        _append_oracle(
            oracle, store.generation, store.journal_length,
            state_digest(store.instance),
        )
        for i in range(transactions):
            tx = random_transaction(store.instance, inserts=2, seed=seed + i)
            outcome = store.apply(tx)
            assert outcome.applied, (
                f"shard {name} stress transaction {i} rejected: "
                f"{outcome.report}"
            )
            _append_oracle(
                oracle, store.generation, store.journal_length,
                state_digest(store.instance),
            )
            if compact_every and (i + 1) % compact_every == 0:
                store.compact()
                _append_oracle(
                    oracle, store.generation, 0, state_digest(store.instance)
                )
    finally:
        store.close()
        with open(_done_path(workdir, name), "w") as fh:
            fh.write("done\n")


def composite_reader_main(
    workdir: str,
    shards: int,
    reader_id: int,
    deadline_seconds: float = 120.0,
) -> None:
    """One composite reader body: follow every shard's WAL through one
    stitched view, digest-check each slice against its shard's oracle,
    validate the stitch, stop once caught up on every shard."""
    root = os.path.join(workdir, "sharded")
    names = shard_names(shards)
    result_path = os.path.join(workdir, f"reader-{reader_id}.json")
    result = {
        "reader": reader_id,
        "checked": {name: 0 for name in names},
        "refreshes": 0,
        "rebootstraps": 0,
        "stitch_checks": 0,
        "mismatches": [],
        "error": None,
        "final": None,
    }
    deadline = time.monotonic() + deadline_seconds
    reader = None
    try:
        while reader is None:
            try:
                reader = CompositeReader.open(
                    root, whitepages_schema(), whitepages_registry()
                )
            except (FileNotFoundError, ShardMapError, StaleReadError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.01)
        checked = {name: None for name in names}
        while True:
            refreshed = reader.refresh()
            result["refreshes"] += 1
            result["rebootstraps"] += sum(
                1 for r in refreshed.per_shard.values() if r.rebootstrapped
            )
            if not refreshed.advanced:
                time.sleep(0.002)
            frontier = reader.frontier()
            advanced_names = [
                name for name in names if frontier[name] != checked[name]
            ]
            for name in advanced_names:
                position = frontier[name]
                digest = state_digest(reader.shard_reader(name).instance)
                entries, _ = load_oracle(_oracle_path(workdir, name))
                while position not in entries:
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"oracle of shard {name} never recorded "
                            f"position {position}"
                        )
                    time.sleep(0.005)
                    entries, _ = load_oracle(_oracle_path(workdir, name))
                if entries[position] != digest:
                    result["mismatches"].append(
                        {"shard": name, "position": list(position),
                         "digest": digest, "expected": entries[position]}
                    )
                result["checked"][name] += 1
                checked[name] = position
            if advanced_names:
                # The stitch itself: the composite view must hold
                # exactly the union of the (just-verified) slices.
                composite = reader.instance
                slices = sum(
                    len(reader.shard_reader(name).instance)
                    for name in names
                )
                if len(composite) != slices or len(
                    composite.roots()
                ) != shards:
                    result["mismatches"].append(
                        {"shard": "__stitch__",
                         "composite": len(composite), "slices": slices}
                    )
                result["stitch_checks"] += 1
            if all(os.path.exists(_done_path(workdir, n)) for n in names):
                frontiers = {
                    name: load_oracle(_oracle_path(workdir, name))[1]
                    for name in names
                }
                if all(
                    frontiers[name] is not None
                    and checked[name] == frontiers[name]
                    for name in names
                ):
                    break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"reader stuck at {checked} before the writers' "
                    "frontiers"
                )
        result["final"] = {name: list(checked[name]) for name in names}
    except BaseException as exc:  # report, don't just die
        result["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        if reader is not None:
            reader.close()
        with open(result_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_shard_stress(
    workdir: str,
    shards: int = 2,
    transactions: int = 40,
    readers: int = 2,
    compact_every: int = 15,
    seed: int = 20260806,
    deadline_seconds: float = 120.0,
):
    """Run the full topology; returns the list of reader result dicts.

    Raises ``AssertionError`` with diagnostics when any process failed,
    any reader saw a slice its shard's writer never committed (or a
    broken stitch), or any reader failed to catch up on every shard.
    """
    import multiprocessing

    create_store(workdir, shards, seed)
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(
            target=shard_writer_main,
            args=(workdir, name, transactions, compact_every,
                  seed + 1000 * i),
            name=f"shard-writer-{name}",
        )
        for i, name in enumerate(shard_names(shards))
    ]
    reader_procs = [
        ctx.Process(
            target=composite_reader_main,
            args=(workdir, shards, i, deadline_seconds),
            name=f"composite-reader-{i}",
        )
        for i in range(readers)
    ]
    for proc in writers + reader_procs:
        proc.start()
    for proc in writers + reader_procs:
        proc.join(deadline_seconds)
    alive = [p.name for p in writers + reader_procs if p.is_alive()]
    for proc in writers + reader_procs:
        if proc.is_alive():  # pragma: no cover - deadline pathology
            proc.terminate()
            proc.join()
    assert not alive, f"stress processes missed the deadline: {alive}"
    for proc in writers:
        assert proc.exitcode == 0, f"{proc.name} exited {proc.exitcode}"

    frontiers = {
        name: load_oracle(_oracle_path(workdir, name))[1]
        for name in shard_names(shards)
    }
    results = []
    for i in range(readers):
        path = os.path.join(workdir, f"reader-{i}.json")
        assert os.path.exists(path), f"reader {i} left no result file"
        with open(path, "r", encoding="utf-8") as fh:
            result = json.load(fh)
        assert result["error"] is None, f"reader {i}: {result['error']}"
        assert not result["mismatches"], (
            f"reader {i} diverged: {result['mismatches'][:3]}"
        )
        assert result["final"] == {
            name: list(frontier) for name, frontier in frontiers.items()
        }, (
            f"reader {i} finished at {result['final']}, writers' "
            f"frontiers are {frontiers}"
        )
        assert all(count > 0 for count in result["checked"].values())
        assert result["stitch_checks"] > 0
        results.append(result)
    return results
