"""Kill-the-primary-mid-storm: the front-door failover harness.

One scenario = an in-process topology (primary + followers + front
door) under a sustained write storm, with the primary killed at a
chosen write index (``kill_at``) — the crash-harness equivalent of
``kill -9`` between two protocol steps.  A concurrent reader holds
``require_seq`` at the storm's latest acknowledged write throughout.

The invariants the scenario enforces, before, during, and after the
automatic promotion:

1. **No regressing frontier.**  Every position a single connection is
   served is >= every position it was served before — across the
   generation bump included.
2. **Read-your-writes or a typed refusal.**  A read carrying
   ``require_seq`` either serves a frontier >= that position or fails
   with ``unavailable`` (retryable) / ``position_lost`` (the position
   died with the old primary) — never silently older state.
3. **``position_lost`` is honest.**  It may only be answered for
   positions strictly past the recorded lost floor of a dead
   generation.
4. **The storm completes.**  Writes resume after promotion (every
   pre-kill acknowledged write at or below the lost floor survives;
   an ambiguous in-flight write is retried and a duplicate rejection
   then counts as committed), and exactly one failover is recorded.

``run_kill_matrix`` sweeps ``kill_at`` over the storm — every index in
the slow lane, a stride in the default lane.
"""

from __future__ import annotations

import asyncio

from repro.server import DirectoryClient, DirectoryServer, FrontDoor
from repro.server.client import ServerError
from repro.server.frontdoor import position_geq
from repro.store import DirectoryStore
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)

__all__ = ["run_failover_scenario", "run_kill_matrix"]

PARENT = "ou=databases,ou=attLabs,o=att"

#: Writes per storm.  Every index is a kill point in the full matrix.
STORM_WRITES = 18


def _person(index):
    return (
        f"uid=w{index},{PARENT}",
        ["person", "top"],
        {"uid": [f"w{index}"], "name": [f"w {index}"]},
    )


def _plain(position):
    return (position["generation"], position["seq"])


async def _build_topology(root, followers):
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_path = str(root / "primary")
    DirectoryStore.create(
        primary_path, schema, figure1_instance(), registry
    ).close()
    primary = DirectoryServer(primary_path, schema, registry, port=0)
    await primary.start()
    upstream = f"127.0.0.1:{primary.port}"
    replicas = []
    for index in range(followers):
        replica = DirectoryServer(
            str(root / f"replica{index}"), schema, registry,
            port=0, replica_of=upstream,
        )
        await replica.start()
        replicas.append(replica)
    door = FrontDoor(
        upstream, [f"127.0.0.1:{r.port}" for r in replicas],
        probe_interval=0.05, probe_timeout=2.0, fail_after=2,
    )
    await door.start()
    # wait until every follower serves its bootstrap snapshot, so the
    # storm exercises live streaming rather than bootstrap races
    for replica in replicas:
        probe = await DirectoryClient.connect("127.0.0.1", replica.port)
        try:
            for _ in range(200):
                reply = await probe.position()
                if position_geq(reply.get("position"),
                                {"generation": 1, "seq": 0}):
                    break
                await asyncio.sleep(0.05)
            else:
                raise AssertionError("follower never bootstrapped")
        finally:
            await probe.close()
    return primary, replicas, door


async def _write_with_retry(client, index, deadline):
    """One storm write through the door; retries ride out the failover
    window.  Returns ``(position, ambiguous_retry)``."""
    ambiguous = False
    while True:
        try:
            reply = await client.add(*_person(index))
        except ServerError as exc:
            assert exc.code == "unavailable", (
                f"write {index}: unexpected error {exc.code}: {exc}"
            )
            # an in-flight write may or may not have committed; the
            # retry below treats a duplicate rejection as committed
            ambiguous = True
            if asyncio.get_event_loop().time() > deadline:
                raise AssertionError(
                    f"write {index} never succeeded after failover"
                )
            await asyncio.sleep(0.05)
            continue
        if reply["applied"]:
            return reply["position"], ambiguous
        assert ambiguous, (
            f"write {index} rejected without an ambiguous prior "
            f"attempt: {reply}"
        )
        return reply["position"], ambiguous


async def _reader_loop(door_port, shared, results):
    """Hold ``require_seq`` at the storm's latest ack; served frontiers
    must satisfy it and never regress on this connection."""
    client = await DirectoryClient.connect("127.0.0.1", door_port)
    await client.bind("cn=storm-reader")
    last_served = None
    try:
        while not shared["done"]:
            require = shared["acked"][-1] if shared["acked"] else None
            try:
                reply = await client.search(
                    filter="(uid=w*)", require_seq=require
                )
            except ServerError as exc:
                if exc.code == "unavailable":
                    await asyncio.sleep(0.02)
                    continue
                assert exc.code == "position_lost", (
                    f"reader: unexpected error {exc.code}: {exc}"
                )
                results["position_losses"].append(require)
                # invariant 3 is checked against the recorded floors
                # once the topology settles (the floor may be being
                # recorded concurrently with this very response)
                await asyncio.sleep(0.02)
                continue
            served = reply["position"]
            if require is not None:
                assert position_geq(served, require), (
                    f"staleness contract broken: served {served} "
                    f"for require_seq {require}"
                )
            if last_served is not None:
                assert position_geq(served, last_served), (
                    f"frontier regressed on one connection: {served} "
                    f"after {last_served}"
                )
            last_served = served
            results["reads_served"] += 1
            await asyncio.sleep(0)
    finally:
        await client.close()
    results["last_served"] = last_served


async def _run_storm(root, kill_at, followers):
    primary, replicas, door = await _build_topology(root, followers)
    results = {
        "reads_served": 0,
        "position_losses": [],
        "last_served": None,
    }
    shared = {"acked": [], "done": False}
    writer = await DirectoryClient.connect("127.0.0.1", door.port)
    await writer.bind("cn=storm-writer")
    reader_task = asyncio.ensure_future(
        _reader_loop(door.port, shared, results)
    )
    try:
        deadline = asyncio.get_event_loop().time() + 60
        for index in range(STORM_WRITES):
            if index == kill_at:
                await primary.kill()
            position, ambiguous = await _write_with_retry(
                writer, index, deadline
            )
            assert not ambiguous or index >= kill_at, (
                "a write before the kill point saw the failover window"
            )
            shared["acked"].append(position)
        shared["done"] = True
        await reader_task

        # -- post-storm verdicts ---------------------------------------
        topology = await writer.request("topology")
        assert topology["failovers"] == 1, topology
        assert topology["primary"]["alive"]
        floors = topology["lost_floors"]
        assert len(floors) == 1
        floor = _plain(floors[0])

        # invariant 3: every position_lost the reader saw is genuinely
        # past the recorded floor of the dead generation
        for require in results["position_losses"]:
            assert require is not None
            lost = _plain(require)
            assert lost[0] == floor[0] and lost[1] > floor[1], (
                f"position_lost answered for {lost}, floor {floor}"
            )

        # invariant 4: acked-at-or-below-the-floor writes all survive;
        # the final frontier serves every post-failover write too
        final = await writer.search(
            filter="(uid=w*)", require_seq=shared["acked"][-1]
        )
        surviving = {
            entry["attributes"]["uid"][0] for entry in final["entries"]
        }
        for index, position in enumerate(shared["acked"]):
            acked = _plain(position)
            if acked <= floor or acked[0] > floor[0]:
                assert f"w{index}" in surviving, (
                    f"write {index} acked at {acked} (floor {floor}, "
                    f"new generation included) vanished"
                )
        assert results["reads_served"] > 0
        results["acked"] = list(shared["acked"])
        results["floor"] = floor
        results["survivors"] = surviving
        return results
    finally:
        shared["done"] = True
        if not reader_task.done():
            reader_task.cancel()
            await asyncio.gather(reader_task, return_exceptions=True)
        await writer.close()
        await door.stop(drain=True, timeout=5)
        for replica in replicas:
            await replica.stop(drain=False)
        await primary.stop(drain=False)


def run_failover_scenario(root, kill_at, *, followers=2):
    """One storm with the primary killed before write ``kill_at``."""
    return asyncio.run(_run_storm(root, kill_at, followers))


def run_kill_matrix(root, *, stride=1, followers=2):
    """Sweep the kill point across the storm.  ``stride=1`` is the full
    every-protocol-step matrix (slow lane); larger strides sample it
    (default lane)."""
    outcomes = {}
    for kill_at in range(0, STORM_WRITES, stride):
        scenario_root = root / f"kill{kill_at}"
        scenario_root.mkdir()
        outcomes[kill_at] = run_failover_scenario(
            scenario_root, kill_at, followers=followers
        )
    return outcomes
