"""Failover crash-consistency harness for WAL-shipping replication.

The scenario drives one deterministic replication lifecycle with the
replica's I/O fault-injected (the primary's own crash safety is already
pinned by ``tests/test_store_faults.py``): bootstrap from a shipped
snapshot, follow incrementally, fold a primary compaction locally,
follow again, then promote the replica to writer.  The primary side
runs clean I/O, so every run commits the identical history and records
a *differential oracle*: the digest of the primary's instance at every
committed position, plus the exact journal/snapshot bytes of each
generation.

The property checked after killing the replica at any I/O boundary —
or at any named protocol step (``repl:snapshot-install`` …
``promote:state``) — and recovering:

1. **committed prefix**: the recovered replica sits at a position the
   primary really committed, with the digest the primary had there —
   never a state the primary did not pass through, and never short of
   a frame the replica had durably applied;
2. **byte identity**: the recovered journal is byte-for-byte a prefix
   of the primary's journal for that generation, and the snapshot is
   byte-identical to the primary's for that generation;
3. **no loss on resume**: reattaching a fresh applier catches the
   replica up to the primary's frontier;
4. **promotability**: a clean ``promote`` then succeeds, the promoted
   store holds exactly the frontier state, and it accepts new writes.

A separate scenario pins the refusal: promotion of a copy holding a
visible in-doubt ``#PREPARE`` fails with a clear error, while the
replication cut itself never ships the in-doubt frame in the first
place.
"""

from __future__ import annotations

import os

import pytest

from harness.stress import state_digest
from repro.store import DirectoryStore
from repro.store.faults import FaultPlan, FaultyIO, InjectedCrash
from repro.store.recovery import JOURNAL_FILE, SNAPSHOT_FILE, recover
from repro.store.replicate import FrameSource, ReplicaApplier, promote, pump
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

#: The primary's final committed position in the scenario (generation 2
#: after one compaction, one commit past the fold).
FRONTIER = (2, 1)


def _read(directory: str, name: str) -> bytes:
    """File bytes; a missing journal reads as empty (a crash between
    snapshot install and journal creation leaves exactly that, and
    recovery treats it as an empty journal)."""
    try:
        with open(os.path.join(directory, name), "rb") as fh:
            return fh.read()
    except FileNotFoundError:
        if name == JOURNAL_FILE:
            return b""
        raise


def scenario_tx(i: int):
    """A deterministic insert transaction (one unit + its person).

    ``random_transaction`` draws entry names from a process-global
    counter, so it is not reproducible across scenarios in one process;
    the crash matrix rebuilds the primary per crash point and needs the
    histories byte-identical, hence fixed transactions like the 2PC
    harness uses."""
    from repro.updates.operations import UpdateTransaction

    unit_dn = f"ou=repl{i},ou=databases,ou=attLabs,o=att"
    return (
        UpdateTransaction()
        .insert(unit_dn, ["orgUnit", "orgGroup", "top"], {"ou": [f"repl{i}"]})
        .insert(
            f"uid=repl{i},{unit_dn}",
            ["person", "top"],
            {"uid": [f"repl{i}"], "name": [f"repl {i}"]},
        )
    )


def _commit(store: DirectoryStore, i: int) -> None:
    outcome = store.apply(scenario_tx(i))
    assert outcome.applied, f"scenario transaction {i} rejected: {outcome}"


def run_replication_scenario(primary_dir: str, replica_dir: str, io):
    """Drive the full lifecycle with the replica side under ``io``.

    Returns ``(oracle, journals, snapshots)``: digests by committed
    position, and the primary's journal/snapshot bytes per generation.
    Raises whatever fault ``io`` injects; the primary store and the
    applier's advisory lock are released either way (a killed process
    would drop the flock)."""
    schema, registry = whitepages_schema(), whitepages_registry()
    store = DirectoryStore.create(
        primary_dir, schema, figure1_instance(), registry
    )
    oracle, journals, snapshots = {}, {}, {}
    applier = None
    try:
        oracle[(1, 0)] = state_digest(store.instance)
        snapshots[1] = _read(primary_dir, SNAPSHOT_FILE)
        for i in range(2):
            _commit(store, i)
            oracle[(1, store.journal_length)] = state_digest(store.instance)

        source = FrameSource(primary_dir, schema)
        applier = ReplicaApplier(
            replica_dir, schema, registry, io=io, upstream="crash-harness"
        )
        pump(source, applier)  # snapshot bootstrap + first frames

        for i in range(2, 4):
            _commit(store, i)
            oracle[(1, store.journal_length)] = state_digest(store.instance)
        journals[1] = _read(primary_dir, JOURNAL_FILE)
        pump(source, applier)  # incremental follow

        store.compact()
        oracle[(2, 0)] = state_digest(store.instance)
        snapshots[2] = _read(primary_dir, SNAPSHOT_FILE)
        pump(source, applier)  # local fold (no snapshot re-download)

        _commit(store, 4)
        oracle[(2, 1)] = state_digest(store.instance)
        journals[2] = _read(primary_dir, JOURNAL_FILE)
        pump(source, applier)  # follow past the fold

        applier.close()
        applier = None
        promoted = promote(replica_dir, schema, registry, io=io)
        promoted.close()
        # Promotion compacts: a new epoch holding exactly the frontier.
        oracle[(3, 0)] = oracle[FRONTIER]
    finally:
        if applier is not None:
            applier.close()
        store.close()
    return oracle, journals, snapshots


def dry_run(tmp_path):
    """Undisturbed run: the oracle, the op count, and the named fault
    points crossed (in order)."""
    io = FaultyIO(FaultPlan())
    oracle, journals, snapshots = run_replication_scenario(
        str(tmp_path / "dry-primary"), str(tmp_path / "dry-replica"), io
    )
    return oracle, journals, snapshots, io.plan


def assert_replica_recovers(
    primary_dir: str,
    replica_dir: str,
    oracle,
    journals,
    snapshots,
    label: str,
) -> None:
    """Properties 1–4 above for one crashed replica directory.

    The resume/promotion targets are *this run's* primary frontier —
    a crash early in the scenario stops the primary's clean-I/O side
    wherever the injected fault aborted the driver, so the dry run's
    final frontier may not exist yet in this directory pair."""
    schema, registry = whitepages_schema(), whitepages_registry()
    _, primary_report = recover(primary_dir, schema, registry, repair=False)
    frontier = (primary_report.generation, primary_report.last_seq)
    assert frontier in oracle, (
        f"{label}: the crashed run's primary stopped at {frontier}, "
        "which the dry run never recorded"
    )
    position = None
    if os.path.exists(os.path.join(replica_dir, SNAPSHOT_FILE)):
        instance, report = recover(replica_dir, schema, registry, repair=True)
        assert report.in_doubt_txid is None, (
            f"{label}: replication manufactured in-doubt 2PC state "
            f"({report.in_doubt_txid})"
        )
        assert not report.read_only, (
            f"{label}: crash left damage beyond a torn tail: "
            f"{report.summary()}"
        )
        position = (report.generation, report.last_seq)
        assert position in oracle, (
            f"{label}: recovered position {position} is not a committed "
            "primary state"
        )
        assert state_digest(instance) == oracle[position], (
            f"{label}: recovered state at {position} differs from the "
            "primary's committed state there"
        )
        if position[0] in journals:
            local = _read(replica_dir, JOURNAL_FILE)
            assert journals[position[0]].startswith(local), (
                f"{label}: recovered journal is not a byte prefix of the "
                f"primary's generation-{position[0]} journal"
            )
        if position[0] in snapshots:
            assert _read(replica_dir, SNAPSHOT_FILE) == snapshots[position[0]], (
                f"{label}: recovered snapshot is not byte-identical to "
                f"the primary's generation-{position[0]} snapshot"
            )

    if position is None or position[0] <= frontier[0]:
        # Still a follower: resuming must reach the frontier losslessly.
        applier = ReplicaApplier(replica_dir, schema, registry)
        try:
            source = FrameSource(primary_dir, schema)
            source.attach(*applier.position())
            pump(source, applier)
            assert applier.position() == frontier, (
                f"{label}: resumed replica stuck at {applier.position()}, "
                f"primary's frontier is {frontier}"
            )
            assert state_digest(applier.reader.instance) == oracle[frontier], (
                f"{label}: resumed replica diverged at the frontier"
            )
        finally:
            applier.close()

    # Promotion from any committed prefix succeeds and keeps exactly
    # the frontier state (the replica above was resumed to it).
    promoted = promote(replica_dir, schema, registry)
    try:
        assert state_digest(promoted.instance) == oracle[frontier], (
            f"{label}: promoted store does not hold the frontier state"
        )
        outcome = promoted.apply(
            random_transaction(promoted.instance, inserts=1, seed=999)
        )
        assert outcome.applied, (
            f"{label}: promoted store rejected a fresh write: {outcome}"
        )
    finally:
        promoted.close()


def run_point_matrix(tmp_path, oracle, journals, snapshots, points) -> int:
    """Kill the replica at every named protocol step; returns how many
    crashes actually fired (a point after the promote handoff may sit
    past the plan's reach on some runs — never silently zero)."""
    fired = 0
    for index, name in enumerate(points):
        primary_dir = str(tmp_path / f"pt{index}-primary")
        replica_dir = str(tmp_path / f"pt{index}-replica")
        io = FaultyIO(FaultPlan(crash_at_point=name))
        with pytest.raises(InjectedCrash):
            run_replication_scenario(primary_dir, replica_dir, io)
        fired += 1
        assert_replica_recovers(
            primary_dir, replica_dir, oracle, journals, snapshots,
            label=f"crash at point {name!r}",
        )
    return fired


def run_op_matrix(
    tmp_path, oracle, journals, snapshots, total_ops: int,
    stride: int = 5, fractions=(1.0,),
) -> int:
    """Kill the replica at every ``stride``-th I/O operation × torn
    fraction; returns the number of crash runs performed."""
    runs = 0
    for crash_op in range(0, total_ops, stride):
        for fraction in fractions:
            primary_dir = str(tmp_path / f"op{crash_op}-f{fraction}-primary")
            replica_dir = str(tmp_path / f"op{crash_op}-f{fraction}-replica")
            io = FaultyIO(
                FaultPlan(crash_at_op=crash_op, torn_fraction=fraction)
            )
            with pytest.raises(InjectedCrash):
                run_replication_scenario(primary_dir, replica_dir, io)
            runs += 1
            assert_replica_recovers(
                primary_dir, replica_dir, oracle, journals, snapshots,
                label=f"crash at op {crash_op} torn={fraction}",
            )
    return runs
