"""Unit tests for the WAL-shipping replication layer.

The crash matrix (``tests/test_replication_crash.py``) and the
multi-process stress harness pin the end-to-end properties; this file
pins the individual contracts of :mod:`repro.store.replicate`: the
stream envelope's validation, the shipper's attach/poll state machine,
the applier's enforced schema-before-data ordering, duplicate and gap
handling, durable resume, the local compaction fold, and promotion's
generation bump.
"""

from __future__ import annotations

import os

import pytest

from harness.stress import state_digest
from repro.errors import (
    ReplicaDivergedError,
    ReplicationError,
    StoreError,
    StoreLockedError,
)
from repro.store import DirectoryStore
from repro.store.manifest import read_manifest
from repro.store.recovery import REPLICA_STATE_FILE
from repro.store.replicate import (
    FrameSource,
    ReplicaApplier,
    decode_stream_message,
    encode_schema_message,
    promote,
    pump,
    read_replica_state,
    schema_fingerprint,
)
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)


@pytest.fixture
def primary(tmp_path):
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_dir = str(tmp_path / "primary")
    store = DirectoryStore.create(
        primary_dir, schema, figure1_instance(), registry
    )
    yield store, primary_dir, schema, registry, str(tmp_path / "replica")
    store.close()


def _commit(store, count=1):
    for i in range(count):
        outcome = store.apply(
            random_transaction(store.instance, inserts=1, seed=i)
        )
        assert outcome.applied


class TestEnvelope:
    def test_rejects_non_replication_message(self):
        with pytest.raises(ReplicationError, match="not a replication"):
            decode_stream_message({"op": "search", "filter": "(uid=*)"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ReplicationError, match="unknown stream message"):
            decode_stream_message(
                {"op": "repl", "kind": "gossip", "generation": 1}
            )

    def test_rejects_malformed_frames_message(self):
        with pytest.raises(ReplicationError, match="malformed frames"):
            decode_stream_message(
                {"op": "repl", "kind": "frames", "generation": 1}
            )

    def test_fingerprint_is_deterministic(self):
        crc = schema_fingerprint(whitepages_schema())
        assert crc == schema_fingerprint(whitepages_schema())
        assert 0 <= crc <= 0xFFFFFFFF


class TestFrameSource:
    def test_fresh_follower_gets_snapshot_then_schema(self, primary):
        store, primary_dir, schema, _, _ = primary
        source = FrameSource(primary_dir, schema)
        assert source.attach(0, 0) is False
        kinds = [m["kind"] for m in source.poll()]
        assert kinds == ["snapshot", "schema"]
        assert source.poll() == []  # caught up

    def test_incremental_follow_ships_only_new_frames(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            _commit(store, 2)
            batch = source.poll()
            assert [m["kind"] for m in batch] == ["frames"]
            assert batch[0]["start_seq"] == 1  # starts right after the snapshot
            decoded = decode_stream_message(batch[0])
            assert decoded.records[-1].seq == store.journal_length

    def test_attach_at_durable_position_resumes(self, primary):
        store, primary_dir, schema, _, _ = primary
        _commit(store, 2)
        source = FrameSource(primary_dir, schema)
        assert source.attach(store.generation, store.journal_length) is True
        # a resume announcement precedes any data, nothing to ship yet
        assert [m["kind"] for m in source.poll()] == ["schema"]
        _commit(store)
        batch = source.poll()
        assert [m["kind"] for m in batch] == ["frames"]
        assert batch[0]["start_seq"] == store.journal_length

    def test_attach_rejects_unknown_generation(self, primary):
        store, primary_dir, schema, _, _ = primary
        source = FrameSource(primary_dir, schema)
        assert source.attach(store.generation + 5, 0) is False


class TestSchemaBeforeData:
    def test_frames_before_announce_are_refused(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        _commit(store)
        source = FrameSource(primary_dir, schema)
        snapshot_msg, schema_msg = source.poll()
        (frames_msg,) = source.poll()
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            applier.apply_message(snapshot_msg)
            # a snapshot installs state but does not license data frames
            with pytest.raises(ReplicationError, match="must precede data"):
                applier.apply_message(frames_msg)
            applier.apply_message(schema_msg)
            applier.apply_message(frames_msg)
            assert applier.position() == (store.generation, 1)

    def test_schema_fingerprint_mismatch_is_refused(self, primary):
        _, _, schema, registry, replica_dir = primary
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            alien = encode_schema_message(1, applier.schema_crc ^ 0xDEAD, 0)
            with pytest.raises(ReplicationError, match="fingerprint mismatch"):
                applier.apply_message(alien)


class TestReplicaApplier:
    def test_empty_replica_has_no_read_surface_yet(self, primary):
        _, _, schema, registry, replica_dir = primary
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            assert applier.position() == (0, 0)
            with pytest.raises(StoreError, match="no state yet"):
                applier.instance

    def test_duplicate_delivery_is_idempotent(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            _commit(store)
            (frames_msg,) = source.poll()
            applier.apply_message(frames_msg)
            applied = applier.frames_applied
            applier.apply_message(frames_msg)  # reconnect overlap
            assert applier.frames_applied == applied
            assert applier.position() == (store.generation, store.journal_length)

    def test_gap_in_stream_is_refused(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            _commit(store)
            source.poll()  # lose this batch
            _commit(store)
            (late,) = source.poll()
            with pytest.raises(ReplicaDivergedError, match="gap"):
                applier.apply_message(late)

    def test_resume_from_durable_position(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        _commit(store)
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(
            replica_dir, schema, registry, upstream="primary:1389"
        ) as applier:
            pump(source, applier)
            position = applier.position()
        _commit(store, 2)
        # a restarted applier recovers its position and its upstream
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            assert applier.position() == position
            assert applier.upstream == "primary:1389"
            source = FrameSource(primary_dir, schema)
            assert source.attach(*position) is True
            pump(source, applier)
            assert applier.position() == (store.generation, store.journal_length)
            assert state_digest(applier.instance) == state_digest(store.instance)

    def test_fold_follows_compaction_without_snapshot(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            _commit(store, 2)
            pump(source, applier)
            store.compact()
            _commit(store)
            pump(source, applier)
            assert applier.snapshots_installed == 1  # the bootstrap only
            assert applier.position() == (store.generation, 1)
            assert state_digest(applier.instance) == state_digest(store.instance)
            manifest = read_manifest(replica_dir)
            assert manifest is not None and manifest.role == "replica"

    def test_directory_lock_excludes_second_applier(self, primary):
        _, _, schema, registry, replica_dir = primary
        with ReplicaApplier(replica_dir, schema, registry):
            with pytest.raises(StoreLockedError):
                ReplicaApplier(replica_dir, schema, registry)

    def test_status_and_lag(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            assert applier.lag_frames() is None  # no frontier observed
            pump(source, applier)
            _commit(store, 3)
            applier.frontier = (store.generation, store.journal_length)
            assert applier.lag_frames() == 3
            pump(source, applier)
            status = applier.status()
            assert status["lag_frames"] == 0
            assert status["generation"] == store.generation
            assert status["frames_applied"] >= 3


class TestPromotion:
    def test_promote_starts_a_new_epoch(self, primary):
        store, primary_dir, schema, registry, replica_dir = primary
        _commit(store, 2)
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            digest = state_digest(applier.instance)
        promoted = promote(replica_dir, schema, registry)
        try:
            # generation bump: frames from the old primary are stale now
            assert promoted.generation == store.generation + 1
            assert state_digest(promoted.instance) == digest
            _commit(promoted)
            assert read_replica_state(replica_dir) is None
            assert not os.path.exists(
                os.path.join(replica_dir, REPLICA_STATE_FILE)
            )
            manifest = read_manifest(replica_dir)
            assert manifest is not None and manifest.role != "replica"
        finally:
            promoted.close()


NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}


@pytest.fixture
def sharded_primary(tmp_path):
    from repro.store.sharded import ShardedStore

    schema, registry = whitepages_schema(), whitepages_registry()
    primary_dir = str(tmp_path / "sharded-primary")
    store = ShardedStore.create(
        primary_dir, schema, NESTED_BASES, figure1_instance(), registry
    )
    yield store, primary_dir, schema, registry, str(tmp_path / "cohort")
    store.close()


def _spanning_commit(store, index):
    from repro.updates.operations import UpdateTransaction

    tx = UpdateTransaction()
    tx.insert(f"uid=r{index},o=att", ["person", "top"],
              {"uid": [f"r{index}"], "name": [f"r {index}"]})
    tx.insert(f"uid=l{index},ou=attLabs,o=att", ["person", "top"],
              {"uid": [f"l{index}"], "name": [f"l {index}"]})
    outcome = store.apply(tx)
    assert outcome.applied
    return outcome


def _pump_sharded(source, applier):
    """Drain the multiplexed stream: poll until a cycle ships nothing.
    (Bootstrap takes two polls — snapshots first, then frames.)"""
    while True:
        batch = source.poll()
        if not batch:
            return
        for message in batch:
            applier.apply_message(message)


def _composite_digest(directory, schema, registry):
    from repro.store.sharded import CompositeReader

    reader = CompositeReader.open(directory, schema, registry)
    try:
        return state_digest(reader.instance)
    finally:
        reader.close()


class TestShardedReplication:
    """The sharded multiplexer: per-shard streams under one
    coordinator-consistent cut — a follower set never observes half a
    spanning transaction, and promotes as a cohort or not at all."""

    def test_cohort_bootstrap_and_cut_consistency(self, sharded_primary):
        from repro.store.replicate import (
            ShardedFrameSource,
            ShardedReplicaApplier,
            read_cut_state,
        )

        store, primary_dir, schema, registry, cohort_dir = sharded_primary
        _spanning_commit(store, 1)
        _spanning_commit(store, 2)
        source = ShardedFrameSource(primary_dir, schema)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            assert applier.position() == {}  # fresh: no shard map yet
            _pump_sharded(source, applier)
            # the stream landed the cohort exactly on the shipped cut
            assert applier.consistent()
            assert applier.position() == source.position
            assert read_cut_state(cohort_dir) == applier.position()
            assert state_digest(applier.instance) == state_digest(
                store.composite_instance()
            )

    def test_spanning_transactions_never_ship_torn(self, sharded_primary):
        """Each poll batch closes on a coordinator cut: a spanning
        2PC commit lands on the follower either whole or not at all,
        no matter how polls interleave with commits."""
        from repro.store.replicate import (
            ShardedFrameSource,
            ShardedReplicaApplier,
        )

        store, primary_dir, schema, registry, cohort_dir = sharded_primary
        source = ShardedFrameSource(primary_dir, schema)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            _pump_sharded(source, applier)
            for index in range(1, 5):
                _spanning_commit(store, index)
                _pump_sharded(source, applier)
                assert applier.consistent()
                # both halves present, or neither — never one
                instance = applier.instance
                for j in range(1, index + 1):
                    att = instance.find(f"uid=r{j},o=att")
                    labs = instance.find(f"uid=l{j},ou=attLabs,o=att")
                    assert (att is None) == (labs is None)
                    assert att is not None
            assert state_digest(applier.instance) == state_digest(
                store.composite_instance()
            )

    def test_resume_from_durable_cut(self, sharded_primary):
        from repro.store.replicate import (
            ShardedFrameSource,
            ShardedReplicaApplier,
        )

        store, primary_dir, schema, registry, cohort_dir = sharded_primary
        _spanning_commit(store, 1)
        source = ShardedFrameSource(primary_dir, schema)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            _pump_sharded(source, applier)
            resumed_at = applier.position()
        _spanning_commit(store, 2)
        # a new source attaches incrementally at the durable cut
        fresh = ShardedFrameSource(primary_dir, schema)
        assert fresh.attach(resumed_at)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            assert applier.position() == resumed_at
            while True:
                batch = fresh.poll()
                if not batch:
                    break
                assert all(m.get("kind") != "snapshot" for m in batch)
                for message in batch:
                    applier.apply_message(message)
            assert applier.consistent()
            assert state_digest(applier.instance) == state_digest(
                store.composite_instance()
            )

    def test_promote_shards_promotes_the_cohort(self, sharded_primary):
        from repro.store.recovery import REPLICA_STATE_FILE
        from repro.store.replicate import (
            CUT_STATE_FILE,
            ShardedFrameSource,
            ShardedReplicaApplier,
            promote_shards,
            read_cut_state,
        )

        store, primary_dir, schema, registry, cohort_dir = sharded_primary
        _spanning_commit(store, 1)
        source = ShardedFrameSource(primary_dir, schema)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            _pump_sharded(source, applier)
            digest = state_digest(applier.instance)
        promoted = promote_shards(cohort_dir, schema, registry)
        try:
            assert state_digest(promoted.composite_instance()) == digest
            # every member bumped its generation; cohort is writable
            for _, generation, _ in promoted.frontier_key():
                assert generation == 2
            _spanning_commit(promoted, 9)
        finally:
            promoted.close()
        assert read_cut_state(cohort_dir) is None
        assert not os.path.exists(os.path.join(cohort_dir, CUT_STATE_FILE))
        assert not os.path.exists(
            os.path.join(cohort_dir, REPLICA_STATE_FILE)
        )

    def test_promote_shards_refuses_without_a_cut(self, tmp_path, sharded_primary):
        from repro.store.replicate import promote_shards

        _, _, schema, registry, _ = sharded_primary
        bare = str(tmp_path / "bare")
        os.makedirs(bare)
        with pytest.raises(StoreError, match="cut"):
            promote_shards(bare, schema, registry)

    def test_promote_shards_refuses_off_cut_member(self, sharded_primary):
        """Atomicity of cohort promotion: if any member sits off the
        recorded cut (here: the cut file claims a frontier one ahead of
        what actually landed), the whole promotion refuses and no
        member is bumped."""
        import json

        from repro.store.manifest import read_manifest
        from repro.store.replicate import (
            CUT_STATE_FILE,
            ShardedFrameSource,
            ShardedReplicaApplier,
            promote_shards,
            read_cut_state,
        )
        from repro.store.shardmap import shard_dir

        store, primary_dir, schema, registry, cohort_dir = sharded_primary
        _spanning_commit(store, 1)
        source = ShardedFrameSource(primary_dir, schema)
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            _pump_sharded(source, applier)
        cut = read_cut_state(cohort_dir)
        cut["att"] = (cut["att"][0], cut["att"][1] + 1)
        with open(os.path.join(cohort_dir, CUT_STATE_FILE), "w") as handle:
            json.dump({name: list(pos) for name, pos in cut.items()}, handle)
        with pytest.raises(StoreError, match="replicated cut"):
            promote_shards(cohort_dir, schema, registry)
        for name in ("att", "labs"):
            manifest = read_manifest(shard_dir(cohort_dir, name))
            assert manifest.role == "replica"  # nobody was bumped


class TestFoldAwareAttach:
    def test_survivor_attaches_at_promoted_fold_frontier(self, primary):
        """After a failover the new primary's journal starts at
        ``(generation + 1, 0)`` with ``folded_seq`` pointing at the old
        frontier.  A survivor synced exactly to that frontier must
        re-attach *incrementally* — fold announce, no snapshot."""
        store, primary_dir, schema, registry, replica_dir = primary
        _commit(store, 2)
        frontier = (store.generation, store.journal_length)
        source = FrameSource(primary_dir, schema)
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            assert applier.position() == frontier
        promoted = promote(replica_dir, schema, registry)
        promoted_dir = replica_dir
        try:
            _commit(promoted, 1)
            # a second follower that was synced to the *old* frontier
            # attaches to the promoted store without a snapshot
            survivor = FrameSource(promoted_dir, schema)
            assert survivor.attach(*frontier)
            batch = survivor.poll()
            kinds = [decode_stream_message(m).kind for m in batch]
            assert "snapshot" not in kinds
            assert kinds[0] == "schema"  # the fold announce
            announce = decode_stream_message(batch[0])
            assert announce.generation == frontier[0] + 1
            assert announce.folds == frontier[1]  # the folded seq
        finally:
            promoted.close()

    def test_attach_still_refuses_a_diverged_position(self, primary):
        store, primary_dir, schema, registry, _ = primary
        _commit(store, 1)
        source = FrameSource(primary_dir, schema)
        # two generations ahead of the head: not a fold resume
        assert not source.attach(store.generation + 2, 0)
        # future seq within the head generation: refused as before
        assert not source.attach(store.generation, store.journal_length + 5)
