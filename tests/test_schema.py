"""Unit tests for schema components (Definitions 2.2-2.5)."""

import pytest

from repro.axes import Axis
from repro.errors import ClassHierarchyError, SchemaError
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import TOP, ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import Disjoint, ForbiddenEdge, RequiredEdge, Subclass
from repro.schema.extras import SchemaExtras
from repro.schema.structure_schema import StructureSchema


class TestAttributeSchema:
    def test_required_subset_of_allowed(self):
        schema = AttributeSchema().declare("person", required=("uid",), allowed=("mail",))
        assert schema.required("person") == {"uid"}
        assert schema.allowed("person") == {"uid", "mail"}

    def test_unknown_class_has_empty_sets(self):
        schema = AttributeSchema()
        assert schema.required("ghost") == frozenset()
        assert schema.allowed("ghost") == frozenset()

    def test_double_declaration_rejected(self):
        schema = AttributeSchema().declare("person")
        with pytest.raises(SchemaError):
            schema.declare("person")

    def test_allowed_by_any(self):
        schema = AttributeSchema().declare("person", allowed=("mail",)).declare("org")
        assert schema.allowed_by_any({"person", "org"}, "mail")
        assert not schema.allowed_by_any({"org"}, "mail")

    def test_object_class_always_allowed(self):
        schema = AttributeSchema().declare("person")
        assert schema.allowed_by_any({"person"}, "objectClass")
        assert schema.allowed_by_any(set(), "objectClass")

    def test_attributes_and_classes(self):
        schema = AttributeSchema().declare("a", required=("x",), allowed=("y",))
        assert schema.classes() == {"a"}
        assert schema.attributes() == {"objectClass", "x", "y"}

    def test_max_allowed_size(self):
        schema = AttributeSchema().declare("a", allowed=("x", "y")).declare("b")
        assert schema.max_allowed_size() == 2
        assert AttributeSchema().max_allowed_size() == 0

    def test_len_and_contains(self):
        schema = AttributeSchema().declare("a")
        assert len(schema) == 1 and "a" in schema and "b" not in schema


class TestClassSchema:
    def test_top_always_present(self):
        schema = ClassSchema()
        assert schema.is_core(TOP)
        assert schema.parent(TOP) is None

    def test_core_tree_construction(self):
        schema = ClassSchema().add_core("person").add_core("researcher", parent="person")
        assert schema.parent("researcher") == "person"
        assert schema.children("person") == ("researcher",)
        assert schema.superclasses("researcher") == ("researcher", "person", TOP)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ClassHierarchyError):
            ClassSchema().add_core("x", parent="ghost")

    def test_auxiliary_parent_rejected(self):
        schema = ClassSchema().add_auxiliary("online")
        with pytest.raises(ClassHierarchyError):
            schema.add_core("x", parent="online")

    def test_duplicate_names_rejected(self):
        schema = ClassSchema().add_core("person")
        with pytest.raises(SchemaError):
            schema.add_core("person")
        with pytest.raises(SchemaError):
            schema.add_auxiliary("person")

    def test_aux_association(self):
        schema = (
            ClassSchema().add_core("person").add_auxiliary("online")
            .allow_auxiliary("person", "online")
        )
        assert schema.aux("person") == {"online"}
        assert schema.aux(TOP) == frozenset()

    def test_allow_auxiliary_validates_kinds(self):
        schema = ClassSchema().add_core("person").add_auxiliary("online")
        with pytest.raises(SchemaError):
            schema.allow_auxiliary("online", "person")
        with pytest.raises(SchemaError):
            schema.allow_auxiliary("person", "person")

    def test_subsumes(self):
        schema = ClassSchema().add_core("person").add_core("researcher", parent="person")
        assert schema.subsumes("researcher", "person")
        assert schema.subsumes("researcher", TOP)
        assert schema.subsumes("person", "person")
        assert not schema.subsumes("person", "researcher")

    def test_incomparable(self):
        schema = ClassSchema().add_core("person").add_core("orgUnit")
        assert schema.incomparable("person", "orgUnit")
        assert not schema.incomparable("person", TOP)
        assert not schema.incomparable("person", "person")
        assert not schema.incomparable("person", "ghost")

    def test_depth(self):
        schema = ClassSchema().add_core("a").add_core("b", parent="a").add_core("c", parent="b")
        assert schema.depth() == 4  # c, b, a, top

    def test_max_aux_size(self):
        schema = (
            ClassSchema().add_core("p").add_auxiliary("x").add_auxiliary("y")
            .allow_auxiliary("p", "x", "y")
        )
        assert schema.max_aux_size() == 2

    def test_subclass_elements_are_tree_edges(self):
        schema = ClassSchema().add_core("a").add_core("b", parent="a")
        elements = set(schema.subclass_elements())
        assert elements == {Subclass("a", TOP), Subclass("b", "a")}

    def test_disjoint_elements(self):
        schema = ClassSchema().add_core("a").add_core("b").add_core("c", parent="a")
        disjoint = set(schema.disjoint_elements())
        assert Disjoint("a", "b") in disjoint
        assert Disjoint("b", "c") in disjoint
        assert Disjoint("a", "c") not in disjoint  # comparable
        assert all(TOP not in (d.a, d.b) for d in disjoint)


class TestStructureSchema:
    def test_builders(self):
        schema = (
            StructureSchema()
            .require_class("a")
            .require_child("a", "b")
            .require_descendant("a", "c")
            .require_parent("b", "a")
            .require_ancestor("c", "a")
            .forbid_child("c", "b")
            .forbid_descendant("c", "c")
        )
        assert schema.required_classes == {"a"}
        assert RequiredEdge(Axis.CHILD, "a", "b") in schema.required_edges
        assert RequiredEdge(Axis.PARENT, "b", "a") in schema.required_edges
        assert ForbiddenEdge(Axis.DESCENDANT, "c", "c") in schema.forbidden_edges
        assert schema.size() == 7 == len(schema)

    def test_forbid_upward_axis_rejected(self):
        with pytest.raises(SchemaError):
            StructureSchema().forbid("a", Axis.PARENT, "b")

    def test_duplicate_edges_collapse(self):
        schema = StructureSchema().require_child("a", "b").require_child("a", "b")
        assert len(schema.required_edges) == 1

    def test_mentioned_classes(self):
        schema = StructureSchema().require_class("x").require_child("a", "b").forbid_child("c", "d")
        assert schema.mentioned_classes() == {"x", "a", "b", "c", "d"}

    def test_elements_order_is_deterministic(self):
        schema = StructureSchema().require_class("z").require_child("a", "b")
        assert [str(e) for e in schema.elements()] == [
            str(e) for e in schema.elements()
        ]

    def test_relationship_elements_exclude_required_classes(self):
        schema = StructureSchema().require_class("z").require_child("a", "b")
        assert len(schema.relationship_elements()) == 1


class TestDirectorySchema:
    def test_validate_passes_well_formed(self, wp_schema):
        assert wp_schema.validate() is wp_schema

    def test_validate_rejects_unknown_attribute_class(self):
        schema = DirectorySchema(
            AttributeSchema().declare("ghost"), ClassSchema(), StructureSchema()
        )
        with pytest.raises(SchemaError, match="ghost"):
            schema.validate()

    def test_validate_rejects_auxiliary_in_structure(self):
        classes = ClassSchema().add_core("person").add_auxiliary("online")
        structure = StructureSchema().require_class("online")
        with pytest.raises(SchemaError, match="non-core"):
            DirectorySchema(AttributeSchema(), classes, structure).validate()

    def test_validate_rejects_unknown_structure_class(self):
        structure = StructureSchema().require_child("ghost", "top")
        with pytest.raises(SchemaError):
            DirectorySchema(AttributeSchema(), ClassSchema(), structure).validate()

    def test_all_elements_cover_both_components(self, wp_schema):
        elements = list(wp_schema.all_elements())
        kinds = {type(e).__name__ for e in elements}
        assert kinds == {
            "Subclass", "Disjoint", "RequiredEdge", "ForbiddenEdge", "RequiredClass"
        }

    def test_size_is_positive(self, wp_schema):
        assert wp_schema.size() > 10


class TestSchemaExtras:
    def test_key_implies_single_valued(self):
        extras = SchemaExtras().declare_key("uid")
        assert "uid" in extras.effective_single_valued()

    def test_extensible_membership(self):
        extras = SchemaExtras().declare_extensible("extensibleObject")
        assert extras.is_extensible({"person", "extensibleObject"})
        assert not extras.is_extensible({"person"})

    def test_validate_against_rejects_unknown_class(self):
        schema = DirectorySchema(
            AttributeSchema(), ClassSchema(), StructureSchema(),
            extras=SchemaExtras().declare_extensible("ghost"),
        )
        with pytest.raises(SchemaError, match="ghost"):
            schema.validate()
