"""Tests for the Section 6.3 semi-structured extension."""

import pytest

from repro.errors import ModelError, SchemaError
from repro.axes import Axis
from repro.legality.structure import QueryStructureChecker
from repro.semistructured import (
    DataGraph,
    GraphConstraints,
    GraphValidator,
    constraints_to_structure_schema,
    graph_to_instance,
    instance_to_graph,
)


def bibliography_graph():
    """person nodes with name children at varying depths."""
    g = DataGraph()
    g.add_node("db", "root")
    p1 = g.add_child("db", "p1", "person")
    g.add_child(p1, "n1", "name", "Laks")
    p2 = g.add_child("db", "p2", "person")
    contact = g.add_child(p2, "c2", "contact")
    g.add_child(contact, "n2", "name", "Divesh")
    return g


def world_graph(forbidden_nesting=False):
    """The paper's country/corporation example: countries may contain
    corporations (national), corporations may contain countries
    (international) and corporations (conglomerates) — but no country
    sits below another country."""
    g = DataGraph()
    g.add_node("world", "root")
    us = g.add_child("world", "us", "country")
    g.add_child(us, "att", "corporation")  # national corporation
    multi = g.add_child("world", "multi", "corporation")
    g.add_child(multi, "multi-mx", "country")  # international corporation
    sub = g.add_child(multi, "multi-sub", "corporation")  # conglomerate
    g.add_child(sub, "multi-sub-sub", "corporation")
    if forbidden_nesting:
        # a corporation inside the US opening a country division:
        # country us ->> country de
        g.add_child("att", "de", "country")
    return g


class TestDataGraph:
    def test_labels_and_lookup(self):
        g = bibliography_graph()
        assert g.label("p1") == "person"
        assert g.nodes_with_label("person") == {"p1", "p2"}
        assert "name" in g.labels()
        assert g.value("n1") == "Laks"

    def test_duplicate_node_rejected(self):
        g = DataGraph()
        g.add_node("x", "a")
        with pytest.raises(ModelError):
            g.add_node("x", "b")

    def test_edge_needs_endpoints(self):
        g = DataGraph()
        g.add_node("x", "a")
        with pytest.raises(ModelError):
            g.add_edge("x", "ghost")

    def test_navigation(self):
        g = bibliography_graph()
        assert set(g.children("p2")) == {"c2"}
        assert g.parents("n2") == ["c2"]
        assert g.descendants("p2") == {"c2", "n2"}
        assert g.ancestors("n2") == {"c2", "p2", "db"}
        assert g.roots() == ["db"]

    def test_sharing(self):
        g = DataGraph()
        g.add_node("r", "root")
        a = g.add_child("r", "a", "dept")
        b = g.add_child("r", "b", "dept")
        shared = g.add_child(a, "s", "person")
        g.add_edge(b, shared)  # person shared by two departments
        assert set(g.parents("s")) == {"a", "b"}
        assert "s" in g.descendants("b")
        assert not g.is_tree_shaped()

    def test_cycles_make_self_descendants(self):
        g = DataGraph()
        g.add_node("a", "x")
        g.add_node("b", "x")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert "a" in g.descendants("a")
        assert "b" in g.ancestors("b")
        assert not g.is_tree_shaped()

    def test_tree_shaped(self):
        assert bibliography_graph().is_tree_shaped()

    def test_len_iter_contains(self):
        g = bibliography_graph()
        assert len(g) == 6
        assert "p1" in g and "ghost" not in g
        assert set(iter(g)) == {"db", "p1", "n1", "p2", "c2", "n2"}


class TestGraphConstraints:
    def test_person_name_constraint(self):
        """Section 6.3: each person node must have a (descendant) name
        node, without fixing the path length."""
        constraints = GraphConstraints().require_descendant("person", "name")
        validator = GraphValidator(constraints)
        assert validator.is_legal(bibliography_graph())

    def test_person_name_violation(self):
        g = bibliography_graph()
        g.add_child("db", "p3", "person")  # nameless person
        constraints = GraphConstraints().require_descendant("person", "name")
        report = GraphValidator(constraints).check(g)
        assert not report.is_legal
        assert any(v.dn == "p3" for v in report)

    def test_country_nesting_forbidden(self):
        """Section 6.3: allow corporation nesting to any depth, but
        forbid a country below another country."""
        constraints = GraphConstraints().forbid_descendant("country", "country")
        validator = GraphValidator(constraints)
        assert validator.is_legal(world_graph(forbidden_nesting=False))
        assert not validator.is_legal(world_graph(forbidden_nesting=True))

    def test_child_and_parent_forms(self):
        g = bibliography_graph()
        assert GraphValidator(
            GraphConstraints().require_parent("name", "person")
        ).check(g).violations  # n2's parent is contact, not person
        assert GraphValidator(
            GraphConstraints().require_ancestor("name", "person")
        ).is_legal(g)

    def test_required_label(self):
        constraints = GraphConstraints().require_label("person", "robot")
        report = GraphValidator(constraints).check(bibliography_graph())
        assert len(report) == 1
        assert "robot" in report.violations[0].message

    def test_forbid_child(self):
        g = bibliography_graph()
        constraints = GraphConstraints().forbid_child("person", "name")
        report = GraphValidator(constraints).check(g)
        assert [v.dn for v in report] == ["p1"]

    def test_upward_forbidden_axis_rejected(self):
        constraints = GraphConstraints()
        constraints.forbidden.add((Axis.ANCESTOR, "a", "b"))
        with pytest.raises(SchemaError):
            GraphValidator(constraints)

    def test_cyclic_graph_validation(self):
        g = DataGraph()
        g.add_node("a", "country")
        g.add_node("b", "corporation")
        g.add_edge("a", "b")
        g.add_edge("b", "a")  # cycle: country reaches itself
        constraints = GraphConstraints().forbid_descendant("country", "country")
        assert not GraphValidator(constraints).is_legal(g)


class TestBridge:
    def test_tree_graph_embeds_into_directory(self):
        g = bibliography_graph()
        instance = graph_to_instance(g)
        assert len(instance) == len(g)
        assert instance.find("id=n1,id=p1,id=db") is not None

    def test_non_tree_rejected(self):
        g = DataGraph()
        g.add_node("a", "x")
        g.add_node("b", "x")
        g.add_node("c", "x")
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        with pytest.raises(ModelError):
            graph_to_instance(g)

    def test_instance_round_trips_to_graph(self, fig1):
        g = instance_to_graph(fig1)
        assert len(g) == len(fig1)
        # Labels are the lexicographically smallest non-top class:
        # suciu {researcher, person} and armstrong {staffMember, person}
        # both project to "person".
        assert len(g.nodes_with_label("person")) == 2
        # Structure is preserved.
        assert len(g.roots()) == 1
        assert len(g.descendants(g.roots()[0])) == len(fig1) - 1

    def test_graph_checker_agrees_with_directory_checker(self):
        """The Section 6.3 punchline: the same constraints, checked on
        the graph directly and through the LDAP reduction, agree."""
        g = bibliography_graph()
        constraints = (
            GraphConstraints()
            .require_descendant("person", "name")
            .forbid_child("name", "name")
            .require_label("person")
        )
        graph_verdict = GraphValidator(constraints).is_legal(g)
        structure = constraints_to_structure_schema(constraints)
        instance = graph_to_instance(g)
        directory_verdict = QueryStructureChecker(structure).is_legal(instance)
        assert graph_verdict == directory_verdict is True

        g.add_child("db", "p3", "person")  # break it
        assert GraphValidator(constraints).is_legal(g) is False
        assert QueryStructureChecker(structure).is_legal(
            graph_to_instance(g)
        ) is False
