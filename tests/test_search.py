"""Tests for LDAP-style scoped search."""

import pytest

from repro.errors import QueryError
from repro.query.filters import Equals, Present
from repro.query.search import SearchScope, search


def dns(entries):
    return [str(e.dn) for e in entries]


class TestScopes:
    def test_base_scope(self, fig1):
        result = search(fig1, "ou=attLabs,o=att", SearchScope.BASE)
        assert dns(result) == ["ou=attLabs,o=att"]

    def test_one_scope(self, fig1):
        result = search(fig1, "o=att", SearchScope.ONE)
        assert dns(result) == ["ou=attLabs,o=att", "uid=armstrong,o=att"]

    def test_sub_scope_includes_base(self, fig1):
        result = search(fig1, "ou=attLabs,o=att", SearchScope.SUB)
        assert len(result) == 4
        assert "ou=attLabs,o=att" in dns(result)

    def test_children_scope_excludes_base(self, fig1):
        result = search(fig1, "ou=attLabs,o=att", SearchScope.CHILDREN)
        assert len(result) == 3
        assert "ou=attLabs,o=att" not in dns(result)

    def test_root_base(self, fig1):
        assert len(search(fig1, None, SearchScope.SUB)) == len(fig1)
        assert dns(search(fig1, None, SearchScope.ONE)) == ["o=att"]
        assert search(fig1, None, SearchScope.BASE) == []

    def test_scope_accepts_strings(self, fig1):
        assert len(search(fig1, "o=att", "one")) == 2

    def test_missing_base_raises(self, fig1):
        with pytest.raises(QueryError, match="does not exist"):
            search(fig1, "o=ghost", SearchScope.SUB)


class TestFilters:
    def test_filter_object(self, fig1):
        result = search(fig1, "o=att", SearchScope.SUB,
                        Equals("objectClass", "person"))
        assert len(result) == 3

    def test_filter_string(self, fig1):
        result = search(fig1, "o=att", "sub", "(&(objectClass=person)(mail=*))")
        assert dns(result) == ["uid=laks,ou=databases,ou=attLabs,o=att"]

    def test_no_filter_matches_all(self, fig1):
        assert len(search(fig1, "o=att", "sub")) == 6

    def test_scoping_restricts_filter(self, fig1):
        everywhere = search(fig1, None, "sub", Present("mail"))
        scoped = search(fig1, "ou=databases,ou=attLabs,o=att", "one",
                        Present("mail"))
        assert len(everywhere) == 1  # only laks carries mail in Figure 1
        assert len(scoped) == 1

    def test_size_limit(self, fig1):
        result = search(fig1, None, "sub", size_limit=2)
        assert len(result) == 2

    def test_document_order(self, fig1):
        result = search(fig1, None, "sub")
        assert dns(result)[0] == "o=att"
        # databases' subtree precedes att's second child armstrong
        assert dns(result)[-1] == "uid=armstrong,o=att"
