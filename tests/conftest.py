"""Shared fixtures: the paper's running example and the DEN workload."""

from __future__ import annotations

import os
import sys

import pytest

# Make the multi-process test harness (tests/harness/) importable as
# ``harness`` regardless of how pytest was invoked.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.workloads import (
    den_schema,
    figure1_instance,
    generate_den,
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)


@pytest.fixture(scope="session")
def wp_schema():
    """The Figures 2-3 bounding-schema (session-scoped: immutable)."""
    return whitepages_schema()


@pytest.fixture(scope="session")
def wp_schema_extras():
    """The white-pages schema with Section 6.1 extras (uid as a key)."""
    return whitepages_schema(extras=True)


@pytest.fixture()
def fig1():
    """A fresh copy of the Figure 1 instance (function-scoped: tests
    mutate it)."""
    return figure1_instance()


@pytest.fixture(scope="session")
def wp_registry():
    return whitepages_registry()


@pytest.fixture()
def wp_medium():
    """A mid-sized generated white-pages instance."""
    return generate_whitepages(orgs=2, units_per_level=2, depth=2,
                               persons_per_unit=2, seed=11)


@pytest.fixture(scope="session")
def den():
    return den_schema()


@pytest.fixture()
def den_instance():
    return generate_den(sites=2, devices_per_site=2, interfaces_per_device=2,
                        domains=1, policies_per_domain=2, seed=5)
