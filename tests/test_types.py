"""Unit tests for attribute types and the type registry."""

import pytest

from repro.errors import TypeViolationError
from repro.model.types import (
    BOOLEAN,
    DN_TYPE,
    INTEGER,
    STRING,
    TELEPHONE,
    URI,
    AttributeType,
    TypeRegistry,
    builtin_types,
)


class TestStringType:
    def test_accepts_strings(self):
        assert STRING.coerce("hello") == "hello"

    def test_stringifies_other_values(self):
        assert STRING.coerce(42) == "42"

    def test_empty_string_is_valid(self):
        assert STRING.coerce("") == ""


class TestIntegerType:
    def test_accepts_ints(self):
        assert INTEGER.coerce(7) == 7

    def test_parses_numeric_strings(self):
        assert INTEGER.coerce(" 42 ") == 42

    def test_rejects_bools(self):
        with pytest.raises(TypeViolationError):
            INTEGER.coerce(True)

    def test_rejects_garbage(self):
        with pytest.raises(TypeViolationError):
            INTEGER.coerce("not-a-number")


class TestBooleanType:
    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("TRUE", True), ("1", True), ("yes", True),
        ("false", False), ("0", False), ("no", False),
    ])
    def test_parses_string_forms(self, raw, expected):
        assert BOOLEAN.coerce(raw) is expected

    def test_accepts_bools(self):
        assert BOOLEAN.coerce(False) is False

    def test_rejects_other_strings(self):
        with pytest.raises(TypeViolationError):
            BOOLEAN.coerce("maybe")


class TestTelephoneType:
    def test_accepts_plausible_numbers(self):
        assert TELEPHONE.coerce("+1 973 555 0100") == "+1 973 555 0100"

    def test_rejects_letters(self):
        with pytest.raises(TypeViolationError):
            TELEPHONE.coerce("CALL-ME")


class TestUriType:
    def test_accepts_http(self):
        assert URI.coerce("http://www.att.com/") == "http://www.att.com/"

    def test_accepts_other_schemes(self):
        assert URI.coerce("ldap://host:389/o=att")

    def test_rejects_schemeless(self):
        with pytest.raises(TypeViolationError):
            URI.coerce("www.att.com")


class TestDnType:
    def test_accepts_dns(self):
        assert DN_TYPE.coerce("uid=laks,ou=databases,o=att")

    def test_rejects_non_dn(self):
        with pytest.raises(TypeViolationError):
            DN_TYPE.coerce("just a sentence")


class TestTypeRegistry:
    def test_builtins_present(self):
        registry = builtin_types()
        for name in ("string", "integer", "boolean", "dn", "telephone", "uri"):
            assert name in registry

    def test_register_custom_type(self):
        registry = TypeRegistry()
        even = AttributeType("even", lambda v: isinstance(v, int) and v % 2 == 0)
        registry.register(even)
        assert registry["even"].coerce(4) == 4
        with pytest.raises(TypeViolationError):
            registry["even"].coerce(3)

    def test_duplicate_registration_rejected(self):
        registry = TypeRegistry()
        other = AttributeType("string", lambda v: True)
        with pytest.raises(ValueError):
            registry.register(other)

    def test_replace_allowed_when_requested(self):
        registry = TypeRegistry()
        other = AttributeType("string", lambda v: True)
        registry.register(other, replace=True)
        assert registry["string"] is other

    def test_unknown_type_lookup(self):
        registry = TypeRegistry()
        assert registry.get("nope") is None
        with pytest.raises(KeyError):
            registry["nope"]

    def test_len_and_iter(self):
        registry = builtin_types()
        assert len(registry) == 6
        assert {t.name for t in registry} == {
            "string", "integer", "boolean", "dn", "telephone", "uri"
        }
