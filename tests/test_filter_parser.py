"""Unit and property tests for the RFC 2254 filter parser."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FilterSyntaxError
from repro.query.filter_parser import parse_filter
from repro.query.filters import (
    And,
    Approx,
    Equals,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)


class TestAtoms:
    def test_equality(self):
        assert parse_filter("(mail=a@x.com)") == Equals("mail", "a@x.com")

    def test_presence(self):
        assert parse_filter("(mail=*)") == Present("mail")

    def test_ge(self):
        assert parse_filter("(age>=18)") == GreaterOrEqual("age", "18")

    def test_le(self):
        assert parse_filter("(age<=65)") == LessOrEqual("age", "65")

    def test_approx(self):
        assert parse_filter("(cn~=laks)") == Approx("cn", "laks")

    def test_substring_initial_final(self):
        assert parse_filter("(cn=a*z)") == Substring("cn", "a", (), "z")

    def test_substring_any(self):
        assert parse_filter("(cn=*mid*)") == Substring("cn", "", ("mid",), "")

    def test_substring_full(self):
        assert parse_filter("(cn=a*m1*m2*z)") == Substring("cn", "a", ("m1", "m2"), "z")

    def test_escaped_star_is_equality(self):
        parsed = parse_filter("(cn=a\\2ab)")
        assert parsed == Equals("cn", "a*b")

    def test_escaped_parens(self):
        assert parse_filter("(cn=\\28x\\29)") == Equals("cn", "(x)")


class TestCombinators:
    def test_and(self):
        parsed = parse_filter("(&(objectClass=person)(mail=*))")
        assert parsed == And((Equals("objectClass", "person"), Present("mail")))

    def test_or(self):
        parsed = parse_filter("(|(cn=a)(cn=b))")
        assert parsed == Or((Equals("cn", "a"), Equals("cn", "b")))

    def test_not(self):
        assert parse_filter("(!(mail=*))") == Not(Present("mail"))

    def test_nested(self):
        parsed = parse_filter("(&(a=1)(|(b=*)(!(c=2))))")
        assert isinstance(parsed, And)
        assert isinstance(parsed.operands[1], Or)

    def test_empty_and(self):
        assert parse_filter("(&)") == And(())

    def test_whitespace_tolerated_at_ends(self):
        assert parse_filter("  (cn=x)  ") == Equals("cn", "x")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "cn=x", "(cn=x", "(cn=x))", "((cn=x)", "(=value)",
        "(!(a=1)(b=2))x", "(cn=x)(cn=y)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(FilterSyntaxError):
            parse_filter(bad)

    def test_unescaped_paren_in_value(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a(b)")

    def test_truncated_escape(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a\\2)")

    def test_invalid_escape(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a\\zz)")


_attr = st.sampled_from(["cn", "mail", "uid", "objectClass", "age"])
_value = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=10,
)


def _filters(depth: int) -> st.SearchStrategy[Filter]:
    atom = st.one_of(
        st.builds(Equals, _attr, _value),
        st.builds(Present, _attr),
        st.builds(Approx, _attr, _value),
        st.builds(GreaterOrEqual, _attr, _value),
        st.builds(LessOrEqual, _attr, _value),
    )
    if depth == 0:
        return atom
    inner = _filters(depth - 1)
    return st.one_of(
        atom,
        st.builds(Not, inner),
        st.builds(lambda ops: And(tuple(ops)), st.lists(inner, max_size=3)),
        st.builds(lambda ops: Or(tuple(ops)), st.lists(inner, min_size=1, max_size=3)),
    )


class TestRoundTrip:
    @given(_filters(2))
    def test_parse_inverts_str(self, node):
        assert parse_filter(str(node)) == node
