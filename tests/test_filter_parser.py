"""Unit and property tests for the RFC 2254 filter parser."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FilterSyntaxError
from repro.query.filter_parser import parse_filter, render_filter
from repro.query.filters import (
    And,
    Approx,
    Equals,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)


class TestAtoms:
    def test_equality(self):
        assert parse_filter("(mail=a@x.com)") == Equals("mail", "a@x.com")

    def test_presence(self):
        assert parse_filter("(mail=*)") == Present("mail")

    def test_ge(self):
        assert parse_filter("(age>=18)") == GreaterOrEqual("age", "18")

    def test_le(self):
        assert parse_filter("(age<=65)") == LessOrEqual("age", "65")

    def test_approx(self):
        assert parse_filter("(cn~=laks)") == Approx("cn", "laks")

    def test_substring_initial_final(self):
        assert parse_filter("(cn=a*z)") == Substring("cn", "a", (), "z")

    def test_substring_any(self):
        assert parse_filter("(cn=*mid*)") == Substring("cn", "", ("mid",), "")

    def test_substring_full(self):
        assert parse_filter("(cn=a*m1*m2*z)") == Substring("cn", "a", ("m1", "m2"), "z")

    def test_escaped_star_is_equality(self):
        parsed = parse_filter("(cn=a\\2ab)")
        assert parsed == Equals("cn", "a*b")

    def test_escaped_parens(self):
        assert parse_filter("(cn=\\28x\\29)") == Equals("cn", "(x)")

    def test_escaped_star_inside_substring_component(self):
        """RFC 4515: \\2a inside a substring component is a literal
        asterisk, never an extra wildcard boundary."""
        parsed = parse_filter("(cn=a\\2ab*mid\\2a*\\2az)")
        assert parsed == Substring("cn", "a*b", ("mid*",), "*z")

    def test_escaped_backslash_before_raw_star(self):
        # \5c*x: the backslash is literal, the raw star is a wildcard.
        assert parse_filter("(cn=a\\5c*x)") == Substring("cn", "a\\", (), "x")

    def test_all_wildcard_substring_is_presence(self):
        """'**' (and longer wildcard-only runs) assert only presence and
        parse to Present, so they round-trip through the renderer."""
        for degenerate in ("(cn=**)", "(cn=***)", "(cn=****)"):
            assert parse_filter(degenerate) == Present("cn")

    def test_escapes_in_ordering_and_approx(self):
        assert parse_filter("(age>=\\2a)") == GreaterOrEqual("age", "*")
        assert parse_filter("(age<=a\\28b)") == LessOrEqual("age", "a(b")
        assert parse_filter("(cn~=x\\5c\\29)") == Approx("cn", "x\\)")


class TestCombinators:
    def test_and(self):
        parsed = parse_filter("(&(objectClass=person)(mail=*))")
        assert parsed == And((Equals("objectClass", "person"), Present("mail")))

    def test_or(self):
        parsed = parse_filter("(|(cn=a)(cn=b))")
        assert parsed == Or((Equals("cn", "a"), Equals("cn", "b")))

    def test_not(self):
        assert parse_filter("(!(mail=*))") == Not(Present("mail"))

    def test_nested(self):
        parsed = parse_filter("(&(a=1)(|(b=*)(!(c=2))))")
        assert isinstance(parsed, And)
        assert isinstance(parsed.operands[1], Or)

    def test_empty_and(self):
        assert parse_filter("(&)") == And(())

    def test_whitespace_tolerated_at_ends(self):
        assert parse_filter("  (cn=x)  ") == Equals("cn", "x")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "cn=x", "(cn=x", "(cn=x))", "((cn=x)", "(=value)",
        "(!(a=1)(b=2))x", "(cn=x)(cn=y)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(FilterSyntaxError):
            parse_filter(bad)

    def test_unescaped_paren_in_value(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a(b)")

    def test_truncated_escape(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a\\2)")

    def test_invalid_escape(self):
        with pytest.raises(FilterSyntaxError):
            parse_filter("(cn=a\\zz)")


_attr = st.sampled_from(["cn", "mail", "uid", "objectClass", "age"])
_value = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=10,
)
# Substring components may be empty at the ends (initial/final) but the
# grammar cannot express an empty *any* part, and at least one component
# must be non-empty or the pattern degenerates to a presence test: that
# is exactly the canonical shape render_filter round-trips.
_part = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    max_size=10,
)
_substrings = st.builds(
    Substring,
    _attr,
    initial=_part,
    any_parts=st.lists(_value, max_size=3).map(tuple),
    final=_part,
).filter(lambda s: s.initial or s.any_parts or s.final)


def _filters(depth: int) -> st.SearchStrategy[Filter]:
    atom = st.one_of(
        st.builds(Equals, _attr, _value),
        st.builds(Present, _attr),
        _substrings,
        st.builds(Approx, _attr, _value),
        st.builds(GreaterOrEqual, _attr, _value),
        st.builds(LessOrEqual, _attr, _value),
    )
    if depth == 0:
        return atom
    inner = _filters(depth - 1)
    return st.one_of(
        atom,
        st.builds(Not, inner),
        st.builds(lambda ops: And(tuple(ops)), st.lists(inner, max_size=3)),
        st.builds(lambda ops: Or(tuple(ops)), st.lists(inner, min_size=1, max_size=3)),
    )


class TestRoundTrip:
    @given(_filters(2))
    def test_parse_inverts_str(self, node):
        assert parse_filter(str(node)) == node

    @given(_filters(2))
    def test_parse_render_parse_is_identity(self, node):
        """parse(render(f)) == f: literal '*', '(', ')', '\\' in values
        survive the trip — an escaped star never becomes a wildcard."""
        rendered = render_filter(node)
        assert parse_filter(rendered) == node

    @given(_filters(2))
    def test_render_is_fixed_point(self, node):
        """Rendered strings are canonical: rendering what they parse to
        reproduces them byte for byte."""
        rendered = render_filter(node)
        assert render_filter(parse_filter(rendered)) == rendered

    @given(_substrings)
    def test_substring_component_boundaries_preserved(self, node):
        """Component boundaries are exactly the raw wildcards: values
        containing '*' re-parse into the same components, not more."""
        parsed = parse_filter(render_filter(node))
        assert isinstance(parsed, Substring)
        assert parsed.initial == node.initial
        assert parsed.any_parts == node.any_parts
        assert parsed.final == node.final
