"""Cross-module integration scenarios: full workflows a deployment would
run, exercising every layer together."""

import random

from repro import (
    LegalityChecker,
    parse_ldif,
    serialize_ldif,
)
from repro.consistency import check_consistency
from repro.schema.dsl import parse_dsl, serialize_dsl
from repro.updates import IncrementalChecker, UpdateTransaction
from repro.workloads import (
    den_schema,
    figure1_instance,
    generate_den,
    generate_whitepages,
    make_unit_subtree,
    whitepages_schema,
)


class TestDirectoryLifecycle:
    """Author schema → check consistency → load data → validate →
    evolve under guarded updates → export."""

    def test_whitepages_lifecycle(self):
        # 1. Author the schema (via DSL round-trip, as a user would).
        schema = parse_dsl(serialize_dsl(whitepages_schema()))

        # 2. Consistency gate with witness.
        result = check_consistency(schema, synthesize=True)
        assert result.consistent and result.witness is not None

        # 3. Load and validate LDIF content.
        instance = parse_ldif(serialize_ldif(figure1_instance()))
        checker = LegalityChecker(schema)
        assert checker.is_legal(instance)

        # 4. Guarded evolution.
        guard = IncrementalChecker(schema, instance)
        tx = (
            UpdateTransaction()
            .insert("ou=ml,ou=attLabs,o=att",
                    ["orgUnit", "orgGroup", "top"], {"ou": ["ml"]})
            .insert("uid=maria,ou=ml,ou=attLabs,o=att",
                    ["researcher", "person", "online", "top"],
                    {"uid": ["maria"], "name": ["maria r"],
                     "mail": ["maria@example.com"]})
        )
        assert guard.apply_transaction(tx).applied

        # 5. Attempted bad evolution is rejected and rolled back.
        bad = UpdateTransaction().insert(
            "ou=empty,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]}
        )
        outcome = guard.apply_transaction(bad)
        assert not outcome.applied
        assert instance.find("ou=empty,o=att") is None

        # 6. Export and re-validate.
        assert checker.is_legal(parse_ldif(serialize_ldif(instance)))

    def test_den_lifecycle(self):
        schema = den_schema()
        assert check_consistency(schema).consistent
        instance = generate_den(sites=2, devices_per_site=3,
                                interfaces_per_device=2, domains=2,
                                policies_per_domain=3, seed=9)
        checker = LegalityChecker(schema)
        assert checker.is_legal(instance)

        guard = IncrementalChecker(schema, instance)
        # adding a policy to a domain is fine
        domain = str(instance.dn_of(sorted(instance.entries_with_class("policyDomain"))[0]))
        tx = UpdateTransaction().insert(
            f"policyName=p-extra,{domain}", ["policy", "top"],
            {"policyName": ["p-extra"], "priority": [7]},
        )
        assert guard.apply_transaction(tx).applied
        # a policy cannot receive children (policy ↛ top)
        policy_dn = f"policyName=p-extra,{domain}"
        bad = UpdateTransaction().insert(
            f"policyName=sub,{policy_dn}", ["policy", "top"],
            {"policyName": ["sub"], "priority": [1]},
        )
        assert not guard.apply_transaction(bad).applied
        assert checker.is_legal(instance)


class TestScaleSmoke:
    def test_medium_directory_end_to_end(self):
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=3, units_per_level=3, depth=2,
                                       persons_per_unit=4, seed=123)
        assert len(instance) > 150
        checker = LegalityChecker(schema)
        assert checker.is_legal(instance)

        guard = IncrementalChecker(schema, instance, assume_legal=True)
        rng = random.Random(5)
        applied = 0
        for _ in range(10):
            delta = make_unit_subtree(rng, persons=2, attributes=instance.attributes)
            parent = str(instance.dn_of(
                sorted(instance.entries_with_class("orgUnit"))[applied % 5]
            ))
            if guard.try_insert(parent, delta).applied:
                applied += 1
        assert applied == 10
        assert checker.is_legal(instance)

    def test_roundtrip_of_large_ldif(self):
        instance = generate_whitepages(orgs=2, units_per_level=3, depth=2,
                                       persons_per_unit=3, seed=77)
        text = serialize_ldif(instance)
        again = parse_ldif(text, attributes=instance.attributes)
        assert serialize_ldif(again) == text
