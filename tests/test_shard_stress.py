"""Multi-process differential stress test for the sharded store.

One writer process per shard (independent advisory locks, independent
WALs, periodic compactions) plus composite reader processes stitching
every shard's lock-free view; each slice a reader lands on is digest-
checked against that shard's oracle log, and the stitch is validated to
hold exactly the union of the slices.  The heavier matrix runs under
``-m slow``.
"""

import pytest

from harness.shard_stress import run_shard_stress


def test_shard_stress_differential_oracle(tmp_path):
    results = run_shard_stress(
        str(tmp_path),
        shards=2,
        transactions=40,
        readers=2,
        compact_every=15,
        seed=20260806,
    )
    assert len(results) == 2
    for result in results:
        # every reader verified several distinct positions on EVERY shard
        assert all(count >= 3 for count in result["checked"].values())
    # per-shard compactions really happened under the composite readers
    assert any(result["rebootstraps"] > 0 for result in results)


@pytest.mark.slow
def test_shard_stress_differential_oracle_slow(tmp_path):
    results = run_shard_stress(
        str(tmp_path),
        shards=4,
        transactions=150,
        readers=4,
        compact_every=25,
        seed=7,
        deadline_seconds=900,
    )
    assert len(results) == 4
    for result in results:
        assert all(count >= 5 for count in result["checked"].values())
    assert any(result["rebootstraps"] > 0 for result in results)
