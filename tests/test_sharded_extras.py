"""Section 6.1 extras over the sharded store.

PR 8 lifts the historical refusal: a schema declaring directory-wide
keys now shards, with global key uniqueness enforced at the composite
check step by merging per-shard index probes (O(|Delta|), riding the
same transaction machinery as the Figure 4 composite elements).

The acceptance gate is differential: a ``ShardedStore`` and a single
union ``DirectoryStore`` applying the same randomized stream — fresh
inserts, same-shard duplicates, *cross-shard* duplicates, spanning
transactions through 2PC, and modifies — must produce identical
verdicts violation for violation, identical committed states, and
identical full-check reports, including after a reopen.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import UpdateError
from repro.ldif.modify import parse_modifications
from repro.store import DirectoryStore
from repro.store.sharded import CompositeReader, ShardedStore
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)
from repro.workloads.update_streams import insertion_points

FLAT_BASES = {"a": "o=org0", "b": "o=org1", "c": "o=org2"}


@pytest.fixture()
def schema():
    return whitepages_schema(extras=True)


@pytest.fixture()
def registry():
    return whitepages_registry()


def canonical_records(instance):
    """Order-independent canonical form of an instance (same shape as
    the PR 5 differential uses)."""
    records = []
    for entry in instance:
        dn = instance.dn_string_of(entry)
        lines = tuple(
            sorted(
                f"{name}: {value}"
                for name in entry.attribute_names()
                for value in entry.values(name)
            )
        )
        records.append((dn.casefold(), dn, lines))
    return sorted(records)


def verdict_tuples(report):
    """The comparable face of a rejection: (kind, dn, message) per
    violation — extras violations carry no element, so the PR 5
    element-set comparison would be vacuous here."""
    return sorted((v.kind, str(v.dn), v.message) for v in report)


def all_uids(instance):
    """Every uid value in the instance, with its entry's DN."""
    pairs = []
    for entry in instance:
        for value in entry.values("uid"):
            pairs.append((str(value), instance.dn_string_of(entry)))
    return sorted(pairs)


def person_tx(dn, uid):
    return UpdateTransaction().insert(
        dn, ["person", "top"], {"uid": [uid], "name": [f"n {uid}"]}
    )


class TestLifecycle:
    def test_create_accepts_extras_and_enforces_baseline(
        self, tmp_path, schema, registry
    ):
        initial = generate_whitepages(orgs=3, units_per_level=2, depth=1,
                                      persons_per_unit=2, seed=5)
        with ShardedStore.create(
            str(tmp_path / "ok"), schema, FLAT_BASES, initial, registry
        ) as store:
            assert store.check().is_legal

    def test_create_rejects_duplicate_keys_like_the_union_store(
        self, tmp_path, schema, registry
    ):
        tainted = generate_whitepages(orgs=3, units_per_level=2, depth=1,
                                      persons_per_unit=2, seed=5)
        # Two persons in *different* orgs (hence different shards)
        # sharing one uid: only a global key check can see it.
        for org in ("o=org0", "o=org2"):
            tainted.add_entry(
                tainted.find(org), "uid=dup", ["person", "top"],
                {"uid": ["dupkey"], "name": ["d up"]},
            )
        with pytest.raises(UpdateError, match="not legal to begin with"):
            DirectoryStore.create(
                str(tmp_path / "union"), schema, tainted, registry
            )
        with pytest.raises(UpdateError, match="not legal to begin with"):
            ShardedStore.create(
                str(tmp_path / "sharded"), schema, FLAT_BASES, tainted,
                registry,
            )


@pytest.mark.parametrize("seed", [3, 19])
def test_key_verdict_differential_against_union_store(
    tmp_path, schema, registry, seed
):
    """Randomized single-shard stream: fresh uids commit, reused uids —
    whether their holder lives in the same shard or another one — are
    rejected with the union store's exact violations."""
    initial = generate_whitepages(orgs=3, units_per_level=2, depth=1,
                                  persons_per_unit=2, seed=seed)
    union = DirectoryStore.create(
        str(tmp_path / "union"), schema, initial, registry
    )
    sharded = ShardedStore.create(
        str(tmp_path / "sharded"), schema, FLAT_BASES, initial, registry
    )
    rng = random.Random(seed)
    accepted = rejected = cross_shard = 0
    try:
        for step in range(16):
            parent = rng.choice(insertion_points(union.instance))
            if rng.random() < 0.5:
                uid = f"fresh{step}"
            else:
                uid, holder_dn = rng.choice(all_uids(union.instance))
                target = sharded.shard_map.route(f"uid=x,{parent}").name
                holder = sharded.shard_map.route(holder_dn).name
                if target != holder:
                    cross_shard += 1
            tx = person_tx(f"uid=new{step},{parent}", uid)
            union_outcome = union.apply(tx)
            sharded_outcome = sharded.apply(tx)
            assert union_outcome.applied == sharded_outcome.applied, (
                f"step {step}: union said {union_outcome.applied}, "
                f"sharded said {sharded_outcome.applied}\n"
                f"union: {union_outcome.report}\n"
                f"sharded: {sharded_outcome.report}"
            )
            if union_outcome.applied:
                accepted += 1
            else:
                rejected += 1
                assert verdict_tuples(union_outcome.report) == verdict_tuples(
                    sharded_outcome.report
                ), f"step {step}: verdicts differ"
            assert canonical_records(
                sharded.composite_instance()
            ) == canonical_records(union.instance), f"diverged at step {step}"
            assert union.check().is_legal == sharded.check().is_legal is True
        assert accepted >= 3 and rejected >= 3, (accepted, rejected)
        assert cross_shard >= 1, "stream never reused a uid across shards"
    finally:
        union.close()
        sharded.close()
    # Reopen both: the durable states (and their extras verdicts)
    # survived the restart identically.
    with DirectoryStore.open(
        str(tmp_path / "union"), schema, registry=registry
    ) as union, ShardedStore.open(
        str(tmp_path / "sharded"), schema, registry
    ) as sharded:
        assert canonical_records(
            sharded.composite_instance()
        ) == canonical_records(union.instance)
        assert union.check().is_legal and sharded.check().is_legal
        with CompositeReader.open(
            str(tmp_path / "sharded"), schema, registry
        ) as reader:
            assert reader.check().is_legal


class TestSpanningTransactions:
    @pytest.fixture()
    def pair(self, tmp_path, schema, registry):
        initial = generate_whitepages(orgs=3, units_per_level=2, depth=1,
                                      persons_per_unit=2, seed=9)
        union = DirectoryStore.create(
            str(tmp_path / "union"), schema, initial, registry
        )
        sharded = ShardedStore.create(
            str(tmp_path / "sharded"), schema, FLAT_BASES, initial, registry
        )
        yield union, sharded
        union.close()
        sharded.close()

    def test_duplicate_inside_one_spanning_transaction_aborts(self, pair):
        union, sharded = pair
        tx = UpdateTransaction()
        for org in ("o=org0", "o=org1"):
            tx.insert(
                f"uid=twin,{org}", ["person", "top"],
                {"uid": ["twinkey"], "name": ["t win"]},
            )
        union_outcome = union.apply(tx)
        sharded_outcome = sharded.apply(tx)
        assert not union_outcome.applied and not sharded_outcome.applied
        assert verdict_tuples(union_outcome.report) == verdict_tuples(
            sharded_outcome.report
        )
        assert any("2pc: aborted" in c for c in sharded_outcome.checks), (
            sharded_outcome.checks
        )

    def test_spanning_duplicate_of_a_third_shard_key_aborts(self, pair):
        union, sharded = pair
        taken, _ = next(
            (uid, dn) for uid, dn in all_uids(union.instance)
            if sharded.shard_map.route(dn).name == "c"
        )
        tx = (
            person_tx("uid=s0,o=org0", "spankey")
            .insert(
                "uid=s1,o=org1", ["person", "top"],
                {"uid": [taken], "name": ["s one"]},
            )
        )
        union_outcome = union.apply(tx)
        sharded_outcome = sharded.apply(tx)
        assert not union_outcome.applied and not sharded_outcome.applied
        assert verdict_tuples(union_outcome.report) == verdict_tuples(
            sharded_outcome.report
        )
        assert canonical_records(
            sharded.composite_instance()
        ) == canonical_records(union.instance)

    def test_legal_spanning_transaction_commits_via_2pc(self, pair):
        union, sharded = pair
        tx = UpdateTransaction()
        for i, org in enumerate(("o=org0", "o=org1", "o=org2")):
            tx.insert(
                f"uid=span{i},{org}", ["person", "top"],
                {"uid": [f"spankey{i}"], "name": [f"s pan{i}"]},
            )
        union_outcome = union.apply(tx)
        sharded_outcome = sharded.apply(tx)
        assert union_outcome.applied and sharded_outcome.applied
        assert any("2pc: committed" in c for c in sharded_outcome.checks), (
            sharded_outcome.checks
        )
        assert canonical_records(
            sharded.composite_instance()
        ) == canonical_records(union.instance)
        assert union.check().is_legal and sharded.check().is_legal


def test_modify_duplicating_a_key_is_rejected_identically(
    tmp_path, schema, registry
):
    initial = generate_whitepages(orgs=3, units_per_level=2, depth=1,
                                  persons_per_unit=2, seed=13)
    union = DirectoryStore.create(
        str(tmp_path / "union"), schema, initial, registry
    )
    sharded = ShardedStore.create(
        str(tmp_path / "sharded"), schema, FLAT_BASES, initial, registry
    )
    try:
        uids = all_uids(union.instance)
        victim_uid, victim_dn = uids[0]
        taken_uid, _ = next(
            (uid, dn) for uid, dn in uids
            if sharded.shard_map.route(dn).name
            != sharded.shard_map.route(victim_dn).name
        )
        record = parse_modifications(
            f"dn: {victim_dn}\nchangetype: modify\n"
            f"replace: uid\nuid: {taken_uid}\n-\n"
        )[0]
        union_outcome = union.modify(record)
        sharded_outcome = sharded.modify(record)
        assert not union_outcome.applied and not sharded_outcome.applied
        assert verdict_tuples(union_outcome.report) == verdict_tuples(
            sharded_outcome.report
        )
        # The blind revert left both stores untouched and still legal.
        assert canonical_records(
            sharded.composite_instance()
        ) == canonical_records(union.instance)
        assert union.check().is_legal and sharded.check().is_legal
        # A rename to a fresh uid goes through on both.
        fresh = parse_modifications(
            f"dn: {victim_dn}\nchangetype: modify\n"
            "replace: uid\nuid: renamed0\n-\n"
        )[0]
        assert union.modify(fresh).applied
        assert sharded.modify(fresh).applied
        assert canonical_records(
            sharded.composite_instance()
        ) == canonical_records(union.instance)
    finally:
        union.close()
        sharded.close()
