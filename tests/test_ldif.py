"""Unit and property tests for LDIF parsing and serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LdifError
from repro.ldif.reader import parse_ldif, parse_ldif_records
from repro.ldif.writer import serialize_entry, serialize_ldif
from repro.model.instance import DirectoryInstance
from repro.workloads import figure1_instance, generate_whitepages

SIMPLE = """\
version: 1

dn: o=att
objectClass: organization
objectClass: top
o: att

dn: ou=labs,o=att
objectClass: orgUnit
objectClass: top
ou: labs
"""


class TestReader:
    def test_parse_records(self):
        records = parse_ldif_records(SIMPLE)
        assert len(records) == 2
        assert str(records[0].dn) == "o=att"
        assert records[0].object_classes() == ["organization", "top"]
        assert records[1].other_attributes() == {"ou": ["labs"]}

    def test_parse_to_instance(self):
        instance = parse_ldif(SIMPLE)
        assert len(instance) == 2
        assert instance.find("ou=labs,o=att").belongs_to("orgUnit")

    def test_records_in_any_order(self):
        blocks = SIMPLE.split("\n\n")
        shuffled = blocks[0] + "\n\n" + blocks[2] + "\n\n" + blocks[1]
        instance = parse_ldif(shuffled)
        assert len(instance) == 2

    def test_missing_parent_rejected(self):
        with pytest.raises(LdifError):
            parse_ldif("dn: ou=orphan,o=ghost\nobjectClass: top\n")

    def test_record_without_dn_rejected(self):
        with pytest.raises(LdifError):
            parse_ldif_records("objectClass: top\n")

    def test_record_without_object_class_rejected(self):
        with pytest.raises(LdifError):
            parse_ldif("dn: o=att\no: att\n")

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\ndn: o=att\n# inner comment\nobjectClass: top\n"
        assert len(parse_ldif(text)) == 1

    def test_continuation_lines(self):
        text = "dn: o=att\nobjectClass: top\ndescription: part one\n  and part two\n"
        records = parse_ldif_records(text)
        assert ("description", "part one and part two") in records[0].attributes

    def test_base64_values(self):
        import base64

        payload = base64.b64encode("héllo".encode()).decode()
        text = f"dn: o=att\nobjectClass: top\ncn:: {payload}\n"
        records = parse_ldif_records(text)
        assert ("cn", "héllo") in records[0].attributes

    def test_invalid_base64_rejected(self):
        with pytest.raises(LdifError):
            parse_ldif_records("dn: o=att\ncn:: !!!not-base64!!!\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(LdifError):
            parse_ldif_records("dn: o=att\nthis line has no colon\n")

    def test_duplicate_dn_rejected(self):
        text = "dn: o=att\nobjectClass: top\n\ndn: o=att\nobjectClass: top\n"
        with pytest.raises(LdifError):
            parse_ldif(text)


class TestWriter:
    def test_serialize_entry_contains_pairs(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["organization", "top"], {"o": ["att"]})
        text = serialize_entry(d.entry("o=att"))
        assert "dn: o=att" in text
        assert "objectClass: organization" in text
        assert "o: att" in text

    def test_unsafe_values_base64_encoded(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"], {"cn": ["héllo"]})
        text = serialize_entry(d.entry("o=att"))
        assert "cn:: " in text

    def test_leading_space_base64_encoded(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"], {"cn": [" padded"]})
        assert "cn:: " in serialize_entry(d.entry("o=att"))

    def test_long_lines_folded(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"], {"description": ["x" * 200]})
        text = serialize_entry(d.entry("o=att"))
        assert all(len(line) <= 76 for line in text.splitlines())

    def test_non_string_values_serialized(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"], {"count": [42]})
        assert "count: 42" in serialize_entry(d.entry("o=att"))


class TestRoundTrip:
    def test_figure1_roundtrip(self):
        original = figure1_instance()
        text = serialize_ldif(original)
        parsed = parse_ldif(text, attributes=original.attributes)
        assert len(parsed) == len(original)
        laks = parsed.entry("uid=laks,ou=databases,ou=attLabs,o=att")
        assert set(laks.values("mail")) == {
            "laks@cs.concordia.ca", "laks@cse.iitb.ernet.in"
        }
        assert laks.classes == original.entry(
            "uid=laks,ou=databases,ou=attLabs,o=att"
        ).classes

    def test_generated_roundtrip(self):
        original = generate_whitepages(orgs=1, units_per_level=2, depth=2, seed=3)
        text = serialize_ldif(original)
        parsed = parse_ldif(text, attributes=original.attributes)
        assert len(parsed) == len(original)
        assert serialize_ldif(parsed) == text

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["cn", "description", "note"]),
                st.text(min_size=1, max_size=30),
            ),
            min_size=0,
            max_size=5,
        )
    )
    def test_arbitrary_values_roundtrip(self, pairs):
        d = DirectoryInstance()
        entry = d.add_entry(None, "o=t", ["top"])
        for name, value in pairs:
            entry.add_value(name, value)
        parsed = parse_ldif(serialize_ldif(d))
        reparsed = parsed.entry("o=t")
        for name, value in pairs:
            assert reparsed.has_value(name, value)
