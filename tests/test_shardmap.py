"""The persisted, checksummed shard map: routing semantics, validation
of the cut, and the manifest-idiom persistence (damage refuses to open
— the map is authoritative, there is no fallback)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ShardMapError, ShardRoutingError
from repro.model.dn import DN, parse_dn
from repro.store.shardmap import (
    SHARD_MAP_FILE,
    ShardMap,
    ShardSpec,
    decode_shard_map,
    encode_shard_map,
    inspect_shard_map,
    read_shard_map,
    shard_dir,
    write_shard_map,
)


def flat_map() -> ShardMap:
    return ShardMap.from_bases({"a": "o=org0", "b": "o=org1"})


def nested_map() -> ShardMap:
    return ShardMap.from_bases(
        {"att": "o=att", "labs": "ou=attLabs,o=att"}
    )


class TestValidation:
    def test_empty_map_rejected(self):
        with pytest.raises(ShardMapError, match="at least one"):
            ShardMap([]).validate()

    def test_duplicate_bases_rejected(self):
        with pytest.raises(ShardMapError, match="duplicate shard bases"):
            ShardMap.from_bases({"a": "o=x", "b": "O=X"})

    def test_duplicate_names_rejected(self):
        specs = [
            ShardSpec("a", parse_dn("o=x")),
            ShardSpec("a", parse_dn("o=y")),
        ]
        with pytest.raises(ShardMapError, match="duplicate shard names"):
            ShardMap(specs).validate()

    @pytest.mark.parametrize("name", ["", "a/b", ".", ".."])
    def test_unusable_directory_names_rejected(self, name):
        with pytest.raises(ShardMapError, match="invalid shard name"):
            ShardMap.from_bases({name: "o=x"})

    def test_nested_base_needs_enclosing_shard(self):
        with pytest.raises(ShardMapError, match="no .*owns its parent"):
            ShardMap.from_bases({"labs": "ou=attLabs,o=att"})

    def test_nested_base_with_enclosing_shard_ok(self):
        assert nested_map().has_cut()

    def test_flat_map_has_no_cut(self):
        assert not flat_map().has_cut()

    def test_empty_base_rejected(self):
        with pytest.raises(ShardMapError, match="empty base"):
            ShardMap([ShardSpec("a", DN(()))]).validate()


class TestRouting:
    def test_routes_to_owning_root(self):
        assert flat_map().route("ou=u,o=org0").name == "a"
        assert flat_map().route("o=org1").name == "b"

    def test_deepest_base_wins(self):
        shard_map = nested_map()
        assert shard_map.route("uid=x,ou=attLabs,o=att").name == "labs"
        assert shard_map.route("ou=attLabs,o=att").name == "labs"
        # The cut's parent (and its other children) stay enclosing.
        assert shard_map.route("o=att").name == "att"
        assert shard_map.route("uid=armstrong,o=att").name == "att"

    def test_routing_is_case_insensitive(self):
        assert nested_map().route("UID=X,OU=ATTLABS,O=ATT").name == "labs"

    def test_unowned_dn_raises(self):
        with pytest.raises(ShardRoutingError, match="no shard owns"):
            flat_map().route("o=elsewhere")

    def test_empty_dn_raises(self):
        with pytest.raises(ShardRoutingError):
            flat_map().route(DN(()))

    def test_localize_globalize_roundtrip(self):
        shard_map = nested_map()
        dn = parse_dn("uid=x,ou=attLabs,o=att")
        spec = shard_map.route(dn)
        local = shard_map.localize(dn, spec)
        assert str(local) == "uid=x,ou=attLabs"
        assert str(shard_map.globalize(local, spec)) == str(dn)

    def test_depth1_base_stores_full_dns(self):
        shard_map = flat_map()
        dn = parse_dn("ou=u,o=org0")
        spec = shard_map.route(dn)
        assert shard_map.localize(dn, spec) is dn

    def test_spec_lookup_unknown_name(self):
        with pytest.raises(ShardMapError, match="no shard named"):
            flat_map().spec("nope")


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        root = str(tmp_path)
        write_shard_map(root, nested_map())
        assert read_shard_map(root) == nested_map()

    def test_missing_map_refuses(self, tmp_path):
        with pytest.raises(ShardMapError, match="cannot read shard map"):
            read_shard_map(str(tmp_path))

    def test_checksum_guards_every_byte(self, tmp_path):
        root = str(tmp_path)
        write_shard_map(root, flat_map())
        path = os.path.join(root, SHARD_MAP_FILE)
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        # Flip a byte inside the shards body (not the crc field itself —
        # find the base string).
        index = bytes(data).index(b"org0")
        data[index] = data[index] ^ 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ShardMapError, match="checksum mismatch"):
            read_shard_map(root)

    def test_garbage_is_not_json(self):
        with pytest.raises(ShardMapError, match="not valid JSON"):
            decode_shard_map(b"\x00\xff garbage")

    def test_unknown_format_version(self):
        payload = json.loads(encode_shard_map(flat_map()))
        payload["format"] = 99
        with pytest.raises(ShardMapError, match="unknown shard map format"):
            decode_shard_map(json.dumps(payload).encode())

    def test_decoded_map_is_revalidated(self):
        # A syntactically fine payload carrying an invalid cut (nested
        # base without its enclosing shard) must still refuse.
        bogus = ShardMap(
            [
                ShardSpec("a", parse_dn("o=att")),
                ShardSpec("b", parse_dn("ou=x,o=other")),
            ]
        )
        with pytest.raises(ShardMapError):
            decode_shard_map(encode_shard_map(bogus))

    def test_inspect_returns_none_for_plain_dirs(self, tmp_path):
        assert inspect_shard_map(str(tmp_path)) is None
        write_shard_map(str(tmp_path), flat_map())
        assert inspect_shard_map(str(tmp_path)) == flat_map()

    def test_shard_dir_layout(self):
        assert shard_dir("/r", "a") == os.path.join("/r", "shards", "a")
