"""The asyncio network front-end (:mod:`repro.server`).

Covers the framing layer, the LDAP-ish operation surface (bind model,
search/check reads over per-connection readers, add/delete/txn/modify
writes through the single store writer), the commit-notify channel, the
sharded composite surface (spanning transactions through 2PC), graceful
drain — and the concurrency acceptance gate: N clients searching while
a writer commits must each observe only committed frontiers, never a
torn spanning transaction (in-doubt 2PC state).

No pytest-asyncio here: each test drives its own loop via
``asyncio.run`` so the suite stays dependency-free.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.server import DirectoryClient, DirectoryServer
from repro.server.client import ServerError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.store import DirectoryStore
from repro.store.sharded import ShardedStore
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)

PARENT = "ou=databases,ou=attLabs,o=att"
NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}


@pytest.fixture()
def plain_store(tmp_path):
    schema, registry = whitepages_schema(), whitepages_registry()
    path = str(tmp_path / "store")
    DirectoryStore.create(path, schema, figure1_instance(), registry).close()
    return path, schema, registry


@pytest.fixture()
def sharded_store(tmp_path):
    schema, registry = whitepages_schema(), whitepages_registry()
    path = str(tmp_path / "sharded")
    ShardedStore.create(
        path, schema, NESTED_BASES, figure1_instance(), registry
    ).close()
    return path, schema, registry


async def _serve(store, *, shards=False, jobs=0):
    path, schema, registry = store
    server = DirectoryServer(
        path, schema, registry, shards=shards, jobs=jobs, port=0
    )
    await server.start()
    return server


async def _client(server, dn="cn=test") -> DirectoryClient:
    client = await DirectoryClient.connect("127.0.0.1", server.port)
    if dn is not None:
        await client.bind(dn)
    return client


def _person(index: int) -> dict:
    return {
        "dn": f"uid=w{index},{PARENT}",
        "classes": ["person", "top"],
        "attributes": {"uid": [f"w{index}"], "name": [f"w {index}"]},
    }


class TestFraming:
    def test_round_trip(self):
        message = {"op": "search", "id": 7, "filter": "(cn=\\2a)"}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == message

    def test_oversized_frame_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_refused(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1,2,3]")

    def test_garbage_refused(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe not json")


class TestBindModel:
    def test_ping_allowed_before_bind(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server, dn=None)
                assert (await client.ping())["ok"]
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_operations_require_bind(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server, dn=None)
                with pytest.raises(ServerError) as excinfo:
                    await client.search()
                assert excinfo.value.code == "not_bound"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_anonymous_bind(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server, dn="")
                response = await client.search(filter="(objectClass=person)")
                assert len(response["entries"]) == 3
                await client.unbind()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_unknown_op_is_an_error(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                with pytest.raises(ServerError) as excinfo:
                    await client.request("frobnicate")
                assert excinfo.value.code == "unknown_op"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestReads:
    def test_search_entries_and_position(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                response = await client.search(filter="(uid=laks)")
                assert len(response["entries"]) == 1
                entry = response["entries"][0]
                assert entry["dn"] == "uid=laks,ou=databases,ou=attLabs,o=att"
                assert entry["attributes"]["uid"] == ["laks"]
                assert response["position"] == {"generation": 1, "seq": 0}
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_scoped_search(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                response = await client.search(base=PARENT, scope="base")
                assert [e["dn"] for e in response["entries"]] == [PARENT]
                with pytest.raises(ServerError) as excinfo:
                    await client.search(scope="everything")
                assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_size_limit_cuts_after_ordering_and_flags_truncation(
        self, plain_store
    ):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                full = await client.search(filter="(objectClass=person)")
                assert full["truncated"] is False
                dns = [e["dn"] for e in full["entries"]]
                assert len(dns) > 2
                cut = await client.search(
                    filter="(objectClass=person)", size_limit=2
                )
                # The cut is a prefix of the canonical ordering, and
                # the client is told results were dropped.
                assert [e["dn"] for e in cut["entries"]] == dns[:2]
                assert cut["truncated"] is True
                exact = await client.search(
                    filter="(objectClass=person)", size_limit=len(dns)
                )
                assert exact["truncated"] is False
                assert len(exact["entries"]) == len(dns)
                with pytest.raises(ServerError) as excinfo:
                    await client.search(size_limit=0)
                assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_filter_syntax_error_code(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                with pytest.raises(ServerError) as excinfo:
                    await client.search(filter="(((")
                assert excinfo.value.code == "filter_syntax"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_check_extended_op(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                response = await client.check()
                assert response["legal"] is True
                assert response["violations"] == []
                assert response["entries"] == 6
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestWrites:
    def test_add_then_visible_to_fresh_search(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                spec = _person(0)
                response = await client.add(
                    spec["dn"], spec["classes"], spec["attributes"]
                )
                assert response["applied"] is True
                found = await client.search(filter="(uid=w0)")
                assert len(found["entries"]) == 1
                assert found["position"]["seq"] == 1
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_illegal_add_rejected_with_violations(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                # A person carrying mail is bounding-schema-illegal:
                # the guard rejects it and the response carries the
                # violations instead of raising.
                response = await client.add(
                    f"uid=bad0,{PARENT}", ["person", "top"],
                    {"uid": ["bad0"], "name": ["b zero"],
                     "mail": ["bad@example.com"]},
                )
                assert response["applied"] is False
                assert response["violations"]
                # A structurally impossible add (no parent entry) is a
                # request error, not a guard rejection.
                with pytest.raises(ServerError) as excinfo:
                    await client.add(
                        "uid=orphan,ou=nowhere,o=att", ["person", "top"],
                        {"uid": ["orphan"], "name": ["or phan"]},
                    )
                assert excinfo.value.code == "invalid"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_txn_and_delete(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                changes = (
                    f"dn: uid=t1,{PARENT}\n"
                    "changetype: add\n"
                    "objectClass: person\nobjectClass: top\n"
                    "uid: t1\nname: t one\n\n"
                    f"dn: uid=t2,{PARENT}\n"
                    "changetype: add\n"
                    "objectClass: person\nobjectClass: top\n"
                    "uid: t2\nname: t two\n"
                )
                response = await client.txn(changes)
                assert response["applied"] is True
                assert (await client.delete(f"uid=t2,{PARENT}"))["applied"]
                found = await client.search(filter="(uid=t*)")
                assert [e["dn"] for e in found["entries"]] == [
                    f"uid=t1,{PARENT}"
                ]
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_modify_journaled_and_visible(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                changes = (
                    "dn: uid=laks,ou=databases,ou=attLabs,o=att\n"
                    "changetype: modify\n"
                    "replace: mail\n"
                    "mail: laks@example.edu\n"
                    "-\n"
                )
                response = await client.modify(changes)
                assert response["applied"] is True
                found = await client.search(filter="(mail=laks@example.edu)")
                assert len(found["entries"]) == 1
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestNotifyChannel:
    def test_watcher_wakes_on_commit(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                watcher = await _client(server, dn="cn=watcher")
                await watcher.watch()
                writer = await _client(server, dn="cn=writer")
                spec = _person(1)
                await writer.add(
                    spec["dn"], spec["classes"], spec["attributes"]
                )
                notify = await watcher.next_notify(timeout=5)
                assert notify["op"] == "notify"
                assert notify["seq"] == 1
                # The wakeup is the re-check trigger: the follower's
                # next read sees the commit.
                found = await watcher.search(filter="(uid=w1)")
                assert len(found["entries"]) == 1
                await watcher.close()
                await writer.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_rejected_write_does_not_notify(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                watcher = await _client(server, dn="cn=watcher")
                await watcher.watch()
                writer = await _client(server, dn="cn=writer")
                response = await writer.add(
                    f"uid=bad1,{PARENT}", ["person", "top"],
                    {"uid": ["bad1"], "name": ["b one"],
                     "mail": ["bad@example.com"]},
                )
                assert response["applied"] is False
                with pytest.raises(asyncio.TimeoutError):
                    await watcher.next_notify(timeout=0.3)
                await watcher.close()
                await writer.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_slow_watcher_coalesces_with_drop_signal(
        self, plain_store, monkeypatch
    ):
        """A subscriber that cannot keep up must not make the server
        buffer per-commit frames: notifications coalesce in the bounded
        per-subscriber cell and the catch-up frame says how many were
        folded away (``dropped``), so the client knows to re-read
        rather than trust the gap.  The artificially slow client here
        is simulated by stalling every notify write server-side — the
        commits all land while the first frame is still in flight."""
        import repro.server.server as server_module

        real_write_frame = server_module.write_frame

        async def stalled_write_frame(writer, message):
            if message.get("op") == "notify":
                await asyncio.sleep(0.4)
            await real_write_frame(writer, message)

        async def run():
            server = await _serve(plain_store)
            try:
                watcher = await _client(server, dn="cn=watcher")
                await watcher.watch()
                writer = await _client(server, dn="cn=writer")
                monkeypatch.setattr(
                    server_module, "write_frame", stalled_write_frame
                )
                commits = 5
                for index in range(1, commits + 1):
                    spec = _person(index)
                    response = await writer.add(
                        spec["dn"], spec["classes"], spec["attributes"]
                    )
                    assert response["applied"]
                frames = []
                while sum(
                    1 + frame.get("dropped", 0) for frame in frames
                ) < commits:
                    frames.append(await watcher.next_notify(timeout=5))
                # far fewer frames than commits: no unbounded buffering
                assert len(frames) < commits
                # nothing lost silently: every folded-away notification
                # is accounted for in a dropped counter
                assert any(frame.get("dropped", 0) > 0 for frame in frames)
                # the catch-up frame points at the true latest commit
                assert frames[-1]["seq"] == commits
                # and the drop is a *resync* signal: re-reading shows
                # every commit the folded frames covered
                found = await watcher.search(filter="(uid=w*)")
                assert len(found["entries"]) == commits
                await watcher.close()
                await writer.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestShardedServing:
    def test_search_and_spanning_txn(self, sharded_store):
        async def run():
            server = await _serve(sharded_store, shards=True)
            try:
                client = await _client(server)
                response = await client.search(filter="(objectClass=person)")
                assert len(response["entries"]) == 3
                assert set(response["position"]) == {"att", "labs"}
                # One transaction spanning both shards rides 2PC.
                changes = (
                    "dn: uid=root1,o=att\n"
                    "changetype: add\n"
                    "objectClass: person\nobjectClass: top\n"
                    "uid: root1\nname: r one\n\n"
                    f"dn: uid=leaf1,{PARENT}\n"
                    "changetype: add\n"
                    "objectClass: person\nobjectClass: top\n"
                    "uid: leaf1\nname: l one\n"
                )
                applied = await client.txn(changes)
                assert applied["applied"] is True
                found = await client.search(filter="(objectClass=person)")
                assert len(found["entries"]) == 5
                verdict = await client.check()
                assert verdict["legal"] is True
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_sharded_search_is_canonically_ordered(self, sharded_store):
        async def run():
            server = await _serve(sharded_store, shards=True)
            try:
                client = await _client(server)
                response = await client.search()
                dns = [e["dn"] for e in response["entries"]]
                from repro.model.dn import parse_dn

                def key(dn):
                    return tuple(
                        str(r)
                        for r in reversed(parse_dn(dn).normalized().rdns)
                    )

                assert dns == sorted(dns, key=key)
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestGracefulDrain:
    def test_stop_drains_inflight_connections(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            client = await _client(server)
            response = await client.search()
            assert response["ok"]
            # stop() with live connections: in-flight work finishes,
            # the socket closes, the store lock is released.
            await server.stop(drain=True, timeout=5)
            path, schema, registry = plain_store
            store = DirectoryStore.open(path, schema, registry)
            store.close()
            await client.close()

        asyncio.run(run())


class TestDrainLatency:
    def test_stop_returns_promptly_with_idle_connections(self, plain_store):
        """Regression: ``stop(drain=True)`` used to stall for the full
        timeout whenever any connection sat idle in ``read_frame`` —
        ``_draining`` is only checked between frames and closing the
        listener does not touch accepted sockets.  The drain now nudges
        idle connections (closes their transports), so a graceful
        SIGTERM on an idle server returns promptly."""

        async def run():
            server = await _serve(plain_store)
            idlers = [await _client(server, dn=f"cn=idle{i}") for i in range(3)]
            for client in idlers:
                assert (await client.search())["ok"]  # now parked idle
            loop = asyncio.get_running_loop()
            started = loop.time()
            await server.stop(drain=True, timeout=30)
            elapsed = loop.time() - started
            assert elapsed < 5, f"idle drain took {elapsed:.1f}s"
            for client in idlers:
                await client.close()

        asyncio.run(run())


class TestModifyValidation:
    def test_empty_modify_batch_rejected(self, plain_store):
        """Regression: an empty changes document used to come back
        ``applied: true`` — ``all()`` over zero per-record results is
        vacuously true.  An empty batch is a client bug; reject it."""

        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                for empty in ("", "\n\n"):
                    with pytest.raises(ServerError) as excinfo:
                        await client.modify(empty)
                    assert excinfo.value.code == "bad_request"
                # and nothing was journaled by the refusals
                position = await client.position()
                assert position["position"] == {"generation": 1, "seq": 0}
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_empty_txn_document_rejected(self, plain_store):
        """The same vacuous-success trap on the ``txn`` path: an empty
        changes document parses to a zero-operation transaction that
        ``apply`` accepts without committing anything — the server must
        refuse it instead of answering ``applied: true``."""

        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server)
                for empty in ("", "\n\n"):
                    with pytest.raises(ServerError) as excinfo:
                        await client.txn(empty)
                    assert excinfo.value.code == "bad_request"
                position = await client.position()
                assert position["position"] == {"generation": 1, "seq": 0}
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestReplicatePositionValidation:
    @pytest.mark.parametrize(
        "fields",
        [
            {"generation": True, "seq": 0},
            {"generation": 0, "seq": True},
            {"generation": False, "seq": False},
            {"generation": -1, "seq": 0},
            {"generation": 0, "seq": "7"},
        ],
    )
    def test_bool_and_junk_positions_refused(self, plain_store, fields):
        """Regression: ``isinstance(True, int)`` holds, so a boolean
        ``generation``/``seq`` used to attach a follower at position
        1/0 instead of being refused like every other non-integer."""

        async def run():
            server = await _serve(plain_store)
            try:
                client = await _client(server, dn="cn=replica")
                with pytest.raises(ServerError) as excinfo:
                    await client.request("replicate", **fields)
                assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_sharded_subscribe_validates_shard_positions(self, sharded_store):
        async def run():
            server = await _serve(sharded_store, shards=True)
            try:
                client = await _client(server, dn="cn=replica")
                for shards in (
                    {"att": [True, 0], "labs": [0, 0]},
                    {"att": [0], "labs": [0, 0]},
                    {"att": [0, -2], "labs": [0, 0]},
                    "not-a-map",
                ):
                    with pytest.raises(ServerError) as excinfo:
                        await client.request("replicate", shards=shards)
                    assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await server.stop()

        asyncio.run(run())


class TestCommitFeedDropCounter:
    def test_publishes_coalesce_and_count(self):
        """The bounded notify cell: unconsumed publishes overwrite the
        cell and are *counted*; the next consume reports the fold."""
        from repro.server.server import _CommitFeed

        async def run():
            feed = _CommitFeed(0)
            feed.publish(1)
            feed.publish(2)
            feed.publish(3)
            seq, dropped = await feed.next()
            assert (seq, dropped) == (3, 2)
            # counter resets once consumed
            feed.publish(4)
            seq, dropped = await feed.next()
            assert (seq, dropped) == (4, 0)

        asyncio.run(run())

    def test_wake_without_commit_drops_nothing(self):
        from repro.server.server import _CommitFeed

        async def run():
            feed = _CommitFeed(7)
            feed.wake()
            seq, dropped = await feed.next()
            assert (seq, dropped) == (7, 0)

        asyncio.run(run())


class TestConcurrentClients:
    """The acceptance gate: N async clients searching while one writer
    commits — every response reflects a committed frontier and no
    client ever observes in-doubt 2PC state."""

    CLIENTS = 8
    WRITES = 12

    def test_readers_see_only_committed_prefixes(self, plain_store):
        async def run():
            server = await _serve(plain_store)
            try:
                writer = await _client(server, dn="cn=writer")
                done = asyncio.Event()

                async def write_stream():
                    for index in range(self.WRITES):
                        spec = _person(index)
                        response = await writer.add(
                            spec["dn"], spec["classes"], spec["attributes"]
                        )
                        assert response["applied"] is True
                    done.set()

                observations = []

                async def read_stream(n):
                    client = await _client(server, dn=f"cn=reader{n}")
                    while not done.is_set():
                        response = await client.search(filter="(uid=w*)")
                        observations.append(
                            (
                                response["position"]["seq"],
                                sorted(
                                    e["attributes"]["uid"][0]
                                    for e in response["entries"]
                                ),
                            )
                        )
                        await asyncio.sleep(0)
                    await client.close()

                await asyncio.gather(
                    write_stream(),
                    *(read_stream(n) for n in range(self.CLIENTS)),
                )
                await writer.close()
            finally:
                await server.stop()

            assert observations
            for seq, uids in observations:
                # The writer inserts w0, w1, ... one commit each: a
                # committed frontier at seq k shows exactly the first
                # k inserts — anything else is a torn or uncommitted
                # view leaking out.
                assert uids == [f"w{i}" for i in sorted(range(seq), key=str)]

        asyncio.run(run())

    def test_no_client_observes_in_doubt_2pc_state(self, sharded_store):
        async def run():
            server = await _serve(sharded_store, shards=True)
            try:
                writer = await _client(server, dn="cn=writer")
                done = asyncio.Event()

                async def write_stream():
                    # Every transaction spans both shards: one entry at
                    # the root shard, one below the nested cut — the
                    # 2PC path, every time.
                    for index in range(self.WRITES):
                        changes = (
                            f"dn: uid=a{index},o=att\n"
                            "changetype: add\n"
                            "objectClass: person\nobjectClass: top\n"
                            f"uid: a{index}\nname: a {index}\n\n"
                            f"dn: uid=b{index},{PARENT}\n"
                            "changetype: add\n"
                            "objectClass: person\nobjectClass: top\n"
                            f"uid: b{index}\nname: b {index}\n"
                        )
                        response = await writer.txn(changes)
                        assert response["applied"] is True
                    done.set()

                torn = []

                async def read_stream(n):
                    client = await _client(server, dn=f"cn=reader{n}")
                    while not done.is_set():
                        response = await client.search(
                            filter="(objectClass=person)"
                        )
                        uids = {
                            e["attributes"]["uid"][0]
                            for e in response["entries"]
                        }
                        for index in range(self.WRITES):
                            a, b = f"a{index}", f"b{index}"
                            if (a in uids) != (b in uids):
                                torn.append((n, index, a in uids,
                                             response['position'],
                                             sorted(uids)))
                        await asyncio.sleep(0)
                    await client.close()

                await asyncio.gather(
                    write_stream(),
                    *(read_stream(n) for n in range(self.CLIENTS)),
                )
                await writer.close()
            finally:
                await server.stop()

            # A spanning transaction is atomic: no reader may ever see
            # one half of a prepared-but-undecided pair.
            assert torn == []

        asyncio.run(run())
