"""Tests for instance statistics and the referential-integrity extra."""

from repro.legality.checker import LegalityChecker
from repro.legality.report import Kind
from repro.model.instance import DirectoryInstance
from repro.schema.dsl import parse_dsl, serialize_dsl
from repro.schema.extras import SchemaExtras
from repro.stats import collect_stats
from repro.workloads import figure1_instance, generate_whitepages, whitepages_schema


class TestStats:
    def test_figure1_shape(self, fig1):
        stats = collect_stats(fig1)
        assert stats.entries == 6
        assert stats.roots == 1
        assert stats.max_depth == 4
        assert stats.leaves == 3
        assert stats.class_population["person"] == 3
        assert stats.class_population["top"] == 6
        assert stats.attribute_population["mail"] == 1

    def test_heterogeneity_visible(self):
        """The introduction's motif: mail cardinality varies."""
        instance = generate_whitepages(orgs=2, units_per_level=3, depth=2,
                                       persons_per_unit=3, seed=0)
        stats = collect_stats(instance)
        assert len(stats.heterogeneity("mail")) >= 2

    def test_depth_histogram_sums_to_entries(self, fig1):
        stats = collect_stats(fig1)
        assert sum(stats.depth_histogram.values()) == stats.entries
        assert sum(stats.classes_per_entry.values()) == stats.entries

    def test_str_renders(self, fig1):
        text = str(collect_stats(fig1))
        assert "entries: 6" in text
        assert "person: 3" in text

    def test_empty_instance(self):
        stats = collect_stats(DirectoryInstance())
        assert stats.entries == 0 and stats.max_depth == 0

    def test_cli_stats(self, tmp_path, capsys):
        from repro.cli import main
        from repro.ldif import dump_ldif

        path = tmp_path / "d.ldif"
        dump_ldif(figure1_instance(), str(path))
        assert main(["stats", "--data", str(path)]) == 0
        assert "entries: 6" in capsys.readouterr().out


class TestReferentialIntegrity:
    def schema(self, instance=None):
        schema = whitepages_schema()
        schema.attribute_schema._allowed["person"] = (
            schema.attribute_schema.allowed("person") | {"manager"}
        )
        schema.registry.declare("manager", "dn")
        schema.extras = SchemaExtras().declare_referential("manager")
        if instance is not None and instance.attributes is not None:
            # the fixture instance carries its own registry
            instance.attributes.declare("manager", "dn")
        return schema

    def test_valid_reference_accepted(self, fig1):
        schema = self.schema(fig1)
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_value(
            "manager", "uid=laks,ou=databases,ou=attLabs,o=att"
        )
        assert LegalityChecker(schema).check(fig1).is_legal

    def test_dangling_reference_detected(self, fig1):
        schema = self.schema(fig1)
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_value(
            "manager", "uid=ghost,o=att"
        )
        report = LegalityChecker(schema).check(fig1)
        assert [v.kind for v in report] == [Kind.DANGLING_REFERENCE]
        assert "uid=ghost" in report.violations[0].message

    def test_reference_broken_by_deletion_caught_on_recheck(self, fig1):
        schema = self.schema(fig1)
        fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_value(
            "manager", "uid=laks,ou=databases,ou=attLabs,o=att"
        )
        fig1.delete_entry("uid=laks,ou=databases,ou=attLabs,o=att")
        report = LegalityChecker(schema).check(fig1)
        assert Kind.DANGLING_REFERENCE in [v.kind for v in report]

    def test_dsl_roundtrip(self):
        schema = self.schema()
        text = serialize_dsl(schema)
        assert "referential manager" in text
        reparsed = parse_dsl(text)
        assert reparsed.extras.referential_attributes == {"manager"}
