"""The failover crash matrix: kill the replica process at every named
replication/promotion protocol step and at every I/O boundary, and
assert the recovered (and then promoted) replica is byte-for-byte a
committed prefix of the primary's history.

The default lane runs the named-point matrix (every ``repl:*`` and
``promote:*`` step) plus a strided slice of the full I/O-op matrix; the
nightly slow lane runs every op index at three torn-write fractions.
See ``tests/harness/replication_crash.py`` for the scenario and the
recovery properties, and the promotion-refusal scenarios at the bottom
for the in-doubt 2PC gate.
"""

from __future__ import annotations

import os

import pytest

from harness.replication_crash import (
    FRONTIER,
    assert_replica_recovers,
    dry_run,
    run_op_matrix,
    run_point_matrix,
    run_replication_scenario,
)
from harness.stress import state_digest
from repro.errors import StoreError
from repro.store import DirectoryStore
from repro.store import wal
from repro.store.faults import FaultPlan, FaultyIO
from repro.store.recovery import JOURNAL_FILE, recover
from repro.store.replicate import FrameSource, ReplicaApplier, promote, pump
from repro.workloads import (
    figure1_instance,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

#: Every named step of the replica's apply path and the promotion
#: handoff — the full kill matrix the issue demands.
REPLICA_POINTS = (
    "repl:snapshot-install",
    "repl:journal-reset",
    "repl:manifest",
    "repl:state",
    "repl:frames-append",
    "repl:fold-snapshot",
    "repl:fold-journal",
)
PROMOTE_POINTS = (
    "promote:inspect",
    "promote:open",
    "promote:compact",
    "promote:state",
)


def test_dry_run_crosses_every_named_point(tmp_path):
    """The scenario really exercises every protocol step (a point the
    dry run never crosses would silently drop out of the matrix)."""
    _, _, _, plan = dry_run(tmp_path)
    crossed = set(plan.points)
    for point in REPLICA_POINTS + PROMOTE_POINTS:
        assert point in crossed, f"scenario never crosses {point!r}"


class TestNamedFaultPoints:
    def test_kill_at_every_point(self, tmp_path):
        """Crash at each named step once; recovery must land on a
        committed prefix, resume losslessly, and stay promotable."""
        oracle, journals, snapshots, plan = dry_run(tmp_path)
        points = list(dict.fromkeys(plan.points))
        fired = run_point_matrix(tmp_path, oracle, journals, snapshots, points)
        assert fired == len(points)


class TestOpMatrix:
    def test_strided_io_crash_matrix(self, tmp_path):
        """Default-lane smoke slice: every 5th I/O boundary of the
        replica's apply/promote path, full-frame writes."""
        self._run_matrix(tmp_path, stride=5, fractions=(1.0,))

    @pytest.mark.slow
    def test_every_io_boundary_and_torn_fraction(self, tmp_path):
        """Nightly lane: the full matrix — every I/O boundary at three
        torn-write fractions."""
        self._run_matrix(tmp_path, stride=1, fractions=(0.0, 0.5, 1.0))

    @staticmethod
    def _run_matrix(tmp_path, stride, fractions):
        oracle, journals, snapshots, plan = dry_run(tmp_path)
        total_ops = plan.ops_executed
        assert total_ops >= 30, f"scenario too small: {plan.trace}"
        runs = run_op_matrix(
            tmp_path, oracle, journals, snapshots, total_ops,
            stride=stride, fractions=fractions,
        )
        assert runs == len(fractions) * len(range(0, total_ops, stride))


def test_dry_run_oracle_matches_undisturbed_replica(tmp_path):
    """Sanity for the matrix's oracle: an undisturbed replica finishes
    exactly at the frontier with the primary's digest."""
    oracle, journals, snapshots = run_replication_scenario(
        str(tmp_path / "primary"), str(tmp_path / "replica"),
        FaultyIO(FaultPlan()),
    )
    assert FRONTIER in oracle
    _, report = recover(
        str(tmp_path / "replica"), whitepages_schema(), whitepages_registry(),
        repair=False,
    )
    # promotion compacted the replica into its own new epoch
    assert (report.generation, report.last_seq) == (3, 0)
    assert_replica_recovers(
        str(tmp_path / "primary"), str(tmp_path / "replica"),
        oracle, journals, snapshots, label="undisturbed",
    )


# ----------------------------------------------------------------------
# the in-doubt 2PC gate
# ----------------------------------------------------------------------
def _store_with_trailing_prepare(path: str):
    """A store whose journal ends in an undecided ``#PREPARE`` — the
    shape a crashed 2PC participant leaves behind."""
    schema, registry = whitepages_schema(), whitepages_registry()
    store = DirectoryStore.create(path, schema, figure1_instance(), registry)
    outcome = store.apply(
        random_transaction(store.instance, inserts=1, seed=77)
    )
    assert outcome.applied
    seq = store.journal_length
    generation = store.generation
    store.close()
    payload = (
        "dn: uid=indoubt,ou=databases,ou=attLabs,o=att\n"
        "changetype: add\nobjectClass: person\nobjectClass: top\n"
        "uid: indoubt\nname: in doubt\n"
    )
    frame = wal.encode_prepare("tx-indoubt", seq + 1, generation, payload)
    with open(os.path.join(path, JOURNAL_FILE), "ab") as fh:
        fh.write(frame)
    return schema, registry


def test_promote_refuses_visible_in_doubt_prepare(tmp_path):
    """Promotion of a copy holding an undecided prepare must refuse
    with a clear, actionable error — only the old primary's coordinator
    log can decide the transaction."""
    path = str(tmp_path / "indoubt")
    schema, registry = _store_with_trailing_prepare(path)
    with pytest.raises(StoreError, match="refusing to promote") as info:
        promote(path, schema, registry)
    assert "in-doubt 2PC transaction tx-indoubt" in str(info.value)
    # the refusal touched nothing: the prepare is still there, and the
    # store is still openable read-wise
    _, report = recover(path, schema, registry, repair=False)
    assert report.in_doubt_txid == "tx-indoubt"


def test_stream_never_ships_in_doubt_prepare(tmp_path):
    """The committed cut stops in front of an undecided prepare, so a
    follower of an in-doubt primary holds only decided state — and is
    therefore immediately promotable."""
    primary = str(tmp_path / "primary")
    replica = str(tmp_path / "replica")
    schema, registry = _store_with_trailing_prepare(primary)

    source = FrameSource(primary, schema)
    with ReplicaApplier(replica, schema, registry) as applier:
        pump(source, applier)
        position = applier.position()
        digest = state_digest(applier.reader.instance)
    # the replica stands one frame short of the primary's journal tail
    # (last_seq counts the undecided prepare): the in-doubt frame
    # stayed home
    _, report = recover(primary, schema, registry, repair=False)
    assert report.in_doubt_txid is not None
    assert position == (report.generation, report.last_seq - 1)

    promoted = promote(replica, schema, registry)
    try:
        assert state_digest(promoted.instance) == digest
    finally:
        promoted.close()
