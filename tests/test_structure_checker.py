"""Tests for structure-schema legality: the query reduction and the
naive baseline must agree everywhere (Section 3.2)."""

from hypothesis import given, settings, strategies as st

from repro.legality.report import Kind
from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.model.instance import DirectoryInstance
from repro.schema.structure_schema import StructureSchema
from repro.workloads import random_forest


def checkers(structure):
    return QueryStructureChecker(structure), NaiveStructureChecker(structure)


class TestVerdicts:
    def test_figure3_on_figure1(self, wp_schema, fig1):
        query, naive = checkers(wp_schema.structure_schema)
        assert query.check(fig1).is_legal
        assert naive.check(fig1).is_legal

    def test_missing_required_class(self):
        structure = StructureSchema().require_class("router")
        query, naive = checkers(structure)
        d = DirectoryInstance()
        d.add_entry(None, "o=1", ["top"])
        for checker in (query, naive):
            report = checker.check(d)
            assert [v.kind for v in report] == [Kind.MISSING_REQUIRED_CLASS]
            assert not checker.is_legal(d)

    def test_required_child_violation_found(self, fig1):
        structure = StructureSchema().require_child("orgUnit", "person")
        query, naive = checkers(structure)
        # attLabs has no direct person child (only via databases)
        for checker in (query, naive):
            report = checker.check(fig1)
            assert any(
                v.dn == "ou=attLabs,o=att" for v in report
            ), str(report)

    def test_forbidden_descendant_violation_found(self, fig1):
        structure = StructureSchema().forbid_descendant("organization", "researcher")
        query, naive = checkers(structure)
        for checker in (query, naive):
            report = checker.check(fig1)
            assert not report.is_legal
            assert all(v.kind == Kind.FORBIDDEN_RELATIONSHIP for v in report)
            assert any(v.dn == "o=att" for v in report)

    def test_witness_cap_summarizes(self):
        structure = StructureSchema().require_child("k0", "k1")
        d = DirectoryInstance()
        for i in range(9):
            d.add_entry(None, f"o={i}", ["k0", "top"])
        query, naive = checkers(structure)
        for checker in (query, naive):
            report = checker.check(d)
            assert len(report) == 6  # 5 named + 1 summary
            assert "4 more" in report.violations[-1].message


class TestDifferential:
    """Query reduction vs. naive pairwise: identical verdicts and
    identical per-element witness sets, on arbitrary random forests."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 50), st.integers(0, 7))
    def test_reports_agree_on_random_forests(self, seed, size, schema_pick):
        labels = ["k0", "k1", "k2"]
        structures = [
            StructureSchema().require_child("k0", "k1"),
            StructureSchema().require_descendant("k0", "k1"),
            StructureSchema().require_parent("k0", "k1"),
            StructureSchema().require_ancestor("k0", "k1"),
            StructureSchema().forbid_child("k0", "k1"),
            StructureSchema().forbid_descendant("k0", "k2"),
            StructureSchema().require_class("k0", "k2").forbid_child("k1", "k1"),
            StructureSchema()
            .require_descendant("k0", "k1")
            .require_ancestor("k2", "k0")
            .forbid_child("k2", "k2")
            .require_class("k1"),
        ]
        structure = structures[schema_pick]
        instance = random_forest(n_entries=size, labels=labels, seed=seed)
        query, naive = checkers(structure)
        query_report = query.check(instance)
        naive_report = naive.check(instance)
        assert query_report.is_legal == naive_report.is_legal
        assert query.is_legal(instance) == naive.is_legal(instance)

        def signature(report):
            return sorted((v.kind, v.element or "", v.dn or "") for v in report)

        assert signature(query_report) == signature(naive_report)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_direct_semantics_agree(self, seed):
        structure = (
            StructureSchema()
            .require_descendant("k0", "k1")
            .forbid_descendant("k1", "k0")
        )
        instance = random_forest(n_entries=30, labels=["k0", "k1"], seed=seed)
        query, naive = checkers(structure)
        direct = all(
            e.is_satisfied(instance) for e in structure.elements()
        )
        assert query.is_legal(instance) == direct == naive.is_legal(instance)
