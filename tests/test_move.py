"""Tests for guarded subtree move/rename (LDAP modrdn)."""

import pytest

from repro.errors import UpdateError
from repro.ldif import serialize_ldif
from repro.legality.checker import LegalityChecker
from repro.updates.incremental import IncrementalChecker
from repro.workloads import generate_whitepages, whitepages_schema

DATABASES = "ou=databases,ou=attLabs,o=att"
LAKS = "uid=laks,ou=databases,ou=attLabs,o=att"


@pytest.fixture()
def guard(wp_schema, fig1):
    return IncrementalChecker(wp_schema, fig1)


class TestMove:
    def test_move_person_between_units(self, guard, fig1):
        outcome = guard.try_move(LAKS, new_parent="ou=attLabs,o=att")
        assert outcome.applied
        assert fig1.find("uid=laks,ou=attLabs,o=att") is not None
        assert fig1.find(LAKS) is None
        assert LegalityChecker(whitepages_schema()).is_legal(fig1)

    def test_move_whole_unit_out_of_its_group_rejected(self, guard, fig1):
        """Moving databases out of attLabs leaves attLabs without a
        person descendant — the deletion-side check at the origin."""
        outcome = guard.try_move(DATABASES, new_parent="o=att")
        assert not outcome.applied
        assert any("orgGroup →→ person" in (v.element or "")
                   for v in outcome.report)

    def test_move_whole_unit_accepted_when_origin_keeps_a_person(self, guard, fig1):
        fig1.add_entry("ou=attLabs,o=att", "uid=stay", ["person", "top"],
                       {"uid": ["stay"], "name": ["stay er"]})
        outcome = guard.try_move(DATABASES, new_parent="o=att")
        assert outcome.applied
        assert fig1.find("uid=laks,ou=databases,o=att") is not None
        assert LegalityChecker(whitepages_schema()).is_legal(fig1)

    def test_rename_in_place(self, guard, fig1):
        outcome = guard.try_move(DATABASES, new_rdn="ou=data")
        assert outcome.applied
        assert fig1.find("ou=data,ou=attLabs,o=att") is not None
        assert fig1.find(DATABASES) is None

    def test_move_under_person_rejected_and_rolled_back(self, guard, fig1):
        before = serialize_ldif(fig1)
        outcome = guard.try_move(
            DATABASES, new_parent="uid=armstrong,o=att"
        )
        assert not outcome.applied
        assert any("person ↛ top" in (v.element or "") for v in outcome.report)
        assert serialize_ldif(fig1) == before

    def test_move_vacating_last_person_rejected(self, wp_schema):
        """Moving the only person-containing subtree out from under a
        unit violates orgGroup →→ person at the *origin* — the
        deletion-side check."""
        instance = generate_whitepages(orgs=2, units_per_level=1, depth=1,
                                       persons_per_unit=1, seed=13)
        guard = IncrementalChecker(wp_schema, instance)
        # find a unit with exactly one person child and no other branches
        unit = None
        person = None
        for eid in sorted(instance.entries_with_class("orgUnit")):
            children = instance.children_of(eid)
            persons = [c for c in children if c.belongs_to("person")]
            if len(children) == len(persons) == 1:
                unit = instance.entry(eid)
                person = persons[0]
                break
        assert unit is not None
        other_org = next(
            str(instance.dn_of(e))
            for e in sorted(instance.entries_with_class("organization"))
            if not instance.is_ancestor(e, unit)
        )
        before = serialize_ldif(instance)
        outcome = guard.try_move(str(instance.dn_of(person)), new_parent=other_org)
        assert not outcome.applied
        assert any("orgGroup →→ person" in (v.element or "")
                   for v in outcome.report)
        assert serialize_ldif(instance) == before

    def test_move_into_own_subtree_rejected(self, guard):
        with pytest.raises(UpdateError, match="inside the moved subtree"):
            guard.try_move("ou=attLabs,o=att", new_parent=DATABASES)

    def test_move_onto_itself_rejected(self, guard):
        with pytest.raises(UpdateError, match="inside the moved subtree"):
            guard.try_move(DATABASES, new_parent=DATABASES)

    def test_move_to_missing_destination_rejected(self, guard):
        with pytest.raises(UpdateError, match="does not exist"):
            guard.try_move(DATABASES, new_parent="ou=ghost,o=att")

    def test_duplicate_dn_at_destination_restores(self, guard, fig1):
        fig1.add_entry("o=att", "ou=databases",
                       ["orgUnit", "orgGroup", "top"], {"ou": ["databases"]})
        fig1.add_entry("ou=databases,o=att", "uid=p",
                       ["person", "top"], {"uid": ["p"], "name": ["p p"]})
        before = serialize_ldif(fig1)
        with pytest.raises(UpdateError, match="move failed"):
            guard.try_move(DATABASES, new_parent="o=att")
        assert serialize_ldif(fig1) == before

    def test_rename_rolls_back_rdn(self, guard, fig1):
        before = serialize_ldif(fig1)
        outcome = guard.try_move(
            DATABASES, new_parent="uid=armstrong,o=att", new_rdn="ou=data"
        )
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_move_verdict_matches_full_recheck(self, wp_schema):
        """Differential: try_move's verdict equals checking the
        hypothetically moved instance from scratch."""
        instance = generate_whitepages(orgs=2, units_per_level=2, depth=1,
                                       persons_per_unit=2, seed=21)
        guard = IncrementalChecker(wp_schema, instance)
        full = LegalityChecker(wp_schema)
        units = sorted(
            str(instance.dn_of(e)) for e in instance.entries_with_class("orgUnit")
        )
        persons = sorted(
            str(instance.dn_of(e)) for e in instance.entries_with_class("person")
        )
        moves = [
            (persons[0], units[-1]),
            (persons[1], "o=org0"),
            (units[0], "o=org1"),
            (persons[2], persons[3]),  # person under person: illegal
        ]
        for source, dest in moves:
            hypothetical = instance.copy()
            sub = hypothetical.delete_subtree(source)
            try:
                hypothetical.insert_subtree(dest, sub)
            except Exception:
                continue
            expected = full.is_legal(hypothetical)
            outcome = guard.try_move(source, new_parent=dest)
            assert outcome.applied == expected, (source, dest)
            assert full.is_legal(instance)
            if outcome.applied:
                # keep following moves meaningful: recompute names
                break
