"""Unit tests for the lock-free store reader (single process).

Multi-process stress lives in ``test_reader_stress.py``, the crash
matrix in ``test_reader_crash.py``, randomized interleavings in
``test_reader_fuzz.py``; this file covers the reader's contract one
behavior at a time: bootstrap, incremental refresh, compaction
follow-through, staleness introspection and ``strict`` semantics, the
manifest rendezvous, the read surface (search/check), the sidecar
read-only discipline, and the advisory-lock fix (typed error with
holder pid; readers never lock).
"""

import json
import os

import pytest

from repro.errors import StaleReadError, StoreError, StoreLockedError
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore, StoreReader, read_manifest
from repro.store.manifest import (
    MANIFEST_FILE,
    Manifest,
    decode_manifest,
    encode_manifest,
)
from repro.store.recovery import JOURNAL_FILE, SIDECAR_FILE, SNAPSHOT_FILE
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema


def unit_tx(i):
    return (
        UpdateTransaction()
        .insert(
            f"ou=unit{i},o=att",
            ["orgUnit", "orgGroup", "top"],
            {"ou": [f"unit{i}"]},
        )
        .insert(
            f"uid=member{i},ou=unit{i},o=att",
            ["person", "top"],
            {"uid": [f"member{i}"], "name": [f"member {i}"]},
        )
    )


@pytest.fixture
def store(tmp_path):
    store = DirectoryStore.create(
        str(tmp_path / "store"),
        whitepages_schema(),
        figure1_instance(),
        whitepages_registry(),
    )
    yield store
    store.close()


def open_reader(store_dir):
    return DirectoryStore.open_reader(
        store_dir, whitepages_schema(), whitepages_registry()
    )


class TestBootstrapAndRefresh:
    def test_bootstrap_equals_writer(self, store):
        with open_reader(store._dir) as reader:
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)
            assert reader.position() == (1, 0)
            assert reader.lag().current

    def test_bootstrap_includes_committed_journal(self, store):
        for i in (1, 2, 3):
            assert store.apply(unit_tx(i)).applied
        with open_reader(store._dir) as reader:
            assert reader.position() == (1, 3)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)

    def test_refresh_follows_appends_incrementally(self, store):
        with open_reader(store._dir) as reader:
            for i in (1, 2):
                assert store.apply(unit_tx(i)).applied
            result = reader.refresh()
            assert result.advanced
            assert result.frames_replayed == 2
            assert not result.rebootstrapped
            assert reader.position() == (1, 2)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)

    def test_refresh_noop_when_current(self, store):
        with open_reader(store._dir) as reader:
            result = reader.refresh()
            assert not result.advanced
            assert result.frames_replayed == 0
            assert result.bytes_scanned == 0

    def test_refresh_cost_is_tail_only(self, store):
        """The second refresh reads only the bytes appended since the
        first — not the whole journal (the O(|Δ|) contract)."""
        with open_reader(store._dir) as reader:
            for i in (1, 2, 3):
                assert store.apply(unit_tx(i)).applied
            first = reader.refresh()
            assert store.apply(unit_tx(4)).applied
            second = reader.refresh()
            assert second.frames_replayed == 1
            assert 0 < second.bytes_scanned < first.bytes_scanned

    def test_refresh_follows_compaction(self, store):
        with open_reader(store._dir) as reader:
            assert store.apply(unit_tx(1)).applied
            store.compact()
            result = reader.refresh()
            assert result.rebootstrapped
            assert reader.position() == (2, 0)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)

    def test_refresh_across_compaction_and_more_appends(self, store):
        with open_reader(store._dir) as reader:
            assert store.apply(unit_tx(1)).applied
            store.compact()
            assert store.apply(unit_tx(2)).applied
            reader.refresh()
            assert reader.position() == (2, 1)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)

    def test_lag_reports_frames_and_generations(self, store):
        with open_reader(store._dir) as reader:
            assert reader.lag().current
            assert store.apply(unit_tx(1)).applied
            assert store.apply(unit_tx(2)).applied
            lag = reader.lag()
            assert (lag.generations, lag.frames) == (0, 2)
            store.compact()
            lag = reader.lag()
            assert lag.generations == 1
            reader.refresh()
            assert reader.lag().current

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            StoreReader.open(str(tmp_path / "nope"), whitepages_schema())

    def test_open_directory_without_store(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            StoreReader.open(str(empty), whitepages_schema())

    def test_closed_reader_refuses(self, store):
        reader = open_reader(store._dir)
        reader.close()
        reader.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            reader.refresh()
        with pytest.raises(StoreError, match="closed"):
            reader.search()


class TestStaleness:
    def test_vanished_snapshot_keeps_view_and_flags_stale(self, store):
        assert store.apply(unit_tx(1)).applied
        reader = open_reader(store._dir)
        before = serialize_ldif(reader.instance)
        os.unlink(os.path.join(store._dir, SNAPSHOT_FILE))
        result = reader.refresh()
        assert result.stale
        assert result.note
        # the old view stays fully serviceable
        assert serialize_ldif(reader.instance) == before
        assert reader.search(filter="(uid=member1)")
        reader.close()

    def test_strict_refresh_raises(self, store):
        reader = open_reader(store._dir)
        os.unlink(os.path.join(store._dir, SNAPSHOT_FILE))
        with pytest.raises(StaleReadError):
            reader.refresh(strict=True)
        reader.close()

    def test_torn_tail_is_not_stale(self, store):
        """A torn in-flight frame silently stops the reader at the last
        committed frame — graceful degradation, not an error."""
        assert store.apply(unit_tx(1)).applied
        journal = os.path.join(store._dir, JOURNAL_FILE)
        committed = open(journal, "rb").read()
        with open_reader(store._dir) as reader:
            assert store.apply(unit_tx(2)).applied
            full = open(journal, "rb").read()
            open(journal, "wb").write(full[: len(committed) + 30])  # tear tx2
            result = reader.refresh()
            assert not result.stale
            assert result.note and "torn" in result.note
            assert reader.position() == (1, 1)
            # restoring the tail resumes exactly where the reader stopped
            open(journal, "wb").write(full)
            result = reader.refresh()
            assert result.frames_replayed == 1
            assert reader.position() == (1, 2)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)


class TestManifest:
    def test_create_publishes_manifest(self, store):
        manifest = read_manifest(store._dir)
        assert manifest == Manifest(version=1, generation=1)

    def test_compact_bumps_version_and_generation(self, store):
        store.compact()
        store.compact()
        manifest = read_manifest(store._dir)
        assert manifest.version == 3
        assert manifest.generation == 3

    def test_corrupt_manifest_is_advisory(self, store):
        """A garbled manifest never blocks a reader: the snapshot header
        stays authoritative."""
        assert store.apply(unit_tx(1)).applied
        path = os.path.join(store._dir, MANIFEST_FILE)
        with open(path, "wb") as fh:
            fh.write(b'{"garbage": tru')
        assert read_manifest(store._dir) is None
        with open_reader(store._dir) as reader:
            assert reader.position() == (1, 1)
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)

    def test_missing_manifest_is_advisory(self, store):
        os.unlink(os.path.join(store._dir, MANIFEST_FILE))
        with open_reader(store._dir) as reader:
            assert reader.position() == (1, 0)

    def test_reopen_adopts_and_heals_manifest(self, tmp_path):
        store = DirectoryStore.create(
            str(tmp_path / "s"), whitepages_schema(), figure1_instance()
        )
        store.compact()  # version 2, generation 2
        store.close()
        os.unlink(os.path.join(str(tmp_path / "s"), MANIFEST_FILE))
        store = DirectoryStore.open(
            str(tmp_path / "s"), whitepages_schema(),
            registry=whitepages_registry(),
        )
        try:
            manifest = read_manifest(store._dir)
            assert manifest is not None
            assert manifest.generation == 2
        finally:
            store.close()

    def test_codec_round_trip_and_damage(self):
        manifest = Manifest(version=7, generation=3)
        data = encode_manifest(manifest)
        assert decode_manifest(data) == manifest
        with pytest.raises(ValueError):
            decode_manifest(data.replace(b'"generation": 3', b'"generation": 4'))
        with pytest.raises(ValueError):
            decode_manifest(b"[1, 2]")


class TestReadSurface:
    def test_search_delegates(self, store):
        assert store.apply(unit_tx(1)).applied
        with open_reader(store._dir) as reader:
            reader.refresh()
            hits = reader.search(filter="(uid=member1)")
            assert [entry.values("uid") for entry in hits] == [("member1",)]
            scoped = reader.search(base="ou=unit1,o=att", scope="sub")
            assert len(scoped) == 2

    def test_check_is_memoized_across_refresh(self, store):
        with open_reader(store._dir) as reader:
            report = reader.check()
            assert report.is_legal
            assert reader.is_legal()
            assert store.apply(unit_tx(1)).applied
            reader.refresh()
            baseline = reader.session.stats.copy()
            report = reader.check()
            assert report.is_legal
            delta = reader.session.stats.since(baseline)
            # only the delta's entries were content-checked cold
            assert delta.cache_hits > 0


class TestSidecarDiscipline:
    """Satellite: the ``verdicts.cache`` sidecar under the split."""

    def _sidecar(self, store_dir):
        return os.path.join(store_dir, SIDECAR_FILE)

    def test_reader_never_writes_sidecar(self, store):
        store.compact()  # writer publishes a sidecar
        path = self._sidecar(store._dir)
        assert os.path.exists(path)
        before = open(path, "rb").read()
        with open_reader(store._dir) as reader:
            assert reader.warm_start_verdicts > 0
            reader.check()
            reader.refresh()
        assert open(path, "rb").read() == before

    def test_reader_missing_sidecar_stays_missing(self, store):
        path = self._sidecar(store._dir)
        assert not os.path.exists(path)
        with open_reader(store._dir) as reader:
            assert reader.warm_start_verdicts == 0
            assert reader.check().is_legal
        assert not os.path.exists(path)

    def test_corrupt_sidecar_cold_start_never_wrong(self, store):
        store.compact()
        path = self._sidecar(store._dir)
        payload = json.loads(open(path).read())
        payload["verdicts"] = {"deadbeef": [["bogus", "violation", "x"]]}
        open(path, "w").write(json.dumps(payload))  # crc now stale
        with open_reader(store._dir) as reader:
            assert reader.warm_start_verdicts == 0
            assert reader.check().is_legal

    def test_stale_schema_digest_cold_start(self, store):
        store.compact()
        path = self._sidecar(store._dir)
        payload = json.loads(open(path).read())
        payload["schema"] = "0" * len(payload["schema"])
        open(path, "w").write(json.dumps(payload))
        with open_reader(store._dir) as reader:
            assert reader.warm_start_verdicts == 0
            assert reader.check().is_legal

    def test_compact_under_live_reader_keeps_memo_correct(self, store):
        """The writer compacting (and rewriting the sidecar) while a
        reader holds the old view must not corrupt the reader's warm
        memo: verdicts are content-keyed, so the reader's answers stay
        correct before and after it follows the compaction."""
        store.compact()
        with open_reader(store._dir) as reader:
            assert reader.warm_start_verdicts > 0
            assert store.apply(unit_tx(1)).applied
            store.compact()  # rewrites snapshot AND sidecar under the reader
            assert reader.check().is_legal  # old view, warm memo: still right
            reader.refresh()
            assert serialize_ldif(reader.instance) == serialize_ldif(store.instance)
            assert reader.check().is_legal


class TestAdvisoryLock:
    """Satellite: typed lock errors with holder pid; readers don't lock."""

    def test_contended_writer_gets_typed_error_with_pid(self, store):
        with pytest.raises(StoreLockedError) as excinfo:
            DirectoryStore.open(
                store._dir, whitepages_schema(), registry=whitepages_registry()
            )
        assert excinfo.value.holder_pid == os.getpid()
        assert f"pid {os.getpid()}" in str(excinfo.value)

    def test_legacy_lock_file_without_pid(self, store):
        # Old stores have an empty lock file: the error still types
        # correctly, with holder_pid=None.
        lock_path = os.path.join(store._dir, "lock")
        handle = store._lock_handle
        handle.seek(0)
        handle.truncate()
        handle.flush()
        assert open(lock_path).read() == ""
        with pytest.raises(StoreLockedError) as excinfo:
            DirectoryStore.open(
                store._dir, whitepages_schema(), registry=whitepages_registry()
            )
        assert excinfo.value.holder_pid is None

    def test_readers_do_not_take_the_lock(self, store):
        """Any number of readers coexist with the live writer, and a
        writer can open while readers are attached."""
        readers = [open_reader(store._dir) for _ in range(3)]
        try:
            assert store.apply(unit_tx(1)).applied  # writer still writes
            for reader in readers:
                reader.refresh()
                assert reader.position() == (1, 1)
        finally:
            for reader in readers:
                reader.close()

    def test_writer_opens_while_reader_attached(self, tmp_path):
        path = str(tmp_path / "s")
        DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        ).close()
        with open_reader(path):
            # the reader holds no lock, so the writer's open succeeds
            store = DirectoryStore.open(
                path, whitepages_schema(), registry=whitepages_registry()
            )
            store.close()

    def test_unopenable_lock_file_is_typed(self, tmp_path):
        path = str(tmp_path / "s")
        DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        ).close()
        lock_path = os.path.join(path, "lock")
        os.chmod(lock_path, 0o000)
        if os.access(lock_path, os.W_OK):  # pragma: no cover
            pytest.skip("running as a user that ignores file modes, cannot test")
        try:
            with pytest.raises(StoreLockedError):
                DirectoryStore.open(
                    path, whitepages_schema(), registry=whitepages_registry()
                )
        finally:
            os.chmod(lock_path, 0o644)
