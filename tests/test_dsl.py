"""Tests for the bounding-schema DSL (parser and serializer)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.errors import DslError
from repro.schema.dsl import parse_dsl, serialize_dsl
from repro.schema.elements import ForbiddenEdge, RequiredEdge
from repro.workloads import den_schema, random_schema, whitepages_schema

EXAMPLE = """
# a comment
class person
class researcher extends person
class orgUnit
auxiliary online
allow person: online

attributes person: required name, uid; allowed phone
attributes orgUnit: required ou

require class person, orgUnit
require orgUnit ->> person
require researcher <- orgUnit    # every researcher sits in a unit
forbid person -> top
key uid
single-valued ssn
"""


class TestParser:
    def test_full_example(self):
        schema = parse_dsl(EXAMPLE)
        assert schema.class_schema.is_core("researcher")
        assert schema.class_schema.parent("researcher") == "person"
        assert schema.class_schema.is_auxiliary("online")
        assert schema.class_schema.aux("person") == {"online"}
        assert schema.attribute_schema.required("person") == {"name", "uid"}
        assert schema.attribute_schema.allowed("person") == {"name", "uid", "phone"}
        assert schema.structure_schema.required_classes == {"person", "orgUnit"}
        assert RequiredEdge(Axis.DESCENDANT, "orgUnit", "person") in (
            schema.structure_schema.required_edges
        )
        assert RequiredEdge(Axis.PARENT, "researcher", "orgUnit") in (
            schema.structure_schema.required_edges
        )
        assert ForbiddenEdge(Axis.CHILD, "person", "top") in (
            schema.structure_schema.forbidden_edges
        )
        assert schema.extras is not None
        assert schema.extras.key_attributes == {"uid"}
        assert "ssn" in schema.extras.single_valued_attributes

    def test_forward_references_allowed(self):
        schema = parse_dsl("class researcher extends person\nclass person\n")
        assert schema.class_schema.parent("researcher") == "person"

    def test_unresolvable_parent(self):
        with pytest.raises(DslError, match="unresolvable"):
            parse_dsl("class a extends ghost\n")

    def test_unknown_directive(self):
        with pytest.raises(DslError, match="unknown directive"):
            parse_dsl("frobnicate everything\n")

    @pytest.mark.parametrize("bad", [
        "class\n",
        "auxiliary\n",
        "allow person\n",
        "require a => b\n",
        "forbid a <- b\n",
        "attributes person: mandatory x\n",
        "require class a,,b\n",
    ])
    def test_malformed_lines(self, bad):
        with pytest.raises(DslError):
            parse_dsl("class person\n" + bad)

    def test_forbid_upward_rejected(self):
        with pytest.raises(DslError, match="forbid supports"):
            parse_dsl("class a\nclass b\nforbid a <<- b\n")

    def test_duplicate_attributes_block_rejected(self):
        with pytest.raises(DslError, match="twice"):
            parse_dsl("class a\nattributes a: required x\nattributes a: required y\n")

    def test_validation_errors_propagate(self):
        with pytest.raises(DslError) as excinfo:
            parse_dsl("attributes ghost: required x\n")
        assert "ghost" in str(excinfo.value) or isinstance(
            excinfo.value.__cause__, Exception
        )


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [whitepages_schema, den_schema])
    def test_workload_schemas(self, factory):
        schema = factory()
        text = serialize_dsl(schema)
        assert serialize_dsl(parse_dsl(text)) == text

    def test_extras_roundtrip(self):
        schema = whitepages_schema(extras=True)
        text = serialize_dsl(schema)
        reparsed = parse_dsl(text)
        assert reparsed.extras is not None
        assert reparsed.extras.key_attributes == {"uid"}

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_schemas(self, seed):
        schema = random_schema(seed=seed, mode="any")
        text = serialize_dsl(schema)
        assert serialize_dsl(parse_dsl(text)) == text

    def test_roundtrip_preserves_consistency_verdict(self):
        from repro.consistency import check_consistency
        from repro.workloads import den_schema_overconstrained

        schema = den_schema_overconstrained()
        reparsed = parse_dsl(serialize_dsl(schema))
        assert check_consistency(schema).consistent == check_consistency(
            reparsed
        ).consistent
