"""Cross-module property tests: the invariants that tie the paper's
three algorithm families together.

Each test here spans at least two subsystems — these are the properties
a reviewer would check to believe the reproduction as a whole.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.consistency.checker import check_consistency
from repro.consistency.engine import close
from repro.ldif import parse_ldif, serialize_ldif
from repro.legality.checker import LegalityChecker
from repro.query.evaluator import QueryEvaluator
from repro.query.optimizer import SchemaAwareOptimizer
from repro.query.translate import translate_element
from repro.schema.discovery import discover_schema
from repro.updates.incremental import IncrementalChecker
from repro.workloads import (
    corrupt,
    figure1_instance,
    generate_whitepages,
    random_forest,
    random_insertions,
    random_schema,
    whitepages_schema,
)


class TestLegalityPipeline:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_ldif_roundtrip_preserves_legality_verdict(self, seed):
        """Serialization never changes what the checker sees."""
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed % 7)
        if seed % 2:
            corrupt(instance, schema, seed=seed)
        checker = LegalityChecker(schema)
        direct = checker.check(instance)
        roundtripped = checker.check(
            parse_ldif(serialize_ldif(instance), attributes=instance.attributes)
        )
        assert direct.is_legal == roundtripped.is_legal
        assert sorted(v.kind for v in direct) == sorted(
            v.kind for v in roundtripped
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_three_structure_checkers_agree(self, seed):
        """Query reduction ≡ naive pairwise ≡ direct Definition 2.6
        semantics, on arbitrary (often illegal) forests."""
        from repro.legality.structure import (
            NaiveStructureChecker,
            QueryStructureChecker,
        )

        schema = random_schema(n_classes=4, n_required=3, n_forbidden=2,
                               seed=seed, mode="any")
        instance = random_forest(
            n_entries=30,
            labels=sorted(schema.class_schema.core_classes() - {"top"}),
            seed=seed,
        )
        structure = schema.structure_schema
        by_query = QueryStructureChecker(structure).is_legal(instance)
        by_naive = NaiveStructureChecker(structure).is_legal(instance)
        by_semantics = all(
            e.is_satisfied(instance) for e in structure.elements()
        )
        assert by_query == by_naive == by_semantics


class TestUpdateConsistencyInterplay:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_guarded_directory_is_always_legal(self, seed):
        """Invariant maintenance: whatever mix of accepted/rejected
        updates, the guarded instance stays legal."""
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed % 5)
        guard = IncrementalChecker(schema, instance)
        checker = LegalityChecker(schema)
        for parent, delta in random_insertions(instance, count=4, seed=seed):
            guard.try_insert(parent, delta)
            assert checker.is_legal(instance)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_closure_facts_hold_on_guarded_instances(self, seed):
        """Theorem 5.1 meets Section 4: derived schema elements keep
        holding as the instance evolves under the guard."""
        schema = whitepages_schema()
        closure = close(schema.all_elements())
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed % 5)
        guard = IncrementalChecker(schema, instance)
        for parent, delta in random_insertions(instance, count=3, seed=seed):
            guard.try_insert(parent, delta)
        for fact in closure.facts:
            assert fact.is_satisfied(instance), f"{fact} violated"


class TestOptimizerSoundness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_folds_preserve_results_on_legal_instances(self, seed):
        """Every Figure 4 query, optimized against the schema, returns
        the same (empty) result on legal instances."""
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed % 7)
        optimizer = SchemaAwareOptimizer(schema)
        evaluator = QueryEvaluator(instance)
        for element in schema.structure_schema.relationship_elements():
            query = translate_element(element).query
            folded = optimizer.optimize(query).query
            assert evaluator.evaluate(folded) == evaluator.evaluate(query)


class TestDiscoveryClosesTheLoop:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_discover_validate_consistency_witness(self, seed):
        """The full loop: generate → discover → the discovered schema
        accepts its source, passes the consistency check, and its
        synthesized witness is legal under it."""
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=2, seed=seed % 9)
        schema = discover_schema(instance).schema
        assert LegalityChecker(schema).is_legal(instance)
        result = check_consistency(schema, synthesize=True)
        assert result.consistent
        assert result.witness is not None, result.witness_error
        assert LegalityChecker(schema).is_legal(result.witness)


class TestFigure1Anchors:
    """Deterministic anchors a reviewer can eyeball."""

    def test_paper_worked_examples_all_hold(self):
        schema = whitepages_schema()
        instance = figure1_instance()
        # Section 2: the instance lies within the bounds
        assert LegalityChecker(schema).is_legal(instance)
        # Section 3.2: Q1/Q2 empty, Q3 non-empty (via the reduction)
        for element in schema.structure_schema.relationship_elements():
            assert translate_element(element).is_legal(instance)
        # Section 5: the schema is consistent with a witness
        result = check_consistency(schema, synthesize=True)
        assert result.consistent and result.witness is not None
