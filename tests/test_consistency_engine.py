"""Engine-level tests: the paper's Section 5 examples, proofs, and the
soundness property (Theorem 5.1) on random legal instances."""

from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.consistency.engine import close
from repro.legality.checker import LegalityChecker
from repro.schema.elements import (
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    Subclass,
)
from repro.workloads import figure1_instance, whitepages_schema

CH, PA, DE, AN = Axis.CHILD, Axis.PARENT, Axis.DESCENDANT, Axis.ANCESTOR


class TestSection51Cycles:
    def test_simple_cycle_inconsistent(self):
        """c1□, c1 → c2, c2 →→ c1 entails no finite legal instance."""
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(CH, "c1", "c2"),
            RequiredEdge(DE, "c2", "c1"),
        ])
        assert not closure.consistent

    def test_footnote3_without_required_class(self):
        """Footnote 3: the two edges alone are satisfiable (by instances
        with no c1/c2 entries)."""
        closure = close([
            RequiredEdge(CH, "c1", "c2"),
            RequiredEdge(DE, "c2", "c1"),
        ])
        assert closure.consistent
        assert closure.empty_classes() == {"c1", "c2"}

    def test_subclass_interaction_cycle(self):
        """The Section 5.1 example: no cycle within the structure schema
        alone, but one arises through the class hierarchy."""
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(CH, "c2", "c3"),
            RequiredEdge(DE, "c4", "c5"),
            Subclass("c1", "c2"),
            Subclass("c3", "c4"),
            Subclass("c5", "c1"),
        ])
        assert not closure.consistent

    def test_subclass_cycle_without_hierarchy_is_consistent(self):
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(CH, "c2", "c3"),
            RequiredEdge(DE, "c4", "c5"),
        ])
        assert closure.consistent

    def test_mutual_parent_requirement_inconsistent(self):
        """Every c1 needs a c2 parent and vice versa: an infinite upward
        chain — caught via ancestor transitivity + loop."""
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(PA, "c1", "c2"),
            RequiredEdge(PA, "c2", "c1"),
        ])
        assert not closure.consistent

    def test_desc_anc_exchange_is_consistent(self):
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(DE, "c1", "c2"),
            RequiredEdge(AN, "c2", "c1"),
        ])
        assert closure.consistent


class TestSection52Contradictions:
    def test_direct_contradiction(self):
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(DE, "c1", "c2"),
            ForbiddenEdge(DE, "c1", "c2"),
        ])
        assert not closure.consistent

    def test_contradiction_without_population_is_consistent(self):
        closure = close([
            RequiredEdge(DE, "c1", "c2"),
            ForbiddenEdge(DE, "c1", "c2"),
        ])
        assert closure.consistent
        assert "c1" in closure.empty_classes()

    def test_contradiction_through_class_hierarchy(self):
        """Forbidden at a superclass contradicts required at the
        subclass."""
        closure = close([
            RequiredClass("sub"),
            Subclass("sub", "sup"),
            RequiredEdge(DE, "sub", "x"),
            ForbiddenEdge(DE, "sup", "x"),
        ])
        assert not closure.consistent

    def test_leaf_class_cannot_require_children(self):
        """person ↛ top plus a required child of person is contradictory
        once persons must exist."""
        closure = close([
            RequiredClass("person"),
            ForbiddenEdge(CH, "person", "top"),
            RequiredEdge(CH, "person", "badge"),
        ])
        assert not closure.consistent

    def test_roots_cannot_require_parents(self):
        closure = close([
            RequiredClass("site"),
            ForbiddenEdge(CH, "top", "site"),  # sites are roots
            RequiredEdge(PA, "site", "region"),
        ])
        assert not closure.consistent


class TestClosureApi:
    def test_proof_is_none_when_consistent(self):
        closure = close([RequiredClass("a")])
        assert closure.proof_of_inconsistency() is None
        assert closure.consistent and bool(closure)

    def test_proof_tree_grounds_in_axioms(self):
        closure = close([
            RequiredClass("c1"),
            RequiredEdge(DE, "c1", "c2"),
            ForbiddenEdge(DE, "c1", "c2"),
        ])
        proof = closure.proof_of_inconsistency()
        assert proof is not None
        assert "[axiom]" in proof
        assert "∅ □" in proof

    def test_explain_underived_fact(self):
        closure = close([RequiredClass("a")])
        assert "not derived" in closure.explain(RequiredClass("zz"))

    def test_derivation_lookup_normalizes_disjoint(self):
        closure = close([Disjoint("z", "a")])
        assert Disjoint("a", "z") in closure
        assert Disjoint("z", "a") in closure

    def test_closure_is_deterministic(self):
        elements = [
            RequiredClass("c1"),
            RequiredEdge(CH, "c1", "c2"),
            RequiredEdge(DE, "c2", "c3"),
            ForbiddenEdge(DE, "c3", "c1"),
        ]
        first = close(elements)
        second = close(elements)
        assert set(first.facts) == set(second.facts)

    def test_assume_top_seeds_top_subsumption(self):
        closure = close([RequiredClass("a")], assume_top=True)
        assert Subclass("a", "top") in closure
        bare = close([RequiredClass("a")], assume_top=False)
        assert Subclass("a", "top") not in bare


class TestTheorem51Soundness:
    """Every derived fact holds on every legal instance (spot-checked on
    the white-pages schema and random instances)."""

    def test_derived_facts_hold_on_figure1(self):
        schema = whitepages_schema()
        instance = figure1_instance()
        assert LegalityChecker(schema).is_legal(instance)
        closure = close(schema.all_elements())
        assert closure.consistent
        for fact in closure.facts:
            assert fact.is_satisfied(instance), f"derived fact {fact} violated"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_derived_facts_hold_on_generated(self, seed):
        from repro.workloads import generate_whitepages

        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed)
        closure = close(schema.all_elements())
        for fact in closure.facts:
            assert fact.is_satisfied(instance), f"derived fact {fact} violated"
