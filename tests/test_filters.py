"""Unit tests for LDAP filter semantics."""

from repro.model.dn import parse_rdn
from repro.model.entry import Entry
from repro.query.filters import (
    TRUE_FILTER,
    And,
    Approx,
    Equals,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)


def person(**attrs):
    return Entry(
        parse_rdn("uid=test"),
        ["person", "top"],
        {k: v if isinstance(v, list) else [v] for k, v in attrs.items()},
    )


class TestEquals:
    def test_matches_some_value(self):
        e = person(mail=["a@x.com", "b@x.com"])
        assert Equals("mail", "b@x.com").matches(e)

    def test_no_match(self):
        assert not Equals("mail", "z@x.com").matches(person(mail="a@x.com"))

    def test_absent_attribute(self):
        assert not Equals("mail", "a@x.com").matches(person())

    def test_object_class_equality(self):
        assert Equals("objectClass", "person").matches(person())
        assert not Equals("objectClass", "router").matches(person())

    def test_string_form_matches_stored_int(self):
        assert Equals("age", "30").matches(person(age=[30]))

    def test_str(self):
        assert str(Equals("mail", "a@x.com")) == "(mail=a@x.com)"

    def test_str_escapes_specials(self):
        assert str(Equals("cn", "a*b")) == "(cn=a\\2ab)"


class TestPresent:
    def test_present(self):
        assert Present("mail").matches(person(mail="a@x.com"))

    def test_absent(self):
        assert not Present("mail").matches(person())

    def test_object_class_always_present(self):
        assert Present("objectClass").matches(person())

    def test_str(self):
        assert str(Present("mail")) == "(mail=*)"


class TestSubstring:
    def test_initial(self):
        assert Substring("mail", initial="laks").matches(person(mail="laks@x.com"))

    def test_final(self):
        assert Substring("mail", final="x.com").matches(person(mail="laks@x.com"))

    def test_any_parts_ordered(self):
        f = Substring("cn", any_parts=("a", "b"))
        assert f.matches(person(cn="xaybz"))
        assert not f.matches(person(cn="xbyaz"))

    def test_initial_and_final(self):
        f = Substring("cn", initial="ab", final="yz")
        assert f.matches(person(cn="ab--yz"))
        assert not f.matches(person(cn="ab--y"))

    def test_str(self):
        assert str(Substring("cn", initial="a", final="z")) == "(cn=a*z)"
        assert str(Substring("cn", any_parts=("m",))) == "(cn=*m*)"


class TestOrdering:
    def test_ge_numeric(self):
        assert GreaterOrEqual("age", 18).matches(person(age=[21]))
        assert not GreaterOrEqual("age", 30).matches(person(age=[21]))

    def test_le_numeric(self):
        assert LessOrEqual("age", 30).matches(person(age=[21]))

    def test_numeric_string_operand(self):
        assert GreaterOrEqual("age", "18").matches(person(age=[21]))

    def test_string_ordering(self):
        assert GreaterOrEqual("cn", "m").matches(person(cn="zeta"))
        assert not GreaterOrEqual("cn", "m").matches(person(cn="alpha"))

    def test_incomparable_never_matches(self):
        assert not GreaterOrEqual("age", "abc").matches(person(age=[21]))

    def test_str(self):
        assert str(GreaterOrEqual("age", 18)) == "(age>=18)"
        assert str(LessOrEqual("age", 65)) == "(age<=65)"


class TestApprox:
    def test_case_insensitive(self):
        assert Approx("cn", "LAKS lakshmanan").matches(person(cn="Laks Lakshmanan"))

    def test_whitespace_normalized(self):
        assert Approx("cn", "a  b").matches(person(cn="a b"))

    def test_str(self):
        assert str(Approx("cn", "x")) == "(cn~=x)"


class TestCombinators:
    def test_and(self):
        f = And((Present("mail"), Equals("objectClass", "person")))
        assert f.matches(person(mail="a@x.com"))
        assert not f.matches(person())

    def test_or(self):
        f = Or((Equals("cn", "x"), Present("mail")))
        assert f.matches(person(mail="a@x.com"))
        assert not f.matches(person())

    def test_not(self):
        assert Not(Present("mail")).matches(person())

    def test_empty_and_is_true(self):
        assert TRUE_FILTER.matches(person())

    def test_empty_or_is_false(self):
        assert not Or(()).matches(person())

    def test_operator_overloads(self):
        f = Present("mail") & ~Equals("cn", "x") | Present("uid")
        assert f.matches(person(uid="u"))

    def test_str_nested(self):
        f = And((Equals("a", "1"), Or((Present("b"), Not(Equals("c", "2"))))))
        assert str(f) == "(&(a=1)(|(b=*)(!(c=2))))"
