"""Unit tests for the shared Axis enum."""

from repro.axes import Axis


class TestAxis:
    def test_codes_match_query_syntax(self):
        assert Axis.CHILD.value == "c"
        assert Axis.PARENT.value == "p"
        assert Axis.DESCENDANT.value == "d"
        assert Axis.ANCESTOR.value == "a"

    def test_downward(self):
        assert Axis.CHILD.downward and Axis.DESCENDANT.downward
        assert not Axis.PARENT.downward and not Axis.ANCESTOR.downward

    def test_transitive(self):
        assert Axis.CHILD.transitive is Axis.DESCENDANT
        assert Axis.PARENT.transitive is Axis.ANCESTOR
        assert Axis.DESCENDANT.transitive is Axis.DESCENDANT
        assert Axis.ANCESTOR.transitive is Axis.ANCESTOR

    def test_inverse_is_involutive(self):
        for axis in Axis:
            assert axis.inverse.inverse is axis

    def test_inverse_pairs(self):
        assert Axis.CHILD.inverse is Axis.PARENT
        assert Axis.DESCENDANT.inverse is Axis.ANCESTOR

    def test_arrows_distinct(self):
        assert len({axis.arrow for axis in Axis}) == 4
