"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.ldif import dump_ldif, load_ldif
from repro.schema.dsl import dump_dsl
from repro.workloads import (
    den_schema_overconstrained,
    figure1_instance,
    whitepages_schema,
)


@pytest.fixture()
def paths(tmp_path):
    schema_path = tmp_path / "schema.dsl"
    data_path = tmp_path / "data.ldif"
    dump_dsl(whitepages_schema(), str(schema_path))
    dump_ldif(figure1_instance(), str(data_path))
    return str(schema_path), str(data_path), tmp_path


class TestValidate:
    def test_legal_instance_exits_zero(self, paths, capsys):
        schema, data, _ = paths
        assert main(["validate", "--schema", schema, "--data", data]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_illegal_instance_exits_one(self, paths, capsys):
        schema, data, tmp = paths
        instance = figure1_instance()
        instance.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class(
            "packetRouter"
        )
        bad = tmp / "bad.ldif"
        dump_ldif(instance, str(bad))
        assert main(["validate", "--schema", schema, "--data", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ILLEGAL" in out and "packetRouter" in out

    def test_naive_strategy(self, paths):
        schema, data, _ = paths
        assert main(["validate", "--schema", schema, "--data", data,
                     "--structure", "naive"]) == 0


class TestConsistency:
    def test_consistent_schema(self, paths, capsys):
        schema, _, _ = paths
        assert main(["consistency", "--schema", schema]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_inconsistent_schema_with_proof(self, tmp_path, capsys):
        path = tmp_path / "bad.dsl"
        dump_dsl(den_schema_overconstrained(), str(path))
        assert main(["consistency", "--schema", str(path), "--proof"]) == 1
        out = capsys.readouterr().out
        assert "INCONSISTENT" in out and "∅ □" in out

    def test_witness_written(self, paths, capsys):
        schema, _, tmp = paths
        witness = tmp / "witness.ldif"
        assert main(["consistency", "--schema", schema,
                     "--witness", str(witness)]) == 0
        instance = load_ldif(str(witness))
        assert len(instance) > 0


class TestQuery:
    def test_filter_prints_dns(self, paths, capsys):
        _, data, _ = paths
        assert main(["query", "--data", data,
                     "--filter", "(objectClass=orgUnit)"]) == 0
        out = capsys.readouterr().out
        assert "ou=attLabs,o=att" in out
        assert "ou=databases,ou=attLabs,o=att" in out

    def test_compound_filter(self, paths, capsys):
        _, data, _ = paths
        main(["query", "--data", data,
              "--filter", "(&(objectClass=person)(mail=*))"])
        out = capsys.readouterr().out
        assert "uid=laks" in out and "uid=suciu" not in out

    def test_hierarchical_query(self, paths, capsys):
        _, data, _ = paths
        assert main(["query", "--data", data, "--hquery",
                     "(d (objectClass=orgUnit) (objectClass=researcher))"]) == 0
        out = capsys.readouterr().out
        assert "ou=attLabs,o=att" in out and "ou=databases" in out

    def test_filter_and_hquery_mutually_exclusive(self, paths):
        _, data, _ = paths
        with pytest.raises(SystemExit):
            main(["query", "--data", data, "--filter", "(a=1)",
                  "--hquery", "(objectClass=x)"])


class TestTranslate:
    def test_shows_figure4_queries(self, paths, capsys):
        schema, _, _ = paths
        assert main(["translate", "--schema", schema]) == 0
        out = capsys.readouterr().out
        assert "σ⁻" in out and "(objectClass=orgGroup)" in out


class TestApply:
    CHANGES = """\
dn: ou=theory,ou=attLabs,o=att
changetype: add
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: theory

dn: uid=nina,ou=theory,ou=attLabs,o=att
changetype: add
objectClass: person
objectClass: top
uid: nina
name: nina novak
"""

    BAD_CHANGES = """\
dn: ou=empty,o=att
changetype: add
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: empty
"""

    def test_legal_changes_applied(self, paths, capsys):
        schema, data, tmp = paths
        changes = tmp / "changes.ldif"
        changes.write_text(self.CHANGES)
        out = tmp / "updated.ldif"
        code = main(["apply", "--schema", schema, "--data", data,
                     "--changes", str(changes), "--out", str(out)])
        assert code == 0
        assert "APPLIED" in capsys.readouterr().out
        updated = load_ldif(str(out))
        assert updated.find("uid=nina,ou=theory,ou=attLabs,o=att") is not None
        # and the result validates
        assert main(["validate", "--schema", schema, "--data", str(out)]) == 0

    def test_illegal_changes_rejected(self, paths, capsys):
        schema, data, tmp = paths
        changes = tmp / "bad-changes.ldif"
        changes.write_text(self.BAD_CHANGES)
        code = main(["apply", "--schema", schema, "--data", data,
                     "--changes", str(changes)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out and "orgGroup →→ person" in out


class TestRepair:
    def test_repair_suggestions_printed(self, tmp_path, capsys):
        path = tmp_path / "bad.dsl"
        dump_dsl(den_schema_overconstrained(), str(path))
        code = main(["consistency", "--schema", str(path), "--repair"])
        assert code == 1
        out = capsys.readouterr().out
        assert "repair suggestions" in out
        assert "top ↛ policy" in out


class TestDiscover:
    def test_discovered_schema_validates_its_source(self, paths):
        _, data, tmp = paths
        out = tmp / "discovered.dsl"
        assert main(["discover", "--data", data, "--out", str(out)]) == 0
        assert main(["validate", "--schema", str(out), "--data", data]) == 0
        assert main(["consistency", "--schema", str(out)]) == 0

    def test_discover_to_stdout(self, paths, capsys):
        _, data, _ = paths
        assert main(["discover", "--data", data]) == 0
        out = capsys.readouterr().out
        assert "require orgGroup ->> person" in out


class TestGenerate:
    @pytest.mark.parametrize("workload", ["whitepages", "den"])
    def test_generate_validates(self, tmp_path, workload):
        out_ldif = tmp_path / "gen.ldif"
        out_dsl = tmp_path / "gen.dsl"
        assert main(["generate", "--workload", workload, "--scale", "1",
                     "--out", str(out_ldif), "--schema-out", str(out_dsl)]) == 0
        assert main(["validate", "--schema", str(out_dsl),
                     "--data", str(out_ldif)]) == 0

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--workload", "whitepages", "--scale", "1"]) == 0
        assert "dn: o=org0" in capsys.readouterr().out


class TestFsckAndRecover:
    @pytest.fixture()
    def store_dir(self, tmp_path, paths):
        from repro.store import DirectoryStore
        from repro.updates.operations import UpdateTransaction

        schema, _, _ = paths
        path = str(tmp_path / "store")
        with DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        ) as store:
            tx = UpdateTransaction().insert(
                "ou=cliunit,o=att", ["orgUnit", "orgGroup", "top"],
                {"ou": ["cliunit"]},
            ).insert(
                "uid=cli,ou=cliunit,o=att", ["person", "top"],
                {"uid": ["cli"], "name": ["c li"]},
            )
            assert store.apply(tx).applied
        return schema, path

    def test_fsck_healthy_store(self, store_dir, capsys):
        schema, path = store_dir
        assert main(["fsck", path, "--schema", schema]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out
        assert "generation: 1" in out
        assert "committed records: 1" in out
        assert "quarantined bytes: 0" in out
        assert "legality: legal" in out
        assert "index sidecar: present" in out

    def test_fsck_index_sidecar_health_never_changes_exit_code(
        self, store_dir, capsys
    ):
        import os

        from repro.store.index import index_sidecar_path

        schema, path = store_dir
        sidecar = index_sidecar_path(path)
        os.unlink(sidecar)
        assert main(["fsck", path, "--schema", schema]) == 0
        out = capsys.readouterr().out
        assert "index sidecar: missing" in out and "HEALTHY" in out
        with open(sidecar, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert main(["fsck", path, "--schema", schema]) == 0
        out = capsys.readouterr().out
        assert "index sidecar: corrupt" in out and "HEALTHY" in out

    def test_fsck_reports_torn_tail(self, store_dir, capsys):
        import os

        from repro.store.wal import encode_record

        schema, path = store_dir
        frame = encode_record(2, 1, "dn: ou=torn,o=att\nchangetype: add\n")
        with open(os.path.join(path, "journal.ldif"), "ab") as fh:
            fh.write(frame[: len(frame) // 2])
        assert main(["fsck", path, "--schema", schema]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "tail: torn" in out
        # fsck is a dry run: the journal still holds the torn bytes
        assert main(["fsck", path]) == 1

    def test_fsck_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert main(["fsck", missing]) == 1
        assert "fsck:" in capsys.readouterr().out

    def test_recover_repairs_torn_tail(self, store_dir, capsys):
        import os

        from repro.store.wal import encode_record

        schema, path = store_dir
        frame = encode_record(2, 1, "dn: ou=torn,o=att\nchangetype: add\n")
        with open(os.path.join(path, "journal.ldif"), "ab") as fh:
            fh.write(frame[: len(frame) // 3])
        assert main(["recover", path, "--schema", schema]) == 0
        assert "REPAIRED" in capsys.readouterr().out
        assert os.path.exists(os.path.join(path, "journal.quarantine"))
        assert main(["fsck", path, "--schema", schema]) == 0
        assert "HEALTHY" in capsys.readouterr().out

    def test_recover_corruption_needs_force(self, store_dir, capsys):
        import os

        schema, path = store_dir
        with open(os.path.join(path, "journal.ldif"), "a") as fh:
            fh.write("this is not a wal frame\n")
        assert main(["recover", path, "--schema", schema]) == 1
        assert "STILL DAMAGED" in capsys.readouterr().out
        assert main(["recover", path, "--schema", schema, "--force"]) == 0
        assert "REPAIRED" in capsys.readouterr().out
        assert main(["fsck", path, "--schema", schema]) == 0


class TestCheck:
    def test_legal_instance_exits_zero(self, paths, capsys):
        schema, data, _ = paths
        assert main(["check", "--schema", schema, "--data", data]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_illegal_instance_exits_one(self, paths, capsys):
        schema, data, tmp = paths
        instance = figure1_instance()
        instance.entry("uid=suciu,ou=databases,ou=attLabs,o=att").add_class(
            "packetRouter"
        )
        bad = tmp / "bad.ldif"
        dump_ldif(instance, str(bad))
        assert main(["check", "--schema", schema, "--data", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ILLEGAL" in out and "packetRouter" in out

    def test_profile_prints_engine_counters(self, paths, capsys):
        schema, data, _ = paths
        assert main(["check", "--schema", schema, "--data", data,
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "entries content-checked" in out
        assert "wall time" in out

    def test_jobs_flag_parallel_verdict(self, paths, capsys):
        schema, data, _ = paths
        assert main(["check", "--schema", schema, "--data", data,
                     "--jobs", "2"]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_jobs_zero_means_cpu_count(self, paths, capsys):
        schema, data, _ = paths
        assert main(["check", "--schema", schema, "--data", data,
                     "--jobs", "0", "--profile"]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_naive_structure_strategy(self, paths):
        schema, data, _ = paths
        assert main(["check", "--schema", schema, "--data", data,
                     "--structure", "naive"]) == 0


class TestCheckStore:
    @pytest.fixture()
    def live_store(self, tmp_path, paths):
        from repro.store import DirectoryStore
        from repro.updates.operations import UpdateTransaction

        schema, _, _ = paths
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        tx = UpdateTransaction().insert(
            "ou=cliunit,o=att", ["orgUnit", "orgGroup", "top"],
            {"ou": ["cliunit"]},
        ).insert(
            "uid=cli,ou=cliunit,o=att", ["person", "top"],
            {"uid": ["cli"], "name": ["c li"]},
        )
        assert store.apply(tx).applied
        yield schema, path, store
        store.close()

    def test_check_store_against_live_writer(self, live_store, capsys):
        schema, path, _store = live_store
        # the writer is still open (holds the lock): the reader path
        # must work anyway
        assert main(["check", "--schema", schema, "--store", path]) == 0
        out = capsys.readouterr().out
        assert "[gen 1 seq 1] LEGAL" in out

    def test_check_store_follow_sees_new_commits(self, live_store, capsys):
        from repro.updates.operations import UpdateTransaction

        schema, path, store = live_store
        tx = UpdateTransaction().insert(
            "ou=cliunit2,o=att", ["orgUnit", "orgGroup", "top"],
            {"ou": ["cliunit2"]},
        ).insert(
            "uid=cli2,ou=cliunit2,o=att", ["person", "top"],
            {"uid": ["cli2"], "name": ["c li2"]},
        )
        assert store.apply(tx).applied
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow", "--iterations", "2",
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[gen 1 seq 2] LEGAL" in out

    def test_check_store_profile(self, live_store, capsys):
        schema, path, _store = live_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--profile"]) == 0
        assert "entries content-checked" in capsys.readouterr().out

    @pytest.mark.parametrize("interval", ["0", "-1", "-0.5"])
    def test_follow_rejects_non_positive_interval(
        self, live_store, capsys, interval
    ):
        # interval <= 0 would busy-spin the CPU between refreshes; the
        # command must refuse it before touching the store.
        schema, path, _store = live_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow", "--interval", interval,
                     "--iterations", "1"]) == 2
        err = capsys.readouterr().err
        assert "--interval must be positive" in err

    def test_non_positive_interval_ok_without_follow(self, live_store, capsys):
        # Without --follow the interval is never used, so a bogus value
        # must not break a one-shot check.
        schema, path, _store = live_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--interval", "0"]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_data_and_store_mutually_exclusive(self, live_store, paths):
        schema, data, _ = paths
        _, path, _store = live_store
        with pytest.raises(SystemExit):
            main(["check", "--schema", schema, "--data", data,
                  "--store", path])


class TestFsckReadOnly:
    @pytest.fixture()
    def live_store(self, tmp_path, paths):
        from repro.store import DirectoryStore

        schema, _, _ = paths
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance()
        )
        yield schema, path, store
        store.close()

    def test_read_only_inspection_of_locked_store(self, live_store, capsys):
        schema, path, _store = live_store
        assert main(["fsck", path, "--schema", schema, "--read-only"]) == 0
        out = capsys.readouterr().out
        assert "READ-ONLY VIEW CONSISTENT" in out
        assert "view: generation 1, seq 0" in out
        assert "lag: current" in out

    def test_read_only_requires_schema(self, live_store, capsys):
        _, path, _store = live_store
        assert main(["fsck", path, "--read-only"]) == 2
        assert "requires --schema" in capsys.readouterr().err

    def test_read_only_reports_lag_against_live_writer(
        self, live_store, capsys
    ):
        from repro.updates.operations import UpdateTransaction

        schema, path, store = live_store
        tx = UpdateTransaction().insert(
            "ou=fsckunit,o=att", ["orgUnit", "orgGroup", "top"],
            {"ou": ["fsckunit"]},
        ).insert(
            "uid=fsck,ou=fsckunit,o=att", ["person", "top"],
            {"uid": ["fsck"], "name": ["f sck"]},
        )
        assert store.apply(tx).applied
        assert main(["fsck", path, "--schema", schema, "--read-only"]) == 0
        assert "view: generation 1, seq 1" in capsys.readouterr().out

    def test_read_only_touches_nothing(self, live_store, tmp_path):
        import os

        schema, path, store = live_store
        store.compact()  # manifest + sidecar on disk too
        before = {
            name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))
            if os.path.isfile(os.path.join(path, name))
        }
        assert main(["fsck", path, "--schema", schema, "--read-only"]) == 0
        after = {
            name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))
            if os.path.isfile(os.path.join(path, name))
        }
        assert after == before


class TestFrontdoorCli:
    """The read-balancing proxy's CLI surface: argument validation and
    ``fsck --frontdoor`` topology reporting (the running-daemon drain
    path is exercised end to end in ``tests/test_frontdoor.py``)."""

    def test_member_addresses_validated(self, capsys):
        assert main(["frontdoor", "--primary", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert main(["frontdoor", "--primary", "127.0.0.1:3890",
                     "--replica", "badport:x"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_fsck_requires_directory_or_frontdoor(self, capsys):
        assert main(["fsck"]) == 2
        assert "store directory" in capsys.readouterr().err

    def test_fsck_frontdoor_address_validated(self, capsys):
        assert main(["fsck", "--frontdoor", "nope"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_fsck_frontdoor_unreachable(self, capsys):
        # port 1 is privileged and never bound in the test environment
        assert main(["fsck", "--frontdoor", "127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_fsck_frontdoor_reports_topology(self, tmp_path, capsys):
        import asyncio
        import threading

        from repro.server import DirectoryServer, FrontDoor
        from repro.store import DirectoryStore
        from repro.workloads import whitepages_registry

        path = str(tmp_path / "store")
        DirectoryStore.create(
            path, whitepages_schema(), figure1_instance(),
            whitepages_registry(),
        ).close()
        ready = threading.Event()
        done = threading.Event()
        holder = {}

        def serve():
            async def run():
                server = DirectoryServer(
                    path, whitepages_schema(), whitepages_registry(),
                    port=0,
                )
                await server.start()
                door = FrontDoor(f"127.0.0.1:{server.port}", [])
                await door.start()
                holder["port"] = door.port
                ready.set()
                while not done.is_set():
                    await asyncio.sleep(0.05)
                await door.stop(drain=False)
                await server.stop(drain=False)

            asyncio.run(run())

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            assert ready.wait(30), "topology thread never came up"
            code = main(
                ["fsck", "--frontdoor", f"127.0.0.1:{holder['port']}"]
            )
            out = capsys.readouterr().out
            assert code == 0, out
            assert "TOPOLOGY SERVING" in out
            assert "primary" in out and "alive" in out
        finally:
            done.set()
            thread.join(30)
