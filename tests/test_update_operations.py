"""Unit tests for update operations and transaction decomposition
(Section 4.1, Theorem 4.1)."""

import pytest

from repro.errors import UpdateError
from repro.updates.operations import DeleteEntry, InsertEntry, UpdateTransaction
from repro.updates.transactions import apply_subtree_update, decompose
from repro.workloads import figure1_instance


class TestOperations:
    def test_insert_make(self):
        op = InsertEntry.make("ou=x,o=att", ["orgUnit", "top"], {"ou": ["x"]})
        assert str(op.dn) == "ou=x,o=att"
        assert op.classes == ("orgUnit", "top")
        assert op.attribute_dict() == {"ou": ["x"]}
        assert str(op) == "insert ou=x,o=att"

    def test_delete_make(self):
        op = DeleteEntry.make("ou=x,o=att")
        assert str(op) == "delete ou=x,o=att"

    def test_transaction_builders(self):
        tx = UpdateTransaction().insert("o=a", ["top"]).delete("o=b")
        assert len(tx) == 2
        assert len(tx.insertions()) == 1
        assert len(tx.deletions()) == 1
        assert list(tx)

    def test_distinctness_enforced(self):
        tx = UpdateTransaction().insert("o=a", ["top"]).delete("o=a")
        with pytest.raises(UpdateError, match="distinct"):
            tx.validate()


class TestDecomposition:
    def test_single_insert_is_one_subtree(self, fig1):
        tx = UpdateTransaction().insert(
            "ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]}
        )
        steps = decompose(tx, fig1)
        assert len(steps) == 1
        assert steps[0].kind == "insert"
        assert str(steps[0].parent_dn) == "o=att"
        assert len(steps[0].subtree) == 1

    def test_chained_inserts_group_into_one_subtree(self, fig1):
        tx = (
            UpdateTransaction()
            .insert("ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
            .insert("uid=p1,ou=x,o=att", ["person", "top"],
                    {"uid": ["p1"], "name": ["p one"]})
            .insert("uid=p2,ou=x,o=att", ["person", "top"],
                    {"uid": ["p2"], "name": ["p two"]})
        )
        steps = decompose(tx, fig1)
        assert len(steps) == 1
        assert len(steps[0].subtree) == 3

    def test_order_of_operations_is_irrelevant(self, fig1):
        """Theorem 4.1: grouping ignores the interleaving."""
        tx = (
            UpdateTransaction()
            .insert("uid=p1,ou=x,o=att", ["person", "top"],
                    {"uid": ["p1"], "name": ["p"]})
            .insert("ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
        )
        steps = decompose(tx, fig1)
        assert len(steps) == 1
        assert len(steps[0].subtree) == 2

    def test_disjoint_inserts_stay_separate(self, fig1):
        tx = (
            UpdateTransaction()
            .insert("ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
            .insert("ou=y,ou=attLabs,o=att", ["orgUnit", "orgGroup", "top"],
                    {"ou": ["y"]})
        )
        steps = decompose(tx, fig1)
        assert len(steps) == 2
        assert {str(s.parent_dn) for s in steps} == {"o=att", "ou=attLabs,o=att"}

    def test_insert_under_missing_parent_rejected(self, fig1):
        tx = UpdateTransaction().insert("ou=x,o=ghost", ["top"])
        with pytest.raises(UpdateError, match="no parent"):
            decompose(tx, fig1)

    def test_insert_under_deleted_parent_rejected(self, fig1):
        tx = (
            UpdateTransaction()
            .delete("uid=suciu,ou=databases,ou=attLabs,o=att")
            .insert("x=1,uid=suciu,ou=databases,ou=attLabs,o=att", ["top"])
        )
        with pytest.raises(UpdateError, match="deletes"):
            decompose(tx, fig1)

    def test_delete_leaf_is_one_subtree(self, fig1):
        tx = UpdateTransaction().delete("uid=suciu,ou=databases,ou=attLabs,o=att")
        steps = decompose(tx, fig1)
        assert len(steps) == 1
        assert steps[0].kind == "delete"

    def test_delete_whole_subtree_groups(self, fig1):
        tx = (
            UpdateTransaction()
            .delete("ou=databases,ou=attLabs,o=att")
            .delete("uid=laks,ou=databases,ou=attLabs,o=att")
            .delete("uid=suciu,ou=databases,ou=attLabs,o=att")
        )
        steps = decompose(tx, fig1)
        assert len(steps) == 1
        assert str(steps[0].root_dn) == "ou=databases,ou=attLabs,o=att"

    def test_partial_subtree_delete_rejected(self, fig1):
        tx = (
            UpdateTransaction()
            .delete("ou=databases,ou=attLabs,o=att")
            .delete("uid=laks,ou=databases,ou=attLabs,o=att")
            # suciu left behind
        )
        with pytest.raises(UpdateError, match="descendant"):
            decompose(tx, fig1)

    def test_delete_missing_target_rejected(self, fig1):
        tx = UpdateTransaction().delete("o=ghost")
        with pytest.raises(UpdateError, match="not in the instance"):
            decompose(tx, fig1)

    def test_insertions_come_before_deletions(self, fig1):
        tx = (
            UpdateTransaction()
            .delete("uid=suciu,ou=databases,ou=attLabs,o=att")
            .insert("ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
        )
        steps = decompose(tx, fig1)
        assert [s.kind for s in steps] == ["insert", "delete"]


class TestApplySubtreeUpdate:
    def test_equivalence_with_entrywise_application(self, fig1):
        """Applying the decomposition yields the same instance as
        applying single-entry operations in order (Theorem 4.1)."""
        tx = (
            UpdateTransaction()
            .insert("ou=x,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
            .insert("uid=p1,ou=x,o=att", ["person", "top"],
                    {"uid": ["p1"], "name": ["p"]})
            .delete("uid=armstrong,o=att")
        )
        via_subtrees = figure1_instance()
        for step in decompose(tx, via_subtrees):
            apply_subtree_update(via_subtrees, step)

        via_entries = figure1_instance()
        for op in tx:
            if isinstance(op, InsertEntry):
                via_entries.add_entry(
                    str(op.dn.parent()), op.dn.rdn, op.classes, op.attribute_dict()
                )
            else:
                via_entries.delete_entry(str(op.dn))

        from repro.ldif import serialize_ldif

        assert serialize_ldif(via_subtrees) == serialize_ldif(via_entries)
