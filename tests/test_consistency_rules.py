"""Per-rule tests for the inference system (Figures 6 and 7).

Each rule gets (a) a derivation test — minimal premises produce exactly
the rule's conclusion — and the reconstructed rules additionally get
(b) a semantic soundness argument exercised on a concrete instance.
"""

import pytest

from repro.axes import Axis
from repro.consistency.engine import close
from repro.consistency.rules import RULES
from repro.schema.elements import (
    EMPTY_CLASS,
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    Subclass,
)

CH, PA, DE, AN = Axis.CHILD, Axis.PARENT, Axis.DESCENDANT, Axis.ANCESTOR


def derives(premises, conclusion, rule_name=None):
    closure = close(premises, assume_top=False)
    if conclusion not in closure:
        return False
    if rule_name is not None:
        derivation = closure.derivation(conclusion)
        assert derivation is not None
        if derivation.rule != rule_name:
            # Another rule may legitimately derive it first; accept any
            # derivation but flag unexpected rule names for visibility.
            assert derivation.rule in RULES or derivation.rule == "axiom"
    return True


class TestFigure6Rules:
    @pytest.mark.parametrize("axis", [CH, DE, PA, AN])
    def test_nodes_and_edges(self, axis):
        assert derives(
            [RequiredClass("a"), RequiredEdge(axis, "a", "b")],
            RequiredClass("b"),
        )

    def test_path_child_desc(self):
        assert derives([RequiredEdge(CH, "a", "b")], RequiredEdge(DE, "a", "b"))

    def test_path_parent_anc(self):
        assert derives([RequiredEdge(PA, "a", "b")], RequiredEdge(AN, "a", "b"))

    def test_trans_desc(self):
        assert derives(
            [RequiredEdge(DE, "a", "b"), RequiredEdge(DE, "b", "c")],
            RequiredEdge(DE, "a", "c"),
        )

    def test_trans_anc(self):
        assert derives(
            [RequiredEdge(AN, "a", "b"), RequiredEdge(AN, "b", "c")],
            RequiredEdge(AN, "a", "c"),
        )

    def test_loop_desc(self):
        assert derives(
            [RequiredEdge(DE, "a", "a")], RequiredEdge(DE, "a", EMPTY_CLASS)
        )

    def test_loop_anc(self):
        assert derives(
            [RequiredEdge(AN, "a", "a")], RequiredEdge(AN, "a", EMPTY_CLASS)
        )

    def test_sub_reflexive_seeded(self):
        closure = close([RequiredClass("a")], assume_top=False)
        assert Subclass("a", "a") in closure

    def test_sub_transitivity(self):
        assert derives(
            [Subclass("a", "b"), Subclass("b", "c")], Subclass("a", "c")
        )

    @pytest.mark.parametrize("axis", [CH, DE, PA, AN])
    def test_source_specialization(self, axis):
        assert derives(
            [RequiredEdge(axis, "b", "t"), Subclass("a", "b")],
            RequiredEdge(axis, "a", "t"),
        )

    @pytest.mark.parametrize("axis", [CH, DE, PA, AN])
    def test_target_generalization(self, axis):
        assert derives(
            [RequiredEdge(axis, "s", "a"), Subclass("a", "b")],
            RequiredEdge(axis, "s", "b"),
        )

    def test_membership_through_subclass(self):
        assert derives([RequiredClass("a"), Subclass("a", "b")], RequiredClass("b"))


class TestFigure7Rules:
    def test_top_desc_child(self):
        assert derives(
            [RequiredEdge(DE, "a", "top")], RequiredEdge(CH, "a", "top")
        )

    def test_top_anc_parent(self):
        assert derives(
            [RequiredEdge(AN, "a", "top")], RequiredEdge(PA, "a", "top")
        )

    def test_top_forb_child_desc(self):
        assert derives(
            [ForbiddenEdge(CH, "a", "top")], ForbiddenEdge(DE, "a", "top")
        )

    def test_top_forb_root(self):
        assert derives(
            [ForbiddenEdge(CH, "top", "a")], ForbiddenEdge(DE, "top", "a")
        )

    def test_forb_desc_implies_forb_child(self):
        """Strengthening over the paper: the paper notes
        ``ci ↛↛ ck ⊨ ci ↛ ck`` holds semantically but is not derivable
        in *their* system (their incompleteness example).  We add the
        rule — sound, and it feeds the conflict rules."""
        assert derives([ForbiddenEdge(DE, "a", "b")], ForbiddenEdge(CH, "a", "b"))

    def test_conflict_desc(self):
        assert derives(
            [RequiredEdge(DE, "a", "b"), ForbiddenEdge(DE, "a", "b")],
            RequiredEdge(DE, "a", EMPTY_CLASS),
        )

    def test_conflict_child(self):
        assert derives(
            [RequiredEdge(CH, "a", "b"), ForbiddenEdge(CH, "a", "b")],
            RequiredEdge(DE, "a", EMPTY_CLASS),
        )

    def test_conflict_parent(self):
        assert derives(
            [RequiredEdge(PA, "a", "b"), ForbiddenEdge(CH, "b", "a")],
            RequiredEdge(AN, "a", EMPTY_CLASS),
        )

    def test_conflict_anc(self):
        assert derives(
            [RequiredEdge(AN, "a", "b"), ForbiddenEdge(DE, "b", "a")],
            RequiredEdge(AN, "a", EMPTY_CLASS),
        )

    @pytest.mark.parametrize("axis", [CH, DE])
    def test_forb_source_propagation(self, axis):
        assert derives(
            [ForbiddenEdge(axis, "b", "t"), Subclass("a", "b")],
            ForbiddenEdge(axis, "a", "t"),
        )

    @pytest.mark.parametrize("axis", [CH, DE])
    def test_forb_target_propagation(self, axis):
        assert derives(
            [ForbiddenEdge(axis, "s", "b"), Subclass("a", "b")],
            ForbiddenEdge(axis, "s", "a"),
        )

    def test_parenthood_derives_forbidden(self):
        assert derives(
            [
                RequiredEdge(PA, "i", "j"),
                ForbiddenEdge(DE, "k", "j"),
                Disjoint("j", "k"),
            ],
            ForbiddenEdge(DE, "k", "i"),
        )

    def test_ancestorhood_derives_forbidden(self):
        assert derives(
            [
                RequiredEdge(AN, "i", "j"),
                ForbiddenEdge(DE, "k", "j"),
                ForbiddenEdge(DE, "j", "k"),
                Disjoint("j", "k"),
            ],
            ForbiddenEdge(DE, "k", "i"),
        )

    def test_ancestorhood_needs_both_directions(self):
        closure = close(
            [
                RequiredEdge(AN, "i", "j"),
                ForbiddenEdge(DE, "k", "j"),
                Disjoint("j", "k"),
            ],
            assume_top=False,
        )
        assert ForbiddenEdge(DE, "k", "i") not in closure

    def test_unique_parent(self):
        assert derives(
            [
                RequiredEdge(PA, "i", "j"),
                RequiredEdge(PA, "i", "k"),
                Disjoint("j", "k"),
            ],
            RequiredEdge(AN, "i", EMPTY_CLASS),
        )

    def test_anc_exclusion(self):
        assert derives(
            [
                RequiredEdge(AN, "i", "j"),
                RequiredEdge(AN, "i", "k"),
                Disjoint("j", "k"),
                ForbiddenEdge(DE, "j", "k"),
                ForbiddenEdge(DE, "k", "j"),
            ],
            RequiredEdge(AN, "i", EMPTY_CLASS),
        )

    def test_child_parent_handshake(self):
        assert derives(
            [
                RequiredEdge(CH, "i", "j"),
                RequiredEdge(PA, "j", "k"),
                Disjoint("i", "k"),
            ],
            RequiredEdge(DE, "i", EMPTY_CLASS),
        )

    def test_child_parent_subsumption(self):
        """The required cj-child's parent is the ci-entry itself, so
        every ci-entry belongs to cj's required-parent class."""
        assert derives(
            [RequiredEdge(CH, "a", "b"), RequiredEdge(PA, "b", "c")],
            Subclass("a", "c"),
        )

    def test_child_anc_lift(self):
        """Discovered by differential testing (DESIGN.md): a required
        child's required ancestor, disjoint from the source, must sit
        strictly above the source."""
        assert derives(
            [
                RequiredEdge(CH, "a", "b"),
                RequiredEdge(AN, "b", "c"),
                Disjoint("a", "c"),
            ],
            RequiredEdge(AN, "a", "c"),
        )

    def test_child_anc_lift_detects_upward_regress(self):
        """k4 → k1, k1 ←← k2, k2 ← k4 forces an infinite upward chain
        once k2 is populated (the seed-837 family)."""
        closure = close([
            RequiredClass("k2"),
            RequiredEdge(CH, "k4", "k1"),
            RequiredEdge(AN, "k1", "k2"),
            RequiredEdge(PA, "k2", "k4"),
            Disjoint("k4", "k2"), Disjoint("k4", "k1"), Disjoint("k1", "k2"),
        ])
        assert not closure.consistent

    def test_desc_parent_lift(self):
        assert derives(
            [
                RequiredEdge(DE, "a", "b"),
                RequiredEdge(PA, "b", "c"),
                Disjoint("a", "c"),
            ],
            RequiredEdge(DE, "a", "c"),
        )

    def test_desc_parent_lift_detects_downward_regress(self):
        """k0 →→ k3, k3 ← k2, k2 →→ k0 forces an infinite downward
        chain once k0 is populated (the seed-198 family)."""
        closure = close([
            RequiredClass("k0"),
            RequiredEdge(DE, "k0", "k3"),
            RequiredEdge(PA, "k3", "k2"),
            RequiredEdge(DE, "k2", "k0"),
            Disjoint("k0", "k2"), Disjoint("k0", "k3"), Disjoint("k2", "k3"),
        ])
        assert not closure.consistent

    def test_sandwich_rule(self):
        """Required ancestor + required descendant + forbidden
        descendant between them empties the middle class."""
        assert derives(
            [
                RequiredEdge(AN, "i", "p"),
                RequiredEdge(DE, "i", "c"),
                ForbiddenEdge(DE, "p", "c"),
            ],
            RequiredEdge(DE, "i", EMPTY_CLASS),
        )

    def test_sandwich_with_self_target(self):
        """The seed-187 family: a required k1 ancestor and required k1
        descendant with k1 ↛↛ k1."""
        closure = close([
            RequiredClass("k2"),
            RequiredEdge(AN, "k2", "k1"),
            RequiredEdge(DE, "k2", "k1"),
            ForbiddenEdge(DE, "k1", "k1"),
        ])
        assert not closure.consistent

    def test_sub_conflict(self):
        assert derives(
            [Subclass("c", "a"), Subclass("c", "b"), Disjoint("a", "b")],
            RequiredEdge(DE, "c", EMPTY_CLASS),
        )


class TestRuleCatalog:
    def test_every_catalogued_rule_has_figure_and_group(self):
        for rule in RULES.values():
            assert rule.figure in (6, 7)
            assert rule.group
            assert "⊢" in rule.shape

    def test_rule_lookup(self):
        from repro.consistency.rules import rule

        assert rule("trans-desc").group == "transitivity"
        with pytest.raises(KeyError):
            rule("no-such-rule")

    def test_reconstructed_rules_are_flagged(self):
        reconstructed = {n for n, r in RULES.items() if r.reconstructed}
        assert "parenthood" in reconstructed
        assert "ancestorhood" in reconstructed
        assert "trans-desc" not in reconstructed


class TestSoundnessOnInstances:
    """Spot soundness checks: rule conclusions hold on instances
    satisfying the premises (Theorem 5.1 in miniature)."""

    def test_handshake_semantics(self):
        """A forest where i→ch j and j→pa k hold must make i and k
        co-occur — with Disjoint(i,k) no such forest can contain an i
        entry, which is what the derived Empty(i) asserts."""
        from repro.model.instance import DirectoryInstance

        d = DirectoryInstance()
        parent = d.add_entry(None, "o=0", ["i", "k", "top"])  # i∩k co-occur
        d.add_entry(parent, "o=1", ["j", "top"])
        assert RequiredEdge(CH, "i", "j").is_satisfied(d)
        assert RequiredEdge(PA, "j", "k").is_satisfied(d)
        assert not Disjoint("i", "k").is_satisfied(d)  # forced violation

    def test_parenthood_semantics(self):
        """Any instance satisfying the parenthood premises also satisfies
        its conclusion ForbiddenEdge(DE, k, i)."""
        from repro.model.instance import DirectoryInstance

        d = DirectoryInstance()
        j = d.add_entry(None, "o=j", ["j", "top"])
        d.add_entry(j, "o=i", ["i", "top"])
        d.add_entry(None, "o=k", ["k", "top"])
        premises = [
            RequiredEdge(PA, "i", "j"),
            ForbiddenEdge(DE, "k", "j"),
            Disjoint("j", "k"),
        ]
        assert all(p.is_satisfied(d) for p in premises)
        assert ForbiddenEdge(DE, "k", "i").is_satisfied(d)
