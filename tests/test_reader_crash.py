"""Crash-consistency matrix for the lock-free reader (ISSUE 4
acceptance) plus the torn-frame byte-sweep satellite.

The matrix kills the writer at every fault-injected I/O boundary of
the standard scenario (``harness.crash``) and asserts, per wreckage:
the reader's view is a committed-prefix state, equals the recovery
dry-run's answer, modifies nothing, and converges onto the repaired
state afterwards.

The byte-sweep truncates, then corrupts, the newest WAL frame at every
byte position under a *live* reader and asserts the reader silently
holds the previous committed frame — the incremental mirror of the
recovery sweep in ``test_store_faults.py``.
"""

import os

import pytest

from harness.crash import (
    assert_reader_matches_wreckage,
    dry_run,
    run_crash_scenario,
    snapshot_files,
    unit_tx,
)
from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.store.faults import FaultPlan, FaultyIO, InjectedCrash
from repro.store.recovery import JOURNAL_FILE
from repro.store.reader import StoreReader
from repro.store.wal import scan
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema


class TestReaderCrashMatrix:
    def test_reader_agrees_with_recovery_at_every_crash_point(self, tmp_path):
        states, plan = dry_run(tmp_path)
        total_ops = plan.ops_executed
        assert total_ops >= 14, f"scenario too small: {plan.trace}"
        checked = 0
        for crash_op in range(total_ops):
            for fraction in (0.0, 0.5, 1.0):
                path = str(tmp_path / f"crash-{crash_op}-{int(fraction * 10)}")
                io = FaultyIO(
                    FaultPlan(crash_at_op=crash_op, torn_fraction=fraction)
                )
                with pytest.raises(InjectedCrash):
                    run_crash_scenario(path, io)
                if not os.path.exists(path):
                    continue  # died inside create(): nothing to read
                assert_reader_matches_wreckage(path, states, crash_op)
                checked += 1
        assert checked >= 30  # the matrix really ran


class TestTornFrameByteSweep:
    """Satellite: every truncation and corruption point of the newest
    frame leaves a live reader silently pinned at the previous commit."""

    def _store_with_two_commits(self, tmp_path):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance(), whitepages_registry()
        )
        assert store.apply(unit_tx(1)).applied
        assert store.apply(unit_tx(2)).applied
        store.close()
        return path

    def test_truncation_sweep(self, tmp_path):
        path = self._store_with_two_commits(tmp_path)
        journal = os.path.join(path, JOURNAL_FILE)
        full = open(journal, "rb").read()
        records = scan(full).records
        assert len(records) == 2
        frame2 = records[1]

        with StoreReader.open(
            path, whitepages_schema(), whitepages_registry()
        ) as reader:
            assert reader.position() == (1, 2)
            full_state = serialize_ldif(reader.instance)

            # Pin a second reader at frame 1 and sweep every truncation
            # length of frame 2 under it.
            open(journal, "wb").write(full[: frame2.offset])
            with StoreReader.open(
                path, whitepages_schema(), whitepages_registry()
            ) as live:
                assert live.position() == (1, 1)
                pinned = serialize_ldif(live.instance)
                for cut in range(frame2.offset, len(full)):
                    open(journal, "wb").write(full[:cut])
                    result = live.refresh()
                    assert live.position() == (1, 1), f"cut at byte {cut}"
                    assert not result.advanced
                    assert not result.stale, f"cut at {cut}: {result.note}"
                    assert serialize_ldif(live.instance) == pinned
                # restoring the full frame resumes the follow exactly
                open(journal, "wb").write(full)
                result = live.refresh()
                assert result.frames_replayed == 1
                assert live.position() == (1, 2)
                assert serialize_ldif(live.instance) == full_state

    def test_corruption_sweep(self, tmp_path):
        path = self._store_with_two_commits(tmp_path)
        journal = os.path.join(path, JOURNAL_FILE)
        full = open(journal, "rb").read()
        records = scan(full).records
        frame2 = records[1]

        open(journal, "wb").write(full[: frame2.offset])
        with StoreReader.open(
            path, whitepages_schema(), whitepages_registry()
        ) as live:
            assert live.position() == (1, 1)
            pinned = serialize_ldif(live.instance)
            for pos in range(frame2.offset, len(full)):
                damaged = bytearray(full)
                damaged[pos] ^= 0xFF
                open(journal, "wb").write(bytes(damaged))
                result = live.refresh()
                # A flipped byte anywhere in the newest frame must never
                # advance the reader onto damaged content...
                assert live.position() == (1, 1), f"flip at byte {pos}"
                assert serialize_ldif(live.instance) == pinned
                assert not result.advanced, f"flip at byte {pos}"
                # ...and the journal must not be "repaired" by a reader.
                assert open(journal, "rb").read() == bytes(damaged)
                # reset for the next position
                open(journal, "wb").write(full[: frame2.offset])
                live.refresh()
            open(journal, "wb").write(full)
            live.refresh()
            assert live.position() == (1, 2)


class TestReaderNeverWrites:
    def test_reader_session_touches_no_file(self, tmp_path):
        path = str(tmp_path / "store")
        store = DirectoryStore.create(
            path, whitepages_schema(), figure1_instance(), whitepages_registry()
        )
        assert store.apply(unit_tx(1)).applied
        store.compact()  # publish manifest + sidecar too
        assert store.apply(unit_tx(2)).applied
        store.close()
        before = snapshot_files(path)
        with StoreReader.open(
            path, whitepages_schema(), whitepages_registry()
        ) as reader:
            reader.refresh()
            reader.check()
            reader.search()
            reader.lag()
        assert snapshot_files(path) == before
