"""Unit tests for the 2PC coordinator log: the presumed-abort decision
rule, torn-tail quarantine, corruption refusal, and compaction."""

from __future__ import annotations

import os

import pytest

from repro.errors import StoreError
from repro.store.txlog import (
    TXLOG_FILE,
    TXLOG_QUARANTINE_FILE,
    TxLog,
    inspect_txlog,
)


def log_path(tmp_path) -> str:
    return os.path.join(str(tmp_path), TXLOG_FILE)


class TestProtocol:
    def test_begin_commit_complete_roundtrip(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        txid = log.begin(["att", "labs"])
        assert txid == "tx-1"
        assert log.verdict(txid) == "abort"  # no commit record yet
        log.commit(txid)
        assert log.verdict(txid) == "commit"
        log.complete(txid)
        assert log.verdict(txid) == "commit"
        assert not log.unfinished()
        # the decisions are durable: a fresh open agrees
        reopened = TxLog.open(str(tmp_path))
        assert reopened.verdict(txid) == "commit"
        assert not reopened.unfinished()
        assert reopened.states()[txid].participants == ("att", "labs")

    def test_abort_roundtrip(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        txid = log.begin(["att", "labs"])
        log.abort(txid)
        log.complete(txid)
        assert TxLog.open(str(tmp_path)).verdict(txid) == "abort"

    def test_presumed_abort_for_unknown_and_undecided(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        # a txid the log never heard of (its begin died with the crash)
        assert log.verdict("tx-404") == "abort"
        # a begin with no durable decision
        txid = log.begin(["att"])
        assert TxLog.open(str(tmp_path)).verdict(txid) == "abort"
        assert txid in TxLog.open(str(tmp_path)).unfinished()

    def test_txids_are_monotonic_across_reopens(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        assert log.begin(["att"]) == "tx-1"
        assert log.begin(["labs"]) == "tx-2"
        assert TxLog.open(str(tmp_path)).begin(["att"]) == "tx-3"

    def test_recording_unknown_txid_raises(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        with pytest.raises(StoreError, match="no transaction"):
            log.commit("tx-99")


class TestDamage:
    def test_torn_tail_quarantined_and_truncated(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        txid = log.begin(["att", "labs"])
        log.commit(txid)
        log.complete(txid)
        with open(log_path(tmp_path), "ab") as fh:
            fh.write(b"#WAL seq=4 gen=1 le")  # torn mid-header
        reopened = TxLog.open(str(tmp_path))
        assert reopened.verdict(txid) == "commit"
        quarantine = os.path.join(str(tmp_path), TXLOG_QUARANTINE_FILE)
        assert os.path.exists(quarantine)
        with open(quarantine, "rb") as fh:
            assert b"torn tail" in fh.read()
        # the truncation is durable: the next open sees a clean log
        assert TxLog.open(str(tmp_path)).verdict(txid) == "commit"

    def test_corrupt_log_refuses_to_open(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        log.begin(["att"])
        with open(log_path(tmp_path), "r+b") as fh:
            data = fh.read()
            fh.seek(data.find(b"crc=") + 6)
            fh.write(b"00")
        with pytest.raises(StoreError, match="corrupt"):
            TxLog.open(str(tmp_path))
        with pytest.raises(StoreError, match="corrupt"):
            inspect_txlog(str(tmp_path))

    def test_non_json_payload_is_typed_error(self, tmp_path):
        from repro.store import wal

        with open(log_path(tmp_path), "wb") as fh:
            fh.write(wal.encode_record(1, 1, "not json"))
        with pytest.raises(StoreError, match="not\\s+valid JSON"):
            TxLog.open(str(tmp_path))


class TestInspectAndCompact:
    def test_inspect_missing_log_is_none(self, tmp_path):
        assert inspect_txlog(str(tmp_path)) is None

    def test_inspect_tolerates_torn_tail_without_rewriting(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        txid = log.begin(["att"])
        log.commit(txid)
        with open(log_path(tmp_path), "ab") as fh:
            fh.write(b"#WAL seq=9 gen=1 le")
        before = open(log_path(tmp_path), "rb").read()
        loaded = inspect_txlog(str(tmp_path))
        assert loaded is not None and loaded.verdict(txid) == "commit"
        assert open(log_path(tmp_path), "rb").read() == before
        assert not os.path.exists(
            os.path.join(str(tmp_path), TXLOG_QUARANTINE_FILE)
        )

    def test_compact_drops_finished_keeps_unfinished(self, tmp_path):
        log = TxLog.open(str(tmp_path))
        done = log.begin(["att", "labs"])
        log.commit(done)
        log.complete(done)
        pending = log.begin(["att"])
        log.compact()
        survivors = TxLog.open(str(tmp_path)).states()
        assert done not in survivors
        assert pending in survivors
        assert survivors[pending].state == "begin"
        assert survivors[pending].verdict == "abort"
