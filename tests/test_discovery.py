"""Tests for bounding-schema discovery.

Two invariants hold for every input: the training instance is legal
w.r.t. the discovered schema, and the discovered schema is consistent
(the instance is a model) — the latter doubles as a semantic
cross-check of the inference system."""

from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.consistency.checker import check_consistency
from repro.legality.checker import LegalityChecker
from repro.model.instance import DirectoryInstance
from repro.schema.discovery import DiscoveryOptions, discover_schema
from repro.schema.elements import ForbiddenEdge, RequiredEdge
from repro.workloads import (
    generate_den,
    generate_whitepages,
)


class TestSoundnessInvariants:
    def test_figure1(self, fig1):
        result = discover_schema(fig1)
        assert LegalityChecker(result.schema).is_legal(fig1)
        assert check_consistency(result.schema).consistent

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1000))
    def test_generated_whitepages(self, seed):
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=2, seed=seed)
        result = discover_schema(instance)
        assert LegalityChecker(result.schema).is_legal(instance)
        assert check_consistency(result.schema).consistent

    def test_generated_den(self):
        instance = generate_den(sites=2, devices_per_site=2,
                                interfaces_per_device=2, domains=1,
                                policies_per_domain=2, seed=7)
        result = discover_schema(instance)
        assert LegalityChecker(result.schema).is_legal(instance)
        assert check_consistency(result.schema).consistent

    def test_single_entry(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=solo", ["organization", "top"], {"o": ["solo"]})
        result = discover_schema(d)
        assert LegalityChecker(result.schema).is_legal(d)

    def test_empty_instance(self):
        result = discover_schema(DirectoryInstance())
        assert LegalityChecker(result.schema).is_legal(DirectoryInstance())


class TestRecovery:
    """Discovery recovers the paper's hand-written schema elements."""

    def test_figure1_recovers_figure3_elements(self, fig1):
        structure = discover_schema(fig1).schema.structure_schema
        # the headline required relationship
        assert RequiredEdge(Axis.DESCENDANT, "orgGroup", "person") in (
            structure.required_edges
        )
        # orgUnit ← orgGroup and organization → orgUnit
        assert RequiredEdge(Axis.PARENT, "orgUnit", "orgGroup") in (
            structure.required_edges
        )
        assert RequiredEdge(Axis.CHILD, "organization", "orgUnit") in (
            structure.required_edges
        )
        # persons are leaves: forbidden descendant subsumes forbidden child
        assert ForbiddenEdge(Axis.DESCENDANT, "person", "top") in (
            structure.forbidden_edges
        )

    def test_figure1_recovers_hierarchy(self, fig1):
        classes = discover_schema(fig1).schema.class_schema
        assert classes.parent("orgUnit") == "orgGroup"
        assert classes.parent("organization") == "orgGroup"
        assert classes.parent("researcher") == "person"
        assert classes.parent("staffMember") == "person"

    def test_figure1_recovers_attribute_bounds(self, fig1):
        attributes = discover_schema(fig1).schema.attribute_schema
        assert attributes.required("person") == {"name", "uid"}
        assert attributes.required("orgUnit") == {"ou"}
        assert "mail" in attributes.allowed("person")

    def test_online_becomes_auxiliary_with_enough_data(self):
        instance = generate_whitepages(orgs=2, units_per_level=3, depth=2,
                                       persons_per_unit=3, seed=4)
        result = discover_schema(instance)
        assert "online" in result.auxiliary_classes
        assert "person" in result.core_classes
        assert "orgGroup" in result.core_classes


class TestOptions:
    def test_min_class_support_drops_rare_classes(self, fig1):
        result = discover_schema(fig1, DiscoveryOptions(min_class_support=2))
        schema = result.schema
        # staffMember/facultyMember/organization have one member each
        # (online has two: att and laks)
        assert "staffMember" not in schema.class_schema
        assert "facultyMember" not in schema.class_schema
        assert "organization" not in schema.class_schema
        assert "online" in schema.class_schema
        # NB: the training instance is no longer legal (unknown classes)
        assert not LegalityChecker(schema).is_legal(fig1)

    def test_forbidden_support_threshold(self, fig1):
        loose = discover_schema(fig1, DiscoveryOptions(min_forbidden_support=1))
        tight = discover_schema(fig1, DiscoveryOptions(min_forbidden_support=3))
        assert loose.forbidden_edges >= tight.forbidden_edges

    def test_top_targets_flag(self, fig1):
        without = discover_schema(fig1)
        with_top = discover_schema(fig1, DiscoveryOptions(include_top_targets=True))
        assert with_top.required_edges > without.required_edges

    def test_no_required_classes_option(self, fig1):
        result = discover_schema(
            fig1, DiscoveryOptions(require_observed_classes=False)
        )
        assert not result.schema.structure_schema.required_classes


class TestPrescriptiveUse:
    """The discovered bound rejects data that breaks the observed
    invariants — the prescriptive payoff."""

    def test_discovered_bound_rejects_novel_violations(self, fig1):
        schema = discover_schema(fig1).schema
        checker = LegalityChecker(schema)
        # an orgUnit directly under a person breaks several discovered
        # elements (person ↛↛ top among them)
        fig1.add_entry(
            "uid=suciu,ou=databases,ou=attLabs,o=att",
            "ou=rogue",
            ["orgUnit", "orgGroup", "top"],
            {"ou": ["rogue"]},
        )
        assert not checker.is_legal(fig1)

    def test_generalization_across_seeds(self):
        """A schema discovered from a large sample usually accepts other
        samples from the same generator (same invariants)."""
        train = generate_whitepages(orgs=3, units_per_level=3, depth=2,
                                    persons_per_unit=4, seed=1)
        schema = discover_schema(
            train, DiscoveryOptions(min_forbidden_support=5)
        ).schema
        test_instance = generate_whitepages(orgs=2, units_per_level=3, depth=2,
                                            persons_per_unit=4, seed=2)
        report = LegalityChecker(schema).check(test_instance)
        # Perfect generalization is not guaranteed (tight bounds may
        # overfit rare motifs), but the bulk must transfer.
        assert len(report) < len(test_instance) * 0.1
