"""Unit and property tests for directory instances (the forest)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    DuplicateEntryError,
    ForestInvariantError,
    TypeViolationError,
    UnknownEntryError,
)
from repro.model.attributes import AttributeRegistry
from repro.model.instance import DirectoryInstance
from repro.model.types import INTEGER


def small_tree():
    d = DirectoryInstance()
    root = d.add_entry(None, "o=att", ["organization", "top"])
    labs = d.add_entry(root, "ou=labs", ["orgUnit", "top"])
    db = d.add_entry(labs, "ou=db", ["orgUnit", "top"])
    laks = d.add_entry(db, "uid=laks", ["person", "top"])
    hr = d.add_entry(root, "ou=hr", ["orgUnit", "top"])
    return d, root, labs, db, laks, hr


class TestConstruction:
    def test_add_root_and_child(self):
        d = DirectoryInstance()
        root = d.add_entry(None, "o=att", ["top"])
        child = d.add_entry(root, "ou=labs", ["top"])
        assert str(child.dn) == "ou=labs,o=att"
        assert d.parent_of(child).eid == root.eid

    def test_parent_addressable_by_dn_string(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"])
        child = d.add_entry("o=att", "ou=labs", ["top"])
        assert str(child.dn) == "ou=labs,o=att"

    def test_duplicate_dn_rejected(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=att", ["top"])
        with pytest.raises(DuplicateEntryError):
            d.add_entry(None, "o=att", ["top"])

    def test_same_rdn_under_different_parents_ok(self):
        d, root, labs, *_ = small_tree()
        d.add_entry(labs, "ou=hr", ["top"])  # ou=hr also exists under root
        assert d.find("ou=hr,ou=labs,o=att") is not None

    def test_unknown_parent_rejected(self):
        d = DirectoryInstance()
        with pytest.raises(UnknownEntryError):
            d.add_entry("o=ghost", "ou=labs", ["top"])

    def test_typed_instance_coerces_values(self):
        registry = AttributeRegistry()
        registry.declare("age", INTEGER)
        d = DirectoryInstance(attributes=registry)
        entry = d.add_entry(None, "uid=x", ["top"], {"age": ["30"]})
        assert entry.values("age") == (30,)

    def test_typed_instance_rejects_bad_values(self):
        registry = AttributeRegistry()
        registry.declare("age", INTEGER)
        d = DirectoryInstance(attributes=registry)
        with pytest.raises(TypeViolationError):
            d.add_entry(None, "uid=x", ["top"], {"age": ["old"]})


class TestDeletion:
    def test_delete_leaf(self):
        d, *_, laks, hr = small_tree()
        d.delete_entry(laks)
        assert d.find("uid=laks,ou=db,ou=labs,o=att") is None
        assert len(d) == 4

    def test_delete_interior_rejected(self):
        d, root, *_ = small_tree()
        with pytest.raises(ForestInvariantError):
            d.delete_entry(root)

    def test_delete_updates_class_index(self):
        d, *_, laks, hr = small_tree()
        d.delete_entry(laks)
        assert d.entries_with_class("person") == set()

    def test_delete_root_leaf(self):
        d = DirectoryInstance()
        root = d.add_entry(None, "o=solo", ["top"])
        d.delete_entry(root)
        assert len(d) == 0 and d.root_ids() == ()


class TestNavigation:
    def test_children_and_parent(self):
        d, root, labs, db, laks, hr = small_tree()
        assert [c.eid for c in d.children_of(root)] == [labs.eid, hr.eid]
        assert d.parent_of(root) is None
        assert d.parent_id(labs.eid) == root.eid

    def test_ancestors(self):
        d, root, labs, db, laks, hr = small_tree()
        assert [a.eid for a in d.ancestors_of(laks)] == [db.eid, labs.eid, root.eid]

    def test_descendants_in_document_order(self):
        d, root, labs, db, laks, hr = small_tree()
        assert [x.eid for x in d.descendants_of(root)] == [
            labs.eid, db.eid, laks.eid, hr.eid
        ]

    def test_is_ancestor(self):
        d, root, labs, db, laks, hr = small_tree()
        assert d.is_ancestor(root, laks)
        assert d.is_ancestor(labs, laks)
        assert not d.is_ancestor(laks, root)
        assert not d.is_ancestor(hr, laks)
        assert not d.is_ancestor(root, root)

    def test_depths(self):
        d, root, labs, db, laks, hr = small_tree()
        assert d.depth_of(root) == 1
        assert d.depth_of(laks) == 4
        assert d.max_depth() == 4

    def test_document_order_is_preorder(self):
        d, root, labs, db, laks, hr = small_tree()
        assert [e.eid for e in d] == [root.eid, labs.eid, db.eid, laks.eid, hr.eid]

    def test_intervals_nest_properly(self):
        d, root, labs, db, laks, hr = small_tree()
        pre_r, post_r = d.interval_of(root)
        pre_l, post_l = d.interval_of(laks)
        assert pre_r < pre_l < post_l < post_r

    def test_find_by_dn(self):
        d, *_ = small_tree()
        assert d.find("ou=db,ou=labs,o=att") is not None
        assert d.find("ou=ghost,o=att") is None

    def test_class_index(self):
        d, root, labs, db, laks, hr = small_tree()
        assert d.entries_with_class("orgUnit") == {labs.eid, db.eid, hr.eid}
        assert d.class_count("person") == 1
        assert d.class_count("router") == 0

    def test_class_index_tracks_mutation(self):
        d, *_, laks, hr = small_tree()
        laks.add_class("online")
        assert d.entries_with_class("online") == {laks.eid}
        laks.remove_class("online")
        assert d.entries_with_class("online") == set()

    def test_contains(self):
        d, root, *_ = small_tree()
        assert root in d
        assert "o=att" in d
        assert "o=ghost" not in d
        assert 9999 not in d


class TestSubtreeOperations:
    def test_extract_subtree_copies(self):
        d, root, labs, db, laks, hr = small_tree()
        sub = d.extract_subtree(labs)
        assert len(sub) == 3
        assert len(d) == 5  # original untouched
        assert str(sub.roots()[0].dn) == "ou=labs"

    def test_delete_subtree_returns_removed(self):
        d, root, labs, *_ = small_tree()
        removed = d.delete_subtree(labs)
        assert len(removed) == 3
        assert len(d) == 2
        assert d.find("ou=labs,o=att") is None

    def test_insert_subtree_grafts_copy(self):
        d, root, labs, *_ = small_tree()
        removed = d.delete_subtree(labs)
        created = d.insert_subtree("ou=hr,o=att", removed)
        assert len(created) == 3
        assert d.find("uid=laks,ou=db,ou=labs,ou=hr,o=att") is not None

    def test_insert_subtree_as_roots(self):
        d, root, labs, *_ = small_tree()
        removed = d.delete_subtree(labs)
        d.insert_subtree(None, removed)
        assert d.find("ou=labs") is not None
        assert len(d.root_ids()) == 2

    def test_copy_is_deep(self):
        d, root, *_ = small_tree()
        clone = d.copy()
        assert len(clone) == len(d)
        clone.add_entry("o=att", "ou=extra", ["top"])
        assert d.find("ou=extra,o=att") is None

    def test_copy_preserves_attributes(self):
        d = DirectoryInstance()
        d.add_entry(None, "uid=x", ["top"], {"mail": ["a@x.com", "b@x.com"]})
        clone = d.copy()
        assert clone.entry("uid=x").values("mail") == ("a@x.com", "b@x.com")


@st.composite
def forest_shapes(draw):
    """Random parent vectors: node i attaches to None or an earlier node."""
    n = draw(st.integers(min_value=1, max_value=25))
    parents = [None]
    for i in range(1, n):
        parents.append(draw(st.one_of(st.none(), st.integers(0, i - 1))))
    return parents


class TestForestProperties:
    @settings(max_examples=50, deadline=None)
    @given(forest_shapes())
    def test_interval_nesting_matches_ancestry(self, parents):
        d = DirectoryInstance()
        entries = []
        for i, p in enumerate(parents):
            parent = entries[p] if p is not None else None
            entries.append(d.add_entry(parent, f"id=n{i}", ["top"]))
        for i, e in enumerate(entries):
            cursor = parents[i]
            ancestors = set()
            while cursor is not None:
                ancestors.add(cursor)
                cursor = parents[cursor]
            for j, other in enumerate(entries):
                expected = j in ancestors
                assert d.is_ancestor(other, e) == expected

    @settings(max_examples=30, deadline=None)
    @given(forest_shapes())
    def test_document_order_parents_before_children(self, parents):
        d = DirectoryInstance()
        entries = []
        for i, p in enumerate(parents):
            parent = entries[p] if p is not None else None
            entries.append(d.add_entry(parent, f"id=n{i}", ["top"]))
        position = {e.eid: k for k, e in enumerate(d)}
        for i, p in enumerate(parents):
            if p is not None:
                assert position[entries[p].eid] < position[entries[i].eid]

    @settings(max_examples=30, deadline=None)
    @given(forest_shapes())
    def test_extract_then_reinsert_roundtrips_size(self, parents):
        d = DirectoryInstance()
        entries = []
        for i, p in enumerate(parents):
            parent = entries[p] if p is not None else None
            entries.append(d.add_entry(parent, f"id=n{i}", ["top"]))
        before = len(d)
        removed = d.delete_subtree(entries[0])
        d.insert_subtree(None, removed)
        assert len(d) == before


class TestDeleteSubtreeConsistency:
    """After the O(k) one-pass prune, every index must agree with a
    freshly built instance: DN index, class index, and the (pre, post)
    interval numbering."""

    def deletable_tree(self):
        d = DirectoryInstance()
        root = d.add_entry(None, "o=att", ["organization", "top"])
        labs = d.add_entry(root, "ou=labs", ["orgUnit", "top"])
        d.add_entry(labs, "uid=a", ["person", "top"])
        d.add_entry(labs, "uid=b", ["person", "researcher", "top"])
        hr = d.add_entry(root, "ou=hr", ["orgUnit", "top"])
        d.add_entry(hr, "uid=c", ["person", "top"])
        return d

    def test_class_index_drops_only_pruned_entries(self):
        d = self.deletable_tree()
        d.delete_subtree("ou=labs,o=att")
        assert d.entries_with_class("researcher") == set()
        assert len(d.entries_with_class("person")) == 1
        assert d.class_count("orgUnit") == 1
        # buckets emptied by the prune are removed, not left as junk
        assert "researcher" not in d._class_index

    def test_dn_index_consistent_after_prune(self):
        d = self.deletable_tree()
        d.delete_subtree("ou=labs,o=att")
        assert d.find("uid=a,ou=labs,o=att") is None
        assert d.find("uid=c,ou=hr,o=att") is not None
        # the internal DN key cache holds exactly the surviving entries
        assert set(d._dn_key) == set(d.entry_ids())
        assert set(d._by_dn.values()) == set(d.entry_ids())
        for eid in d.entry_ids():
            assert d._by_dn[d.dn_string_of(eid)] == eid

    def test_intervals_renumbered_after_prune(self):
        d = self.deletable_tree()
        d.delete_subtree("ou=labs,o=att")
        # interval nesting still encodes exactly the remaining ancestry
        root = d.entry("o=att")
        hr = d.entry("ou=hr,o=att")
        c = d.entry("uid=c,ou=hr,o=att")
        r_pre, r_post = d.interval_of(root)
        h_pre, h_post = d.interval_of(hr)
        c_pre, c_post = d.interval_of(c)
        assert r_pre < h_pre and h_post < r_post
        assert h_pre < c_pre and c_post < h_post
        assert d.is_ancestor(root, c) and not d.is_ancestor(c, root)
        # intervals exist only for surviving entries
        d._ensure_order()
        assert set(d._pre) == set(d.entry_ids())

    def test_pruned_entries_are_detached(self):
        d = self.deletable_tree()
        labs = d.entry("ou=labs,o=att")
        removed = d.delete_subtree(labs)
        # the removed copy is standalone; the pruned originals are orphaned
        assert labs._owner is None
        assert removed.find("ou=labs") is not None
        with pytest.raises(UnknownEntryError):
            d.entry(labs)

    def test_delete_subtree_work_is_linear_in_k(self):
        # machine-independent O(k) evidence: pruning a k-subtree from a
        # large instance must not touch the rest of the DN index
        d = DirectoryInstance()
        root = d.add_entry(None, "o=big", ["top"])
        for i in range(200):
            d.add_entry(root, f"ou=filler{i}", ["top"])
        target = d.add_entry(root, "ou=victim", ["top"])
        for i in range(10):
            d.add_entry(target, f"uid=v{i}", ["top"])
        keys_before = dict(d._dn_key)
        d.delete_subtree(target)
        # survivors keep their identical cached keys (no rebuild)
        for eid, key in d._dn_key.items():
            assert keys_before[eid] == key
        assert len(keys_before) - len(d._dn_key) == 11
