"""The read-balancing front door (:mod:`repro.server.frontdoor`).

Covers the routing surface — writes to the primary, reads across
replicas — and the bounded-staleness contract's edges: ``require_seq``
beyond every follower falls through to the primary, ``max_lag=0``
equals primary reads, a follower dying mid-search retries
transparently, and the per-connection monotonic floor.  The
kill-the-primary-mid-storm failover matrix lives in
``tests/test_failover.py``; this file pins the deterministic edges
(replica sync loops are stalled on purpose where lag must be exact).

No pytest-asyncio: each test drives its own loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import DirectoryClient, DirectoryServer, FrontDoor
from repro.server.client import ServerError
from repro.server.frontdoor import position_geq, position_max
from repro.store import DirectoryStore
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)

PARENT = "ou=databases,ou=attLabs,o=att"


class _Topology:
    """An in-process primary + replicas + front door, torn down as one."""

    def __init__(self, primary, replicas, door):
        self.primary = primary
        self.replicas = replicas
        self.door = door

    async def client(self, dn="cn=test") -> DirectoryClient:
        client = await DirectoryClient.connect("127.0.0.1", self.door.port)
        await client.bind(dn)
        return client

    async def wait_replicas_at(self, position, timeout=15.0):
        """Block until every replica's applied frontier covers
        ``position`` (a plain position payload)."""
        deadline = asyncio.get_event_loop().time() + timeout
        for replica in self.replicas:
            client = await DirectoryClient.connect("127.0.0.1", replica.port)
            try:
                while True:
                    reply = await client.position()
                    if position_geq(reply.get("position"), position):
                        break
                    if asyncio.get_event_loop().time() > deadline:
                        raise AssertionError(
                            f"replica never reached {position}: {reply}"
                        )
                    await asyncio.sleep(0.05)
            finally:
                await client.close()

    async def stall_replica_sync(self):
        """Freeze every replica at its current frontier (the lag the
        staleness-contract tests need to be exact)."""
        for replica in self.replicas:
            await replica._stop_sync()

    async def stop(self):
        await self.door.stop(drain=True, timeout=5)
        await self.primary.stop(drain=False)
        for replica in self.replicas:
            await replica.stop(drain=False)


async def _topology(tmp_path, n_replicas=2, **door_kwargs) -> _Topology:
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_path = str(tmp_path / "primary")
    DirectoryStore.create(
        primary_path, schema, figure1_instance(), registry
    ).close()
    primary = DirectoryServer(primary_path, schema, registry, port=0)
    await primary.start()
    upstream = f"127.0.0.1:{primary.port}"
    replicas = []
    for index in range(n_replicas):
        replica = DirectoryServer(
            str(tmp_path / f"replica{index}"), schema, registry,
            port=0, replica_of=upstream,
        )
        await replica.start()
        replicas.append(replica)
    door_kwargs.setdefault("probe_interval", 0.1)
    door_kwargs.setdefault("fail_after", 2)
    door = FrontDoor(
        upstream, [f"127.0.0.1:{r.port}" for r in replicas], **door_kwargs
    )
    await door.start()
    topo = _Topology(primary, replicas, door)
    # followers are serving once the bootstrap snapshot has landed
    await topo.wait_replicas_at({"generation": 1, "seq": 0})
    return topo


def _person(index):
    return (
        f"uid=w{index},{PARENT}",
        ["person", "top"],
        {"uid": [f"w{index}"], "name": [f"w {index}"]},
    )


class TestPositionHelpers:
    def test_plain_ordering_is_lexicographic(self):
        assert position_geq({"generation": 2, "seq": 0},
                            {"generation": 1, "seq": 99})
        assert not position_geq({"generation": 1, "seq": 3},
                                {"generation": 1, "seq": 4})
        assert position_geq({"generation": 1, "seq": 3}, None)
        assert not position_geq(None, {"generation": 1, "seq": 0})

    def test_sharded_requirement_covers_every_shard(self):
        served = {"att": [1, 5], "labs": [1, 2]}
        assert position_geq(served, {"att": [1, 5], "labs": [1, 2]})
        assert not position_geq(served, {"att": [1, 5], "labs": [1, 3]})
        # a shard the server has never heard of counts as (0, 0)
        assert not position_geq(served, {"other": [1, 1]})

    def test_position_max_merges_pointwise(self):
        assert position_max({"generation": 1, "seq": 5},
                            {"generation": 1, "seq": 7}) \
            == {"generation": 1, "seq": 7}
        assert position_max({"att": [1, 5], "labs": [1, 1]},
                            {"att": [1, 2], "labs": [1, 4]}) \
            == {"att": [1, 5], "labs": [1, 4]}
        assert position_max(None, {"generation": 1, "seq": 1}) \
            == {"generation": 1, "seq": 1}


class TestRouting:
    def test_writes_route_to_primary_and_carry_position(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                client = await topo.client()
                dn, classes, attributes = _person(1)
                reply = await client.add(dn, classes, attributes)
                assert reply["applied"] is True
                assert reply["position"] == {"generation": 1, "seq": 1}
                # the write landed on the primary, not a replica
                direct = await DirectoryClient.connect(
                    "127.0.0.1", topo.primary.port
                )
                await direct.bind("cn=probe")
                found = await direct.search(filter="(uid=w1)")
                assert len(found["entries"]) == 1
                await direct.close()
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_topology_reports_members_and_frontiers(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                client = await topo.client()
                reply = await client.request("topology")
                assert reply["primary"]["address"].endswith(
                    str(topo.primary.port)
                )
                assert len(reply["replicas"]) == 2
                assert reply["failovers"] == 0
                assert reply["lost_floors"] == []
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_reads_require_bind_and_ops_gate(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path, n_replicas=1)
            try:
                client = await DirectoryClient.connect(
                    "127.0.0.1", topo.door.port
                )
                with pytest.raises(ServerError) as excinfo:
                    await client.search()
                assert excinfo.value.code == "not_bound"
                await client.bind("cn=test")
                for op in ("watch", "replicate", "promote", "reattach"):
                    with pytest.raises(ServerError) as excinfo:
                        await client.request(op)
                    assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())


class TestStalenessContract:
    def test_require_seq_beyond_every_follower_falls_to_primary(
        self, tmp_path
    ):
        async def run():
            topo = await _topology(tmp_path)
            try:
                # freeze the followers at the bootstrap frontier, then
                # advance the primary past them
                await topo.stall_replica_sync()
                client = await topo.client()
                dn, classes, attributes = _person(1)
                written = await client.add(dn, classes, attributes)
                position = written["position"]
                # read-your-writes: every follower is stuck at seq 0,
                # so this must fall through to the primary
                found = await client.search(
                    filter="(uid=w1)", require_seq=position
                )
                assert len(found["entries"]) == 1
                assert position_geq(found["position"], position)
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_max_lag_zero_equals_primary_reads(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                await topo.stall_replica_sync()
                writer = await topo.client(dn="cn=writer")
                dn, classes, attributes = _person(1)
                await writer.add(dn, classes, attributes)
                await writer.close()
                # a FRESH connection (no floor) asking max_lag=0 must
                # serve the primary's frontier, stale followers or not
                reader = await topo.client(dn="cn=reader")
                found = await reader.search(
                    filter="(uid=w1)", max_lag=0
                )
                assert len(found["entries"]) == 1
                assert found["position"] == {"generation": 1, "seq": 1}
                await reader.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_connection_floor_makes_reads_monotonic(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                await topo.stall_replica_sync()
                client = await topo.client()
                dn, classes, attributes = _person(1)
                written = await client.add(dn, classes, attributes)
                # no explicit require_seq: the connection's floor from
                # the write still forbids serving the stale followers
                for _ in range(6):  # > rotation length: every route
                    found = await client.search(filter="(uid=w1)")
                    assert len(found["entries"]) == 1
                    assert position_geq(
                        found["position"], written["position"]
                    )
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_follower_reads_balance_when_caught_up(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                client = await topo.client()
                dn, classes, attributes = _person(1)
                written = await client.add(dn, classes, attributes)
                await topo.wait_replicas_at(written["position"])
                found = await client.search(
                    filter="(uid=w1)", require_seq=written["position"]
                )
                assert len(found["entries"]) == 1
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_staleness_fields_validated(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path, n_replicas=1)
            try:
                client = await topo.client()
                for require in (
                    {"generation": True, "seq": 0},
                    {"generation": 1, "seq": -2},
                    {"att": [1]},
                    "soon",
                    {},
                ):
                    with pytest.raises(ServerError) as excinfo:
                        await client.search(require_seq=require)
                    assert excinfo.value.code == "bad_request"
                for lag in (True, -1, "none"):
                    with pytest.raises(ServerError) as excinfo:
                        await client.search(max_lag=lag)
                    assert excinfo.value.code == "bad_request"
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())


class TestFollowerFailure:
    def test_follower_death_retries_transparently(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path)
            try:
                client = await topo.client()
                # seed the rotation so the door holds live pooled
                # connections to the followers
                for _ in range(4):
                    assert (await client.search())["ok"]
                # kill one follower out from under the door
                await topo.replicas[0].kill()
                for _ in range(8):
                    found = await client.search(
                        filter="(objectClass=person)"
                    )
                    assert len(found["entries"]) == 3
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())

    def test_all_followers_dead_reads_serve_from_primary(self, tmp_path):
        async def run():
            topo = await _topology(tmp_path, n_replicas=1)
            try:
                client = await topo.client()
                await topo.replicas[0].kill()
                for _ in range(4):
                    found = await client.search(
                        filter="(objectClass=person)"
                    )
                    assert len(found["entries"]) == 3
                await client.close()
            finally:
                await topo.stop()

        asyncio.run(run())
