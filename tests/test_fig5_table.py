"""Figure 5 as data: the incremental-testability table must match the
paper row by row, and the Δ-queries must carry the paper's scopes."""

import pytest

from repro.axes import Axis
from repro.query.ast import SCOPE_DELTA, SCOPE_NEW, HSelect, Minus
from repro.schema.elements import ForbiddenEdge, RequiredClass, RequiredEdge
from repro.updates.table import (
    DELTA_TABLE,
    build_delta_query,
    empty_scoped_query,
    rule_for,
)


class TestTheorem42Verdicts:
    """Theorem 4.2: exactly the rows marked in Figure 5 are
    incrementally testable."""

    @pytest.mark.parametrize("axis", list(Axis))
    def test_all_insert_rows_incremental(self, axis):
        assert DELTA_TABLE[(axis, False, "insert")].incremental

    @pytest.mark.parametrize("axis", [Axis.CHILD, Axis.DESCENDANT])
    def test_forbidden_insert_rows_incremental(self, axis):
        assert DELTA_TABLE[(axis, True, "insert")].incremental

    def test_delete_required_child_not_incremental(self):
        rule = DELTA_TABLE[(Axis.CHILD, False, "delete")]
        assert not rule.incremental and rule.needs_full_recheck

    def test_delete_required_descendant_not_incremental(self):
        rule = DELTA_TABLE[(Axis.DESCENDANT, False, "delete")]
        assert not rule.incremental and rule.needs_full_recheck

    def test_delete_required_parent_needs_no_check(self):
        rule = DELTA_TABLE[(Axis.PARENT, False, "delete")]
        assert rule.incremental and rule.needs_no_check

    def test_delete_required_ancestor_needs_no_check(self):
        rule = DELTA_TABLE[(Axis.ANCESTOR, False, "delete")]
        assert rule.incremental and rule.needs_no_check

    @pytest.mark.parametrize("axis", [Axis.CHILD, Axis.DESCENDANT])
    def test_delete_forbidden_needs_no_check(self, axis):
        rule = DELTA_TABLE[(axis, True, "delete")]
        assert rule.incremental and rule.needs_no_check

    def test_table_covers_exactly_twelve_rows(self):
        assert len(DELTA_TABLE) == 12

    def test_rule_for_dispatches_by_element(self):
        assert rule_for(RequiredEdge(Axis.CHILD, "a", "b"), "insert").axis is Axis.CHILD
        assert rule_for(ForbiddenEdge(Axis.DESCENDANT, "a", "b"), "delete").forbidden
        with pytest.raises(KeyError):
            rule_for(RequiredClass("a"), "insert")


class TestDeltaQueryShapes:
    """The Δ-query scope placement of Figure 5 (insertions)."""

    def test_required_child_all_delta(self):
        query = build_delta_query(RequiredEdge(Axis.CHILD, "ci", "cj"), "insert")
        assert isinstance(query, Minus)
        assert query.outer.scope == SCOPE_DELTA
        assert query.inner.outer.scope == SCOPE_DELTA
        assert query.inner.inner.scope == SCOPE_DELTA

    def test_required_parent_inner_on_new(self):
        query = build_delta_query(RequiredEdge(Axis.PARENT, "ci", "cj"), "insert")
        assert query.outer.scope == SCOPE_DELTA
        assert query.inner.inner.scope == SCOPE_NEW

    def test_required_descendant_all_delta(self):
        query = build_delta_query(RequiredEdge(Axis.DESCENDANT, "ci", "cj"), "insert")
        assert query.inner.inner.scope == SCOPE_DELTA

    def test_required_ancestor_inner_on_new(self):
        query = build_delta_query(RequiredEdge(Axis.ANCESTOR, "ci", "cj"), "insert")
        assert query.inner.inner.scope == SCOPE_NEW

    def test_forbidden_child_source_new_target_delta(self):
        query = build_delta_query(ForbiddenEdge(Axis.CHILD, "ci", "cj"), "insert")
        assert isinstance(query, HSelect)
        assert query.outer.scope == SCOPE_NEW
        assert query.inner.scope == SCOPE_DELTA

    def test_forbidden_descendant_source_new_target_delta(self):
        query = build_delta_query(ForbiddenEdge(Axis.DESCENDANT, "ci", "cj"), "insert")
        assert query.outer.scope == SCOPE_NEW
        assert query.inner.scope == SCOPE_DELTA

    def test_skip_rows_return_none(self):
        assert build_delta_query(RequiredEdge(Axis.PARENT, "a", "b"), "delete") is None
        assert build_delta_query(ForbiddenEdge(Axis.CHILD, "a", "b"), "delete") is None

    def test_full_rows_return_unscoped_figure4_query(self):
        query = build_delta_query(RequiredEdge(Axis.CHILD, "a", "b"), "delete")
        assert isinstance(query, Minus)
        assert query.outer.scope is None
        assert query.inner.inner.scope is None

    def test_empty_scoped_display_queries(self):
        query = empty_scoped_query(RequiredEdge(Axis.PARENT, "a", "b"))
        assert "∅" in str(query)
        query = empty_scoped_query(ForbiddenEdge(Axis.CHILD, "a", "b"))
        assert "∅" in str(query)
