"""Unit and property tests for hierarchical query evaluation.

The key property: every axis operator agrees with a brute-force
quantifier evaluation on random forests, for both the small-operand
(interval/walk) and the large-operand (flag-pass) strategies.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.axes import Axis
from repro.errors import QueryError
from repro.model.instance import DirectoryInstance
from repro.query.ast import (
    SCOPE_DELTA,
    SCOPE_EMPTY,
    HSelect,
    Minus,
    Select,
)
from repro.query.evaluator import QueryEvaluator, evaluate
from repro.query.filters import And, Equals, Present
from repro.workloads import random_forest


def oc(name):
    return Select(Equals("objectClass", name))


def brute_force_axis(instance, axis, outer, inner):
    """Direct quantifier semantics of (axis outer inner)."""
    result = set()
    for eid in outer:
        entry = instance.entry(eid)
        if axis is Axis.CHILD:
            related = {c.eid for c in instance.children_of(entry)}
        elif axis is Axis.PARENT:
            parent = instance.parent_of(entry)
            related = {parent.eid} if parent else set()
        elif axis is Axis.DESCENDANT:
            related = {d.eid for d in instance.descendants_of(entry)}
        else:
            related = {a.eid for a in instance.ancestors_of(entry)}
        if related & inner:
            result.add(eid)
    return result


def chain(labels):
    """A single path o=0 > o=1 > ... with the given class labels."""
    d = DirectoryInstance()
    parent = None
    for i, label in enumerate(labels):
        parent = d.add_entry(parent, f"o={i}", [label, "top"])
    return d


class TestAtomicSelection:
    def test_class_index_fast_path(self):
        d = chain(["a", "b", "a"])
        assert evaluate(oc("a"), d) == d.entries_with_class("a")

    def test_general_filter_scan(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=1", ["a", "top"], {"mail": ["x@y"]})
        d.add_entry(None, "o=2", ["a", "top"])
        result = evaluate(Select(Present("mail")), d)
        assert result == {d.entry("o=1").eid}

    def test_compound_filter(self):
        d = DirectoryInstance()
        d.add_entry(None, "o=1", ["a", "top"], {"mail": ["x@y"]})
        d.add_entry(None, "o=2", ["a", "top"])
        query = Select(And((Equals("objectClass", "a"), Present("mail"))))
        assert evaluate(query, d) == {d.entry("o=1").eid}

    def test_empty_scope(self):
        d = chain(["a"])
        query = oc("a").scoped(SCOPE_EMPTY)
        assert evaluate(query, d, {SCOPE_EMPTY: set()}) == set()

    def test_scope_restricts_selection(self):
        d = chain(["a", "a", "a"])
        ids = sorted(d.entries_with_class("a"))
        query = oc("a").scoped(SCOPE_DELTA)
        assert evaluate(query, d, {SCOPE_DELTA: {ids[0]}}) == {ids[0]}

    def test_unbound_scope_label_raises(self):
        d = chain(["a"])
        with pytest.raises(QueryError):
            evaluate(oc("a").scoped("nope"), d)


class TestAxes:
    def test_child(self):
        d = chain(["a", "b", "a"])
        result = evaluate(HSelect(Axis.CHILD, oc("a"), oc("b")), d)
        assert result == {d.entry("o=0").eid}

    def test_parent(self):
        d = chain(["a", "b", "a"])
        result = evaluate(HSelect(Axis.PARENT, oc("a"), oc("b")), d)
        assert result == {d.entry("o=2,o=1,o=0").eid}

    def test_descendant(self):
        d = chain(["a", "b", "c"])
        result = evaluate(HSelect(Axis.DESCENDANT, oc("a"), oc("c")), d)
        assert result == {d.entry("o=0").eid}

    def test_ancestor(self):
        d = chain(["a", "b", "c"])
        result = evaluate(HSelect(Axis.ANCESTOR, oc("c"), oc("a")), d)
        assert result == {d.entry("o=2,o=1,o=0").eid}

    def test_descendant_is_proper(self):
        d = chain(["a"])
        assert evaluate(HSelect(Axis.DESCENDANT, oc("a"), oc("a")), d) == set()

    def test_ancestor_is_proper(self):
        d = chain(["a"])
        assert evaluate(HSelect(Axis.ANCESTOR, oc("a"), oc("a")), d) == set()

    def test_empty_operands_short_circuit(self):
        d = chain(["a", "b"])
        assert evaluate(HSelect(Axis.CHILD, oc("zzz"), oc("b")), d) == set()
        assert evaluate(HSelect(Axis.CHILD, oc("a"), oc("zzz")), d) == set()


class TestMinus:
    def test_difference(self):
        d = chain(["a", "b", "a"])
        query = Minus(oc("a"), HSelect(Axis.CHILD, oc("a"), oc("b")))
        assert query and evaluate(query, d) == {d.entry("o=2,o=1,o=0").eid}

    def test_q1_from_the_paper(self, fig1):
        """Q1 (Section 3.2) is empty on the legal Figure 1 instance."""
        q1 = Minus(
            oc("orgGroup"),
            HSelect(Axis.DESCENDANT, oc("orgGroup"), oc("person")),
        )
        assert evaluate(q1, fig1) == set()

    def test_q2_from_the_paper(self, fig1):
        """Q2 (Section 3.2) is empty: persons have no children."""
        q2 = HSelect(Axis.CHILD, oc("person"), oc("top"))
        assert evaluate(q2, fig1) == set()

    def test_q3_from_the_paper(self, fig1):
        """Q3 (Section 3.2) is non-empty: orgUnits exist."""
        assert evaluate(oc("orgUnit"), fig1)


class TestStrategyAgreement:
    """The adaptive strategies must agree with each other and with
    brute force, regardless of which one the size heuristic picks."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from(list(Axis)),
        st.sampled_from(["k0", "k1", "k2"]),
        st.sampled_from(["k0", "k1", "k2"]),
    )
    def test_axis_matches_brute_force(self, seed, axis, source, target):
        instance = random_forest(n_entries=40, labels=["k0", "k1", "k2"], seed=seed)
        query = HSelect(axis, oc(source), oc(target))
        outer = instance.entries_with_class(source)
        inner = instance.entries_with_class(target)
        expected = brute_force_axis(instance, axis, outer, inner)
        assert evaluate(query, instance) == expected

    def test_descendant_both_strategies(self):
        instance = random_forest(n_entries=200, labels=["k0", "k1"], seed=7)
        evaluator = QueryEvaluator(instance)
        outer = instance.entries_with_class("k0")
        inner = instance.entries_with_class("k1")
        by_flags = evaluator._descendant_by_flags(outer, inner)
        by_intervals = evaluator._descendant_by_intervals(outer, inner)
        assert by_flags == by_intervals
        assert by_flags == brute_force_axis(instance, Axis.DESCENDANT, outer, inner)

    def test_ancestor_both_strategies(self):
        instance = random_forest(n_entries=200, labels=["k0", "k1"], seed=9)
        evaluator = QueryEvaluator(instance)
        outer = instance.entries_with_class("k0")
        inner = instance.entries_with_class("k1")
        by_flags = evaluator._ancestor_by_flags(outer, inner)
        by_walk = evaluator._ancestor_by_walk(outer, inner)
        assert by_flags == by_walk
        assert by_flags == brute_force_axis(instance, Axis.ANCESTOR, outer, inner)

    def test_small_operand_cost_independent_of_instance_size(self):
        """The Δ-scoped evaluation cost must not grow with |D| — the
        property Figure 5's incremental testing relies on."""
        costs = []
        for n in (200, 2000):
            instance = random_forest(n_entries=n, labels=["k0"], seed=1)
            first = next(iter(instance)).eid
            evaluator = QueryEvaluator(instance, {SCOPE_DELTA: {first}})
            query = HSelect(
                Axis.DESCENDANT,
                oc("k0").scoped(SCOPE_DELTA),
                oc("k0").scoped(SCOPE_DELTA),
            )
            evaluator.evaluate(query)
            costs.append(evaluator.cost)
        assert costs[1] < costs[0] * 3  # sublinear in |D|

    def test_query_size(self):
        query = Minus(oc("a"), HSelect(Axis.CHILD, oc("a"), oc("b")))
        assert query.size() == 5


class TestCostAttribution:
    """``cost`` accumulates across calls silently; ``last_cost`` and
    ``reset_cost`` give callers per-query attribution."""

    def test_last_cost_isolates_each_call(self):
        d = chain(["a"] * 8 + ["b"] * 2)
        evaluator = QueryEvaluator(d)
        evaluator.evaluate(oc("a"))
        first = evaluator.last_cost
        evaluator.evaluate(oc("b"))
        second = evaluator.last_cost
        assert first > 0 and second > 0
        assert first != second  # 8 a-entries vs 2 b-entries touched
        assert evaluator.cost == first + second

    def test_last_cost_sums_to_cumulative_cost(self):
        d = chain(["a", "b", "a", "c", "b"])
        evaluator = QueryEvaluator(d)
        total = 0
        for label in ("a", "b", "c", "a"):
            evaluator.evaluate(oc(label))
            total += evaluator.last_cost
        assert evaluator.cost == total

    def test_reset_cost_zeroes_both_counters(self):
        d = chain(["a", "b"])
        evaluator = QueryEvaluator(d)
        evaluator.evaluate(oc("a"))
        assert evaluator.cost > 0
        evaluator.reset_cost()
        assert evaluator.cost == 0 and evaluator.last_cost == 0
        evaluator.evaluate(oc("b"))
        assert evaluator.cost == evaluator.last_cost

    def test_structure_checker_surfaces_last_cost(self, wp_schema, fig1):
        from repro.legality.structure import QueryStructureChecker

        checker = QueryStructureChecker(wp_schema.structure_schema)
        assert checker.last_cost == 0
        checker.check(fig1)
        full = checker.last_cost
        assert full > 0
        checker.is_legal(fig1)
        assert checker.last_cost > 0
