"""Unit tests for the attribute registry (the ``tau`` function)."""

import pytest

from repro.errors import TypeViolationError, UnknownAttributeError
from repro.model.attributes import OBJECT_CLASS, AttributeRegistry
from repro.model.types import INTEGER, STRING


class TestDeclaration:
    def test_object_class_predeclared(self):
        registry = AttributeRegistry()
        assert OBJECT_CLASS in registry
        assert registry.tau(OBJECT_CLASS) is STRING

    def test_declare_and_lookup(self):
        registry = AttributeRegistry()
        registry.declare("age", INTEGER)
        assert registry.tau("age") is INTEGER

    def test_declare_by_type_name(self):
        registry = AttributeRegistry()
        registry.declare("count", "integer")
        assert registry.tau("count").name == "integer"

    def test_declare_unknown_type_name(self):
        registry = AttributeRegistry()
        with pytest.raises(KeyError):
            registry.declare("x", "no-such-type")

    def test_redeclare_identical_is_noop(self):
        registry = AttributeRegistry()
        first = registry.declare("mail", STRING)
        second = registry.declare("mail", STRING)
        assert first is second

    def test_redeclare_conflicting_type_rejected(self):
        registry = AttributeRegistry()
        registry.declare("mail", STRING)
        with pytest.raises(ValueError):
            registry.declare("mail", INTEGER)

    def test_declare_all(self):
        registry = AttributeRegistry()
        registry.declare_all(["a", "b", "c"])
        assert all(name in registry for name in "abc")

    def test_names_iteration(self):
        registry = AttributeRegistry()
        registry.declare("uid")
        assert set(registry.names()) >= {OBJECT_CLASS, "uid"}
        assert len(registry) == 2


class TestTau:
    def test_tau_unknown_attribute(self):
        registry = AttributeRegistry()
        with pytest.raises(UnknownAttributeError):
            registry.tau("ghost")

    def test_coerce_types_values(self):
        registry = AttributeRegistry()
        registry.declare("age", INTEGER)
        assert registry.coerce("age", "30") == 30

    def test_coerce_rejects_bad_values(self):
        registry = AttributeRegistry()
        registry.declare("age", INTEGER)
        with pytest.raises(TypeViolationError):
            registry.coerce("age", "thirty")


class TestSingleValued:
    def test_flag_round_trips(self):
        registry = AttributeRegistry()
        registry.declare("ssn", STRING, single_valued=True)
        assert registry.is_single_valued("ssn")
        assert not registry.is_single_valued("mail")

    def test_redeclare_different_cardinality_rejected(self):
        registry = AttributeRegistry()
        registry.declare("ssn", STRING, single_valued=True)
        with pytest.raises(ValueError):
            registry.declare("ssn", STRING, single_valued=False)
