"""Regression tests for pathologically deep directories.

The subtree operations (`insert_subtree`, `extract_subtree`, `copy`,
`delete_subtree`) used to recurse per level and blew the interpreter
recursion limit at ~1000 levels; they now walk an explicit stack, and
the DN index is maintained through an O(1) per-entry key cache, so a
depth-5000 chain round-trips in linear time.  LDAP deployments do nest
this deep in the wild (auto-generated organizational trees), and the
paper's model places no depth bound on ``N``.
"""

import sys

import pytest

from repro.legality.checker import LegalityChecker
from repro.model.instance import DirectoryInstance
from repro.workloads import whitepages_registry, whitepages_schema

DEPTH = 5000


@pytest.fixture(scope="module")
def deep_chain():
    """A legal white-pages instance that is one DEPTH-level unit chain:
    org -> ou=u0 -> ... -> ou=u4998 -> uid=leaf."""
    instance = DirectoryInstance(attributes=whitepages_registry())
    parent = instance.add_entry(
        None, "o=deep", ["organization", "orgGroup", "top"], {"o": ["deep"]}
    )
    for i in range(DEPTH - 2):
        parent = instance.add_entry(
            parent, f"ou=u{i}", ["orgUnit", "orgGroup", "top"], {"ou": [f"u{i}"]}
        )
    instance.add_entry(
        parent, "uid=leaf", ["person", "top"],
        {"uid": ["leaf"], "name": ["leaf person"]},
    )
    return instance


def test_recursion_limit_is_actually_exceeded(deep_chain):
    # Guard the guard: the chain must be deeper than the recursion
    # limit, otherwise these tests prove nothing.
    assert deep_chain.max_depth() == DEPTH  # roots have depth 1
    assert DEPTH > sys.getrecursionlimit()


def test_deep_copy(deep_chain):
    clone = deep_chain.copy()
    assert len(clone) == DEPTH
    assert clone.find(deep_chain.dn_string_of(deep_chain.roots()[0])) is not None


def test_deep_extract_subtree(deep_chain):
    sub = deep_chain.extract_subtree("o=deep")
    assert len(sub) == DEPTH
    assert len(deep_chain) == DEPTH  # extraction does not mutate


def test_deep_insert_extract_delete_roundtrip(deep_chain):
    instance = deep_chain.copy()
    snapshot = instance.extract_subtree("o=deep")
    removed = instance.delete_subtree("o=deep")
    assert len(removed) == DEPTH
    assert len(instance) == 0
    created = instance.insert_subtree(None, snapshot)
    assert len(created) == len(instance) == DEPTH
    # DN index survives the round trip down to the leaf
    leaf_dn = instance.dn_string_of(created[-1])
    assert leaf_dn.startswith("uid=leaf,")
    assert instance.find(leaf_dn) is not None


def test_deep_graft_under_existing_entry(deep_chain):
    instance = DirectoryInstance(attributes=whitepages_registry())
    instance.add_entry(
        None, "o=host", ["organization", "orgGroup", "top"], {"o": ["host"]}
    )
    sub = deep_chain.extract_subtree(deep_chain.children_of(deep_chain.roots()[0])[0])
    instance.insert_subtree("o=host", sub)
    assert len(instance) == DEPTH
    assert instance.max_depth() == DEPTH


def test_deep_full_legality_check(deep_chain):
    checker = LegalityChecker(whitepages_schema())
    report = checker.check(deep_chain)
    assert report.is_legal, str(report.violations[:3])


def test_deep_check_detects_violation(deep_chain):
    instance = deep_chain.copy()
    # break the deepest person: drop its required name value
    leaf = next(iter(instance.entries_with_class("person")))
    entry = instance.entry(leaf)
    entry.remove_value("name", next(iter(entry.values("name"))))
    report = LegalityChecker(whitepages_schema()).check(instance)
    assert not report.is_legal
    assert any(v.dn is not None and v.dn.startswith("uid=leaf,") for v in report)
