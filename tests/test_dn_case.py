"""DN resolution case consistency.

LDAP compares attribute names and (directory-string) RDN values
case-insensitively, so the DN index folds case on both halves:
``find("CN=Alice,...")`` and ``find("cn=alice,...")`` name one entry.
Display strings keep the spelling the entry was created with, and
stored attribute *values* keep their case too (``repro.model.types``
normalizes their representation, not their case).
"""

from __future__ import annotations

import pytest

from repro.errors import DuplicateEntryError, UpdateError
from repro.model.dn import DN, RDN, parse_dn
from repro.model.instance import DirectoryInstance
from repro.updates.incremental import IncrementalChecker
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_schema

ALICE = "cn=Alice,ou=People,o=Example"
ALICE_UPPER = "CN=ALICE,OU=PEOPLE,O=EXAMPLE"
ALICE_MIXED = "cN=aLiCe,Ou=pEoPlE,o=example"


def _people_instance() -> DirectoryInstance:
    inst = DirectoryInstance()
    inst.add_entry(None, "o=Example", ["top"])
    inst.add_entry("o=Example", "ou=People", ["top"])
    inst.add_entry("ou=People,o=Example", "cn=Alice", ["top"])
    return inst


class TestNormalizedForms:
    def test_rdn_normalized_folds_both_halves(self):
        assert RDN("CN", "Alice").normalized() == RDN("cn", "alice")

    def test_dn_normalized_folds_every_rdn(self):
        assert parse_dn(ALICE_UPPER).normalized() == parse_dn(ALICE).normalized()

    def test_ancestor_test_is_case_insensitive(self):
        assert parse_dn("O=EXAMPLE").is_ancestor_of(parse_dn(ALICE))
        assert not parse_dn("o=other").is_ancestor_of(parse_dn(ALICE))


class TestFind:
    def test_find_resolves_any_spelling(self):
        inst = _people_instance()
        entry = inst.find(ALICE)
        assert entry is not None
        assert inst.find(ALICE_UPPER) is entry
        assert inst.find(ALICE_MIXED) is entry

    def test_find_as_parsed_dn_object(self):
        inst = _people_instance()
        assert inst.find(parse_dn(ALICE_UPPER)) is inst.find(ALICE)

    def test_contains_is_case_insensitive(self):
        inst = _people_instance()
        assert ALICE_UPPER in inst
        assert "cn=bob,ou=People,o=Example" not in inst

    def test_display_string_keeps_original_spelling(self):
        inst = _people_instance()
        entry = inst.find(ALICE_UPPER)
        assert inst.dn_string_of(entry) == ALICE
        assert str(inst.dn_of(entry)) == ALICE


class TestMutationThroughAlternateSpelling:
    def test_add_under_upper_spelled_parent(self):
        inst = _people_instance()
        entry = inst.add_entry("OU=PEOPLE,O=EXAMPLE", "cn=Bob", ["top"])
        # The child's display DN uses the *parent's* stored spelling.
        assert inst.dn_string_of(entry) == "cn=Bob,ou=People,o=Example"
        assert inst.find("CN=BOB,ou=people,o=example") is entry

    def test_delete_through_alternate_spelling(self):
        inst = _people_instance()
        inst.delete_entry(ALICE_MIXED)
        assert inst.find(ALICE) is None
        assert len(inst) == 2

    def test_delete_subtree_through_alternate_spelling(self):
        inst = _people_instance()
        removed = inst.delete_subtree("OU=People,o=example")
        assert len(removed) == 2
        assert inst.find("ou=People,o=Example") is None
        assert inst.find(ALICE) is None
        # Reinsert works: the index entries really are gone.
        inst.add_entry("o=Example", "ou=People", ["top"])

    def test_case_variant_duplicate_rejected(self):
        inst = _people_instance()
        with pytest.raises(DuplicateEntryError):
            inst.add_entry("ou=People,o=Example", "CN=ALICE", ["top"])

    def test_extract_subtree_through_alternate_spelling(self):
        inst = _people_instance()
        copy = inst.extract_subtree("OU=PEOPLE,O=EXAMPLE")
        assert copy.find("cn=Alice,ou=People") is not None
        assert len(inst) == 3  # extract does not mutate


class TestTransactions:
    def test_distinctness_compares_normalized(self):
        tx = UpdateTransaction()
        tx.insert(ALICE, ["top"])
        tx.insert(ALICE_UPPER, ["top"])
        with pytest.raises(UpdateError, match="more than once"):
            tx.validate()

    def test_mixed_case_insert_chain_groups_into_one_subtree(self):
        """A parent inserted as `OU=...` and a child addressed via
        `ou=...` must land in one grafted subtree, not raise."""
        inst = _people_instance()
        tx = UpdateTransaction()
        tx.insert("OU=Eng,O=EXAMPLE", ["top"])
        tx.insert("cn=carol,ou=eng,o=example", ["top"])
        from repro.updates.transactions import decompose

        updates = decompose(tx, inst)
        assert len(updates) == 1
        assert len(updates[0].subtree) == 2

    def test_incremental_checker_mixed_case_parent(self):
        schema = whitepages_schema()
        fig1 = figure1_instance()
        guard = IncrementalChecker(schema, fig1)
        tx = UpdateTransaction()
        tx.insert(
            "UID=NEW,OU=DATABASES,OU=ATTLABS,O=ATT",
            ["person", "top"],
            {"uid": ["new"], "name": ["new person"]},
        )
        outcome = guard.apply_transaction(tx)
        assert outcome.applied
        assert fig1.find("uid=new,ou=databases,ou=attLabs,o=att") is not None

    def test_incremental_checker_mixed_case_delete(self):
        schema = whitepages_schema()
        fig1 = figure1_instance()
        guard = IncrementalChecker(schema, fig1)
        tx = UpdateTransaction().delete("UID=LAKS,OU=DATABASES,ou=attLabs,o=att")
        outcome = guard.apply_transaction(tx)
        assert outcome.applied
        assert fig1.find("uid=laks,ou=databases,ou=attLabs,o=att") is None

    def test_move_through_alternate_spelling(self):
        schema = whitepages_schema()
        fig1 = figure1_instance()
        guard = IncrementalChecker(schema, fig1)
        outcome = guard.try_move(
            "UID=LAKS,OU=DATABASES,OU=ATTLABS,O=ATT",
            new_parent="OU=ATTLABS,o=att",
        )
        assert outcome.applied
        assert fig1.find("uid=laks,ou=attLabs,o=att") is not None
        assert fig1.find("uid=laks,ou=databases,ou=attLabs,o=att") is None


class TestEmptyAndEscaped:
    def test_empty_dn_normalizes_to_itself(self):
        assert DN(()).normalized() == DN(())

    def test_escaped_comma_survives_normalization(self):
        inst = DirectoryInstance()
        inst.add_entry(None, RDN("cn", "Smith, John"), ["top"])
        assert inst.find("CN=smith\\, john") is not None
