"""Advisory-lock staleness: a crashed writer must not lock out the
world forever.

``flock`` locks normally die with their holder, but the lock's file
description can outlive the recorded holder pid — most simply when the
crashed writer's fd was inherited by a subprocess (``pass_fds``) that
is still running.  The pid file then names a dead process while the
flock is still held: before the fix, every open raised
``StoreLockedError(holder_pid=<dead pid>)`` forever.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess

import pytest

from repro.errors import StoreLockedError
from repro.store import DirectoryStore
from repro.store.journal import _pid_alive
from repro.store.recovery import LOCK_FILE
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema


def _make_store(tmp_path):
    store_dir = str(tmp_path / "store")
    store = DirectoryStore.create(
        store_dir, whitepages_schema(), figure1_instance(), whitepages_registry()
    )
    return store_dir, store


def _dead_pid() -> int:
    """A pid guaranteed dead: fork a child and reap it."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=lambda: None)
    proc.start()
    proc.join()
    assert not _pid_alive(proc.pid)
    return proc.pid


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert _pid_alive(os.getpid())

    def test_reaped_child_is_dead(self):
        assert not _pid_alive(_dead_pid())


class TestLiveLockStillConflicts:
    def test_second_open_raises_with_holder_pid(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        try:
            with pytest.raises(StoreLockedError) as excinfo:
                DirectoryStore.open(
                    store_dir, whitepages_schema(), whitepages_registry()
                )
            assert excinfo.value.holder_pid == os.getpid()
        finally:
            store.close()

    def test_reopens_after_clean_close(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        reopened = DirectoryStore.open(
            store_dir, whitepages_schema(), whitepages_registry()
        )
        reopened.close()


class TestStaleLockReclaim:
    def _hold_lock_as_dead_pid(self, store_dir, dead_pid):
        """Recreate the crashed-writer wreckage: the lock file records
        ``dead_pid`` while the flock is held by a *surviving* file
        description (here: a ``sleep`` subprocess that inherited the
        fd, exactly what a crashed writer's orphaned children do)."""
        import fcntl

        path = os.path.join(store_dir, LOCK_FILE)
        handle = open(path, "r+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        handle.seek(0)
        handle.truncate()
        handle.write(str(dead_pid))
        handle.flush()
        keeper = subprocess.Popen(
            ["sleep", "60"], pass_fds=(handle.fileno(),), close_fds=True
        )
        handle.close()  # our fd goes away; the keeper's copy holds the flock
        return keeper

    def test_dead_holder_is_reclaimed(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        keeper = self._hold_lock_as_dead_pid(store_dir, _dead_pid())
        try:
            # Sanity: the flock really is held by the keeper.
            import fcntl

            probe = open(os.path.join(store_dir, LOCK_FILE), "r")
            with pytest.raises(OSError):
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            probe.close()

            reopened = DirectoryStore.open(
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                assert not reopened.read_only
                assert reopened.instance.find("o=att") is not None
                # The reclaimed lock now records the live owner.
                with open(os.path.join(store_dir, LOCK_FILE)) as fh:
                    assert int(fh.read().strip()) == os.getpid()
            finally:
                reopened.close()
        finally:
            keeper.kill()
            keeper.wait()

    def test_reclaimed_lock_still_excludes_next_contender(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        keeper = self._hold_lock_as_dead_pid(store_dir, _dead_pid())
        try:
            reopened = DirectoryStore.open(
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                with pytest.raises(StoreLockedError) as excinfo:
                    DirectoryStore.open(
                        store_dir, whitepages_schema(), whitepages_registry()
                    )
                assert excinfo.value.holder_pid == os.getpid()
            finally:
                reopened.close()
        finally:
            keeper.kill()
            keeper.wait()

    def test_live_holder_in_lock_file_is_respected(self, tmp_path):
        """A lock whose recorded pid is alive must NOT be reclaimed
        even though the recording process isn't this one."""
        store_dir, store = _make_store(tmp_path)
        try:
            # Rewrite the pid file to a live foreign pid (pid 1 always
            # exists); the flock is held by `store` in-process.
            with open(os.path.join(store_dir, LOCK_FILE), "w") as fh:
                fh.write("1")
            with pytest.raises(StoreLockedError) as excinfo:
                DirectoryStore.open(
                    store_dir, whitepages_schema(), whitepages_registry()
                )
            assert excinfo.value.holder_pid == 1
        finally:
            store.close()
