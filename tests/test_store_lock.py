"""Advisory-lock staleness: a crashed writer must not lock out the
world forever.

``flock`` locks normally die with their holder, but the lock's file
description can outlive the recorded holder pid — most simply when the
crashed writer's fd was inherited by a subprocess (``pass_fds``) that
is still running.  The pid file then names a dead process while the
flock is still held: before the fix, every open raised
``StoreLockedError(holder_pid=<dead pid>)`` forever.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess

import pytest

from repro.errors import StoreLockedError
from repro.store import DirectoryStore
from repro.store.journal import _LOCK_GUARD_SUFFIX, _pid_alive
from repro.store.recovery import LOCK_FILE
from repro.workloads import figure1_instance, whitepages_registry, whitepages_schema


def _make_store(tmp_path):
    store_dir = str(tmp_path / "store")
    store = DirectoryStore.create(
        store_dir, whitepages_schema(), figure1_instance(), whitepages_registry()
    )
    return store_dir, store


def _dead_pid() -> int:
    """A pid guaranteed dead: fork a child and reap it."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=lambda: None)
    proc.start()
    proc.join()
    assert not _pid_alive(proc.pid)
    return proc.pid


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert _pid_alive(os.getpid())

    def test_reaped_child_is_dead(self):
        assert not _pid_alive(_dead_pid())


class TestLiveLockStillConflicts:
    def test_second_open_raises_with_holder_pid(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        try:
            with pytest.raises(StoreLockedError) as excinfo:
                DirectoryStore.open(
                    store_dir, whitepages_schema(), whitepages_registry()
                )
            assert excinfo.value.holder_pid == os.getpid()
        finally:
            store.close()

    def test_reopens_after_clean_close(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        reopened = DirectoryStore.open(
            store_dir, whitepages_schema(), whitepages_registry()
        )
        reopened.close()


class TestStaleLockReclaim:
    def _hold_lock_as_dead_pid(self, store_dir, dead_pid):
        """Recreate the crashed-writer wreckage: the lock file records
        ``dead_pid`` while the flock is held by a *surviving* file
        description (here: a ``sleep`` subprocess that inherited the
        fd, exactly what a crashed writer's orphaned children do)."""
        import fcntl

        path = os.path.join(store_dir, LOCK_FILE)
        handle = open(path, "r+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        handle.seek(0)
        handle.truncate()
        handle.write(str(dead_pid))
        handle.flush()
        keeper = subprocess.Popen(
            ["sleep", "60"], pass_fds=(handle.fileno(),), close_fds=True
        )
        handle.close()  # our fd goes away; the keeper's copy holds the flock
        return keeper

    def test_dead_holder_is_reclaimed(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        keeper = self._hold_lock_as_dead_pid(store_dir, _dead_pid())
        try:
            # Sanity: the flock really is held by the keeper.
            import fcntl

            probe = open(os.path.join(store_dir, LOCK_FILE), "r")
            with pytest.raises(OSError):
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            probe.close()

            reopened = DirectoryStore.open(
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                assert not reopened.read_only
                assert reopened.instance.find("o=att") is not None
                # The reclaimed lock now records the live owner.
                with open(os.path.join(store_dir, LOCK_FILE)) as fh:
                    assert int(fh.read().strip()) == os.getpid()
            finally:
                reopened.close()
        finally:
            keeper.kill()
            keeper.wait()

    def test_reclaimed_lock_still_excludes_next_contender(self, tmp_path):
        store_dir, store = _make_store(tmp_path)
        store.close()
        keeper = self._hold_lock_as_dead_pid(store_dir, _dead_pid())
        try:
            reopened = DirectoryStore.open(
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                with pytest.raises(StoreLockedError) as excinfo:
                    DirectoryStore.open(
                        store_dir, whitepages_schema(), whitepages_registry()
                    )
                assert excinfo.value.holder_pid == os.getpid()
            finally:
                reopened.close()
        finally:
            keeper.kill()
            keeper.wait()

    def test_guard_file_survives_reclaim(self, tmp_path):
        """The reclaim guard (``lock.guard``) is never unlinked — that
        is the property that makes serializing unlinks through it
        sound."""
        store_dir, store = _make_store(tmp_path)
        store.close()
        guard_path = os.path.join(store_dir, LOCK_FILE) + _LOCK_GUARD_SUFFIX
        assert os.path.exists(guard_path)
        keeper = self._hold_lock_as_dead_pid(store_dir, _dead_pid())
        try:
            reopened = DirectoryStore.open(
                store_dir, whitepages_schema(), whitepages_registry()
            )
            reopened.close()
            assert os.path.exists(guard_path)
        finally:
            keeper.kill()
            keeper.wait()

    def test_live_holder_in_lock_file_is_respected(self, tmp_path):
        """A lock whose recorded pid is alive must NOT be reclaimed
        even though the recording process isn't this one."""
        store_dir, store = _make_store(tmp_path)
        try:
            # Rewrite the pid file to a live foreign pid (pid 1 always
            # exists); the flock is held by `store` in-process.
            with open(os.path.join(store_dir, LOCK_FILE), "w") as fh:
                fh.write("1")
            with pytest.raises(StoreLockedError) as excinfo:
                DirectoryStore.open(
                    store_dir, whitepages_schema(), whitepages_registry()
                )
            assert excinfo.value.holder_pid == 1
        finally:
            store.close()


class TestReclaimRace:
    """The unlink side of reclaim must be inode-exact.  Two contenders
    that both probed the same dead holder race unlink against
    re-create; before the guard, the slower one deleted the lock file
    the faster one had just created and acquired — leaving both holding
    exclusive flocks on *different* inodes (two live writers).  These
    tests drive ``_reclaim_stale_lock`` directly through each
    interleaving the guard must defuse."""

    def _stale_lock(self, store_dir, pid):
        path = os.path.join(store_dir, LOCK_FILE)
        with open(path, "w") as fh:
            fh.write(str(pid))
        return path

    def test_reclaim_refuses_inode_it_did_not_probe(self, tmp_path):
        """Contender A retired the probed inode and acquired a fresh
        lock file before B's reclaim ran: B must leave A's lock
        alone."""
        store_dir, store = _make_store(tmp_path)
        store.close()
        path = self._stale_lock(store_dir, _dead_pid())
        probed = open(path, "a+")
        try:
            os.unlink(path)  # A's reclaim retires the probed inode...
            winner = DirectoryStore.open(  # ...and A acquires afresh.
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                DirectoryStore._reclaim_stale_lock(path, probed)
                # B's late reclaim must not have touched A's lock.
                assert os.path.exists(path)
                assert (
                    os.stat(path).st_ino != os.fstat(probed.fileno()).st_ino
                )
                with open(path) as fh:
                    assert int(fh.read().strip()) == os.getpid()
            finally:
                winner.close()
        finally:
            probed.close()

    def test_reclaim_respects_new_owner_on_probed_inode(self, tmp_path):
        """A new owner flocked the very inode B probed and recorded its
        (live) pid before B's reclaim ran: the re-probe under the guard
        backs off instead of unlinking a held lock."""
        store_dir, store = _make_store(tmp_path)
        store.close()
        path = self._stale_lock(store_dir, _dead_pid())
        probed = open(path, "a+")
        try:
            owner = DirectoryStore.open(  # same inode: no unlink ran
                store_dir, whitepages_schema(), whitepages_registry()
            )
            try:
                assert (
                    os.stat(path).st_ino == os.fstat(probed.fileno()).st_ino
                )
                DirectoryStore._reclaim_stale_lock(path, probed)
                assert os.path.exists(path)
                with open(path) as fh:
                    assert int(fh.read().strip()) == os.getpid()
            finally:
                owner.close()
        finally:
            probed.close()

    def test_reclaim_retires_unchanged_dead_inode(self, tmp_path):
        """The positive path: same inode, recorded holder still dead —
        the unlink goes through (and the guard file stays behind)."""
        store_dir, store = _make_store(tmp_path)
        store.close()
        path = self._stale_lock(store_dir, _dead_pid())
        probed = open(path, "a+")
        try:
            DirectoryStore._reclaim_stale_lock(path, probed)
            assert not os.path.exists(path)
            assert os.path.exists(path + _LOCK_GUARD_SUFFIX)
        finally:
            probed.close()

    def test_reclaim_leaves_empty_pid_file_alone(self, tmp_path):
        """An empty pid file could be an owner that crashed *before*
        recording — or one mid-recording right now.  Reclaim must not
        gamble: only a positively dead recorded pid licenses the
        unlink."""
        store_dir, store = _make_store(tmp_path)
        store.close()
        path = os.path.join(store_dir, LOCK_FILE)
        with open(path, "w"):
            pass  # truncate: no recorded holder
        probed = open(path, "a+")
        try:
            DirectoryStore._reclaim_stale_lock(path, probed)
            assert os.path.exists(path)
        finally:
            probed.close()
