"""The 2PC crash matrix: kill the coordinator/participant process at
every named protocol step and at every I/O boundary, and assert the
sharded store recovers to an all-or-nothing state.

The default lane runs the named-point matrix (every protocol step of
the commit and abort paths) plus a strided slice of the full I/O-op
matrix; the nightly slow lane runs every op index at three torn-write
fractions.  See ``tests/harness/crash2pc.py`` for the scenario and the
recovery properties.
"""

from __future__ import annotations

import pytest

from harness.crash2pc import (
    abort_tx,
    allowed_2pc_states,
    assert_atomic_recovery,
    commit_tx,
    dry_run_2pc,
    make_sharded,
    run_2pc_scenario,
)
from repro.store.faults import FaultPlan, FaultyIO, InjectedCrash

COMMIT_PATH_POINTS = (
    "2pc:begin",
    "2pc:prepared:att",
    "2pc:prepared:labs",
    "2pc:decision",
    "2pc:committed",
    "2pc:decided:att",
    "2pc:decided:labs",
    "2pc:complete",
)
# Every point at or before "2pc:decision" precedes the coordinator
# log's durable commit record — the single commit point — so a crash
# there must recover to the pre-transaction state; every point after it
# must recover to the committed state.
PRE_DECISION = COMMIT_PATH_POINTS[:4]
POST_DECISION = COMMIT_PATH_POINTS[4:]


class TestNamedFaultPoints:
    def test_commit_path_covers_every_protocol_step(self, tmp_path):
        _, plan = dry_run_2pc(tmp_path, transactions=[commit_tx(1)])
        assert tuple(plan.points) == COMMIT_PATH_POINTS

    @pytest.mark.parametrize("point", COMMIT_PATH_POINTS)
    def test_kill_at_point_on_commit_path(self, tmp_path, point):
        """Crashing at each named step of a committing 2PC round leaves
        — after recovery — exactly the state the commit point dictates:
        pre-transaction before the durable commit record, committed
        after it.  Never a mix."""
        states, _ = dry_run_2pc(tmp_path, transactions=[commit_tx(1)])
        path = str(tmp_path / "crash")
        make_sharded(path)
        io = FaultyIO(FaultPlan(crash_at_point=point))
        with pytest.raises(InjectedCrash):
            run_2pc_scenario(path, io, transactions=[commit_tx(1)])
        got = assert_atomic_recovery(path, states, io.plan.ops_executed - 1)
        expected = states[0][1] if point in PRE_DECISION else states[1][1]
        assert got == expected, (
            f"crash at {point}: recovered to the wrong side of the "
            "commit point"
        )

    def test_abort_path_points_and_recovery(self, tmp_path):
        """The abort path (composite rejection after the prepares)
        crosses begin/prepare/decide points but never the commit-side
        ones — and a crash at any of them recovers to the pre state."""
        states, plan = dry_run_2pc(tmp_path, transactions=[abort_tx()])
        points = tuple(plan.points)
        assert "2pc:begin" in points and "2pc:decided:att" in points
        assert "2pc:committed" not in points and "2pc:complete" not in points
        for point in dict.fromkeys(points):
            path = str(tmp_path / f"crash-{point.replace(':', '_')}")
            make_sharded(path)
            io = FaultyIO(FaultPlan(crash_at_point=point))
            with pytest.raises(InjectedCrash):
                run_2pc_scenario(path, io, transactions=[abort_tx()])
            got = assert_atomic_recovery(
                path, states, io.plan.ops_executed - 1
            )
            assert got == states[0][1], (
                f"crash at {point}: an aborting transaction must never "
                "surface its prepares"
            )


class TestOpMatrix:
    def test_strided_io_crash_matrix(self, tmp_path):
        """Default-lane smoke slice: every 5th I/O boundary of the full
        scenario (commit → abort → commit), full-frame writes."""
        self._run_matrix(tmp_path, stride=5, fractions=(1.0,))

    @pytest.mark.slow
    def test_every_io_boundary_and_torn_fraction(self, tmp_path):
        """Nightly lane: the full matrix — every I/O boundary of the
        scenario at three torn-write fractions."""
        self._run_matrix(tmp_path, stride=1, fractions=(0.0, 0.5, 1.0))

    @staticmethod
    def _run_matrix(tmp_path, stride, fractions):
        states, plan = dry_run_2pc(tmp_path)
        total_ops = plan.ops_executed
        assert total_ops >= 30, f"scenario too small: {plan.trace}"
        checked = 0
        for crash_op in range(0, total_ops, stride):
            for fraction in fractions:
                path = str(
                    tmp_path / f"crash-{crash_op}-{int(fraction * 10)}"
                )
                make_sharded(path)
                io = FaultyIO(
                    FaultPlan(crash_at_op=crash_op, torn_fraction=fraction)
                )
                try:
                    run_2pc_scenario(path, io)
                except InjectedCrash:
                    pass
                else:
                    pytest.fail(f"op {crash_op} never executed")
                assert_atomic_recovery(path, states, crash_op)
                checked += 1
        assert checked == len(fractions) * len(range(0, total_ops, stride))


def test_in_flight_states_match_dry_run(tmp_path):
    """The committed-prefix rule's sanity check: the undisturbed run's
    own decided states are each allowed at their recorded op index."""
    states, _ = dry_run_2pc(tmp_path)
    for ops, state in states:
        assert state in allowed_2pc_states(states, ops)
