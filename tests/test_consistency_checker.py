"""Schema-level consistency checking, witness synthesis, and the
bounded-model-finder differential (Theorem 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.checker import ConsistencyChecker, check_consistency
from repro.consistency.modelfinder import find_model
from repro.consistency.witness import WitnessSynthesisError, synthesize_witness
from repro.errors import InconsistentSchemaError
from repro.legality.checker import LegalityChecker
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema
from repro.workloads import (
    den_schema,
    den_schema_overconstrained,
    random_schema,
    whitepages_schema,
)


def tiny_schema(structure, classes=("a", "b", "c")):
    class_schema = ClassSchema()
    for name in classes:
        class_schema.add_core(name)
    return DirectorySchema(AttributeSchema(), class_schema, structure).validate()


class TestCheckerApi:
    def test_whitepages_consistent(self):
        result = check_consistency(whitepages_schema())
        assert result.consistent and result.proof() is None

    def test_den_consistent(self):
        assert check_consistency(den_schema()).consistent

    def test_den_overconstrained_inconsistent_with_proof(self):
        result = check_consistency(den_schema_overconstrained())
        assert not result.consistent
        proof = result.proof()
        assert "policyDomain" in proof and "∅ □" in proof

    def test_require_consistent_raises(self):
        with pytest.raises(InconsistentSchemaError, match="∅ □"):
            ConsistencyChecker(den_schema_overconstrained()).require_consistent()

    def test_require_consistent_returns_closure(self):
        closure = ConsistencyChecker(whitepages_schema()).require_consistent()
        assert closure.consistent

    def test_empty_classes_lint(self):
        schema = tiny_schema(
            StructureSchema().require_descendant("a", "a").require_class("b")
        )
        result = check_consistency(schema)
        assert result.consistent  # nothing forces class a to exist
        assert "a" in result.empty_classes()

    def test_bool_protocol(self):
        assert check_consistency(whitepages_schema())
        assert not check_consistency(den_schema_overconstrained())


class TestWitnessSynthesis:
    @pytest.mark.parametrize("make_schema", [whitepages_schema, den_schema])
    def test_witness_for_workload_schemas(self, make_schema):
        schema = make_schema()
        result = check_consistency(schema, synthesize=True)
        assert result.witness is not None, result.witness_error
        assert LegalityChecker(schema).is_legal(result.witness)

    def test_empty_structure_gives_empty_witness(self):
        schema = tiny_schema(StructureSchema())
        result = check_consistency(schema, synthesize=True)
        assert result.witness is not None and len(result.witness) == 0

    def test_required_parent_chain(self):
        schema = tiny_schema(
            StructureSchema()
            .require_class("c")
            .require_parent("c", "b")
            .require_parent("b", "a")
        )
        result = check_consistency(schema, synthesize=True)
        witness = result.witness
        assert witness is not None
        c_entry = next(
            witness.entry(e) for e in witness.entries_with_class("c")
        )
        chain = [a for a in witness.ancestors_of(c_entry)]
        assert chain[0].belongs_to("b")
        assert chain[1].belongs_to("a")

    def test_required_ancestor_stacking(self):
        schema = tiny_schema(
            StructureSchema().require_class("c").require_ancestor("c", "a")
        )
        result = check_consistency(schema, synthesize=True)
        witness = result.witness
        assert witness is not None
        c_entry = witness.entry(next(iter(witness.entries_with_class("c"))))
        assert any(a.belongs_to("a") for a in witness.ancestors_of(c_entry))

    def test_forbidden_child_detour(self):
        """a needs a b descendant but may not have a b child: the
        witness inserts a plain top entry in between."""
        schema = tiny_schema(
            StructureSchema()
            .require_class("a")
            .require_descendant("a", "b")
            .forbid_child("a", "b")
        )
        result = check_consistency(schema, synthesize=True)
        witness = result.witness
        assert witness is not None
        assert LegalityChecker(schema).is_legal(witness)
        a_entry = witness.entry(next(iter(witness.entries_with_class("a"))))
        assert not any(c.belongs_to("b") for c in witness.children_of(a_entry))
        assert any(d.belongs_to("b") for d in witness.descendants_of(a_entry))

    def test_witness_respects_required_attributes(self):
        classes = ClassSchema().add_core("a")
        attributes = AttributeSchema().declare("a", required=("name", "badge"))
        structure = StructureSchema().require_class("a")
        schema = DirectorySchema(attributes, classes, structure).validate()
        result = check_consistency(schema, synthesize=True)
        entry = result.witness.entry(
            next(iter(result.witness.entries_with_class("a")))
        )
        assert entry.has_attribute("name") and entry.has_attribute("badge")

    def test_witness_refuses_inconsistent_schema(self):
        from repro.consistency.engine import close

        schema = tiny_schema(
            StructureSchema()
            .require_class("a")
            .require_descendant("a", "b")
            .forbid_descendant("a", "b")
        )
        closure = close(schema.all_elements())
        with pytest.raises(WitnessSynthesisError):
            synthesize_witness(schema, closure)


class TestModelFinderDifferential:
    """The inference system vs. exhaustive bounded search: never unsound,
    and complete on all sampled small schemas."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_small_schemas(self, seed):
        schema = random_schema(
            n_classes=3, n_required=2, n_forbidden=1, n_required_classes=1,
            seed=seed, mode="any", max_depth=2,
        )
        verdict = check_consistency(schema).consistent
        model = find_model(schema, max_entries=4)
        if model is not None:
            # Soundness: a real model means the rules must NOT derive ⊥.
            assert verdict, f"unsound: model {model} exists but rules say ⊥"
        else:
            # Completeness up to the bound: no model of ≤4 entries.  A
            # consistent verdict would need a larger witness; try to
            # synthesize one and verify it.
            if verdict:
                result = check_consistency(schema, synthesize=True)
                assert result.witness is not None, (
                    f"rules say consistent, no model ≤4, and synthesis "
                    f"failed: {result.witness_error}"
                )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_injected_inconsistencies_always_detected(self, seed):
        for mode in ("cyclic", "contradictory"):
            schema = random_schema(
                n_classes=4, n_required=2, n_forbidden=1, seed=seed, mode=mode
            )
            assert not check_consistency(schema).consistent
            assert find_model(schema, max_entries=3) is None

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_consistent_schemas_admit_witnesses(self, seed):
        schema = random_schema(
            n_classes=5, n_required=3, n_forbidden=2, seed=seed, mode="consistent"
        )
        result = check_consistency(schema, synthesize=True)
        assert result.consistent
        assert result.witness is not None, result.witness_error
        assert LegalityChecker(schema).is_legal(result.witness)
