"""Tests for inconsistency repair suggestions."""

from hypothesis import given, settings, strategies as st

from repro.consistency.checker import check_consistency
from repro.consistency.engine import close
from repro.consistency.repair import proof_axioms, suggest_repairs
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.elements import ForbiddenEdge, RequiredClass, RequiredEdge
from repro.schema.structure_schema import StructureSchema
from repro.workloads import den_schema_overconstrained, random_schema


def flat(*names):
    classes = ClassSchema()
    for name in names:
        classes.add_core(name)
    return classes


def make(structure, classes=("a", "b", "c")):
    return DirectorySchema(AttributeSchema(), flat(*classes), structure).validate()


class TestProofAxioms:
    def test_consistent_closure_has_no_proof_axioms(self):
        closure = close([RequiredClass("a")])
        assert proof_axioms(closure) == set()

    def test_axioms_of_simple_conflict(self):
        from repro.axes import Axis

        elements = [
            RequiredClass("a"),
            RequiredEdge(Axis.DESCENDANT, "a", "b"),
            ForbiddenEdge(Axis.DESCENDANT, "a", "b"),
        ]
        closure = close(elements)
        axioms = proof_axioms(closure)
        # The ⊥-proof is grounded in exactly the conflicting axioms.
        assert axioms == set(elements)


class TestSuggestions:
    def test_consistent_schema_needs_no_repair(self):
        schema = make(StructureSchema().require_class("a"))
        assert suggest_repairs(schema) == []

    def test_single_element_repairs(self):
        schema = make(
            StructureSchema()
            .require_class("a")
            .require_descendant("a", "b")
            .forbid_descendant("a", "b")
        )
        suggestions = suggest_repairs(schema)
        assert suggestions, "a conflict this small must be repairable"
        # dropping any one of the three axioms fixes it
        assert all(len(s) == 1 for s in suggestions)
        texts = {str(next(iter(s.remove))) for s in suggestions}
        assert texts == {"a □", "a →→ b", "a ↛↛ b"}

    def test_repairs_actually_restore_consistency(self):
        schema = make(
            StructureSchema()
            .require_class("a")
            .require_child("a", "b")
            .require_descendant("b", "a")
        )
        for suggestion in suggest_repairs(schema):
            rebuilt = StructureSchema()
            for name in schema.structure_schema.required_classes:
                if RequiredClass(name) not in suggestion.remove:
                    rebuilt.require_class(name)
            for edge in schema.structure_schema.required_edges:
                if edge not in suggestion.remove:
                    rebuilt.require(edge.source, edge.axis, edge.target)
            for edge in schema.structure_schema.forbidden_edges:
                if edge not in suggestion.remove:
                    rebuilt.forbid(edge.source, edge.axis, edge.target)
            repaired = make(rebuilt)
            assert check_consistency(repaired).consistent, str(suggestion)

    def test_den_overconstrained_repair(self):
        suggestions = suggest_repairs(den_schema_overconstrained())
        assert suggestions
        # The obvious minimal fix: drop the authoring mistake.
        singles = {str(s) for s in suggestions if len(s) == 1}
        assert any("top ↛ policy" in s for s in singles)

    def test_multi_conflict_needs_larger_repair(self):
        structure = (
            StructureSchema()
            .require_class("a")
            # conflict 1
            .require_descendant("a", "b")
            .forbid_descendant("a", "b")
            # conflict 2 (independent)
            .require_child("a", "c")
            .forbid_child("a", "c")
        )
        schema = make(structure)
        suggestions = suggest_repairs(schema, max_suggestions=10)
        assert suggestions
        smallest = min(len(s) for s in suggestions)
        # dropping "a □" alone kills both conflicts
        assert smallest == 1
        one_element = [s for s in suggestions if len(s) == 1]
        assert {str(next(iter(s.remove))) for s in one_element} == {"a □"}

    def test_suggestions_are_minimal(self):
        schema = make(
            StructureSchema()
            .require_class("a")
            .require_descendant("a", "b")
            .forbid_descendant("a", "b")
        )
        suggestions = suggest_repairs(schema, max_suggestions=10)
        for s in suggestions:
            for other in suggestions:
                if s is not other:
                    assert not (other.remove < s.remove)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 5000))
    def test_random_inconsistent_schemas_are_repairable(self, seed):
        for mode in ("cyclic", "contradictory"):
            schema = random_schema(n_classes=4, n_required=2, n_forbidden=1,
                                   seed=seed, mode=mode)
            suggestions = suggest_repairs(schema)
            assert suggestions, f"{mode} seed {seed} had no repair"
