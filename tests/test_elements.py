"""Unit tests for schema elements' direct satisfaction semantics
(Definition 2.6)."""

import pytest

from repro.axes import Axis
from repro.model.instance import DirectoryInstance
from repro.schema.elements import (
    BOTTOM,
    EMPTY_CLASS,
    Disjoint,
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    Subclass,
)


def chain(labels):
    d = DirectoryInstance()
    parent = None
    for i, label_set in enumerate(labels):
        parent = d.add_entry(parent, f"o={i}", label_set)
    return d


class TestRequiredClass:
    def test_satisfied_when_populated(self):
        d = chain([["a", "top"]])
        assert RequiredClass("a").is_satisfied(d)

    def test_violated_when_absent(self):
        d = chain([["b", "top"]])
        assert not RequiredClass("a").is_satisfied(d)

    def test_bottom_never_satisfied(self):
        assert not BOTTOM.is_satisfied(chain([["a", "top"]]))
        assert not RequiredClass(EMPTY_CLASS).is_satisfied(DirectoryInstance())

    def test_str(self):
        assert str(RequiredClass("a")) == "a □"


class TestRequiredEdge:
    def test_child_satisfied(self):
        d = chain([["a", "top"], ["b", "top"]])
        assert RequiredEdge(Axis.CHILD, "a", "b").is_satisfied(d)

    def test_child_violated_by_grandchild_only(self):
        d = chain([["a", "top"], ["x", "top"], ["b", "top"]])
        assert not RequiredEdge(Axis.CHILD, "a", "b").is_satisfied(d)
        assert RequiredEdge(Axis.DESCENDANT, "a", "b").is_satisfied(d)

    def test_parent(self):
        d = chain([["b", "top"], ["a", "top"]])
        assert RequiredEdge(Axis.PARENT, "a", "b").is_satisfied(d)
        assert not RequiredEdge(Axis.PARENT, "b", "a").is_satisfied(d)

    def test_ancestor(self):
        d = chain([["b", "top"], ["x", "top"], ["a", "top"]])
        assert RequiredEdge(Axis.ANCESTOR, "a", "b").is_satisfied(d)

    def test_vacuous_when_source_absent(self):
        d = chain([["b", "top"]])
        assert RequiredEdge(Axis.CHILD, "a", "b").is_satisfied(d)

    def test_every_source_entry_must_comply(self):
        d = DirectoryInstance()
        ok = d.add_entry(None, "o=0", ["a", "top"])
        d.add_entry(ok, "o=1", ["b", "top"])
        d.add_entry(None, "o=2", ["a", "top"])  # childless a
        assert not RequiredEdge(Axis.CHILD, "a", "b").is_satisfied(d)

    def test_empty_target_means_source_must_be_empty(self):
        populated = chain([["a", "top"]])
        assert not RequiredEdge(Axis.DESCENDANT, "a", EMPTY_CLASS).is_satisfied(populated)
        unpopulated = chain([["b", "top"]])
        assert RequiredEdge(Axis.DESCENDANT, "a", EMPTY_CLASS).is_satisfied(unpopulated)

    def test_str_arrows(self):
        assert str(RequiredEdge(Axis.CHILD, "a", "b")) == "a → b"
        assert str(RequiredEdge(Axis.DESCENDANT, "a", "b")) == "a →→ b"
        assert str(RequiredEdge(Axis.PARENT, "a", "b")) == "a ← b"
        assert str(RequiredEdge(Axis.ANCESTOR, "a", "b")) == "a ←← b"


class TestForbiddenEdge:
    def test_child_forbidden(self):
        d = chain([["a", "top"], ["b", "top"]])
        assert not ForbiddenEdge(Axis.CHILD, "a", "b").is_satisfied(d)

    def test_grandchild_does_not_trip_child_form(self):
        d = chain([["a", "top"], ["x", "top"], ["b", "top"]])
        assert ForbiddenEdge(Axis.CHILD, "a", "b").is_satisfied(d)
        assert not ForbiddenEdge(Axis.DESCENDANT, "a", "b").is_satisfied(d)

    def test_satisfied_when_no_pairs(self):
        d = chain([["b", "top"], ["a", "top"]])  # b above a
        assert ForbiddenEdge(Axis.DESCENDANT, "a", "b").is_satisfied(d)

    def test_upward_axes_rejected(self):
        with pytest.raises(ValueError):
            ForbiddenEdge(Axis.PARENT, "a", "b")
        with pytest.raises(ValueError):
            ForbiddenEdge(Axis.ANCESTOR, "a", "b")

    def test_str(self):
        assert str(ForbiddenEdge(Axis.CHILD, "a", "b")) == "a ↛ b"
        assert str(ForbiddenEdge(Axis.DESCENDANT, "a", "b")) == "a ↛↛ b"


class TestSubclassAndDisjoint:
    def test_subclass_satisfied(self):
        d = chain([["a", "b", "top"]])
        assert Subclass("a", "b").is_satisfied(d)

    def test_subclass_violated(self):
        d = chain([["a", "top"]])
        assert not Subclass("a", "b").is_satisfied(d)

    def test_subclass_vacuous(self):
        d = chain([["c", "top"]])
        assert Subclass("a", "b").is_satisfied(d)

    def test_disjoint_satisfied(self):
        d = chain([["a", "top"], ["b", "top"]])
        assert Disjoint("a", "b").is_satisfied(d)

    def test_disjoint_violated(self):
        d = chain([["a", "b", "top"]])
        assert not Disjoint("a", "b").is_satisfied(d)

    def test_disjoint_normalization(self):
        assert Disjoint("z", "a").normalized() == Disjoint("a", "z")
        assert Disjoint("a", "z").normalized() == Disjoint("a", "z")

    def test_str(self):
        assert str(Subclass("a", "b")) == "a ⊑ b"
        assert str(Disjoint("a", "b")) == "a ⊥ b"
