"""Workload generators: every generated instance must be legal for its
schema, at multiple scales and seeds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import check_consistency
from repro.legality.checker import LegalityChecker
from repro.workloads import (
    den_schema,
    den_schema_overconstrained,
    generate_den,
    generate_whitepages,
    random_schema,
)


class TestWhitepages:
    def test_figure1_shape(self, fig1):
        assert len(fig1) == 6
        laks = fig1.entry("uid=laks,ou=databases,ou=attLabs,o=att")
        assert laks.classes == {
            "researcher", "facultyMember", "person", "online", "top"
        }
        assert len(laks.values("mail")) == 2
        suciu = fig1.entry("uid=suciu,ou=databases,ou=attLabs,o=att")
        assert not suciu.has_attribute("mail")  # heterogeneity motif

    def test_figure1_legal(self, wp_schema, fig1):
        assert LegalityChecker(wp_schema).is_legal(fig1)

    def test_schema_consistent(self, wp_schema):
        assert check_consistency(wp_schema).consistent

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_legal_across_seeds(self, wp_schema, seed):
        instance = generate_whitepages(orgs=2, units_per_level=2, depth=2,
                                       persons_per_unit=2, seed=seed)
        assert LegalityChecker(wp_schema).is_legal(instance)

    @pytest.mark.parametrize("orgs,units,depth", [(1, 1, 1), (3, 2, 1), (1, 2, 3)])
    def test_generated_legal_across_shapes(self, wp_schema, orgs, units, depth):
        instance = generate_whitepages(orgs=orgs, units_per_level=units,
                                       depth=depth, persons_per_unit=1, seed=1)
        assert LegalityChecker(wp_schema).is_legal(instance)

    def test_generation_is_deterministic(self):
        a = generate_whitepages(orgs=1, seed=42)
        b = generate_whitepages(orgs=1, seed=42)
        from repro.ldif import serialize_ldif

        assert serialize_ldif(a) == serialize_ldif(b)

    def test_scale_grows_instance(self):
        small = generate_whitepages(orgs=1, units_per_level=2, depth=1, seed=0)
        large = generate_whitepages(orgs=1, units_per_level=2, depth=3, seed=0)
        assert len(large) > 2 * len(small)

    def test_heterogeneity_present(self):
        """The introduction's motif: mail counts vary across persons."""
        instance = generate_whitepages(orgs=2, units_per_level=3, depth=2, seed=0)
        mail_counts = {
            len(instance.entry(e).values("mail"))
            for e in instance.entries_with_class("person")
        }
        assert 0 in mail_counts and len(mail_counts) >= 3

    def test_extras_schema_generated_instances_have_unique_uids(self, wp_schema_extras):
        instance = generate_whitepages(orgs=2, units_per_level=2, depth=2, seed=3)
        assert LegalityChecker(wp_schema_extras).is_legal(instance)


class TestDen:
    def test_schema_consistent(self, den):
        assert check_consistency(den).consistent

    def test_overconstrained_variant_inconsistent(self):
        assert not check_consistency(den_schema_overconstrained()).consistent

    @pytest.mark.parametrize("seed", range(3))
    def test_generated_legal(self, den, seed):
        instance = generate_den(sites=2, devices_per_site=3,
                                interfaces_per_device=2, domains=2,
                                policies_per_domain=3, seed=seed)
        assert LegalityChecker(den).is_legal(instance)

    def test_interfaces_typed_integers(self, den_instance):
        some_interface = next(iter(den_instance.entries_with_class("interface")))
        value = den_instance.entry(some_interface).first_value("ifIndex")
        assert isinstance(value, int)

    def test_routers_have_interfaces(self, den_instance):
        for eid in den_instance.entries_with_class("router"):
            children = den_instance.children_of(eid)
            assert any(c.belongs_to("interface") for c in children)


class TestRandomSchemas:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_consistent_mode_verdict(self, seed):
        schema = random_schema(seed=seed, mode="consistent")
        assert check_consistency(schema).consistent

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_injected_modes_verdicts(self, seed):
        assert not check_consistency(random_schema(seed=seed, mode="cyclic")).consistent
        assert not check_consistency(
            random_schema(seed=seed, mode="contradictory")
        ).consistent

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            random_schema(mode="chaotic", max_attempts=1)

    def test_schemas_validate(self):
        for seed in range(5):
            random_schema(seed=seed, mode="any").validate()

    def test_determinism(self):
        from repro.schema.dsl import serialize_dsl

        assert serialize_dsl(random_schema(seed=9)) == serialize_dsl(
            random_schema(seed=9)
        )
