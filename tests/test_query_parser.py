"""Tests for the hierarchical-query surface-syntax parser."""

import pytest
from hypothesis import given, strategies as st

from repro.axes import Axis
from repro.errors import FilterSyntaxError, QueryError
from repro.query.ast import HSelect, Minus, Query, Select
from repro.query.evaluator import evaluate
from repro.query.filters import Equals, Present
from repro.query.query_parser import parse_query
from repro.query.translate import translate_element
from repro.workloads import whitepages_schema


def oc(name):
    return Select(Equals("objectClass", name))


class TestParsing:
    def test_atomic(self):
        assert parse_query("(objectClass=person)") == oc("person")

    def test_compound_filter_atomic(self):
        parsed = parse_query("(&(objectClass=person)(mail=*))")
        assert isinstance(parsed, Select)
        assert parsed.filter.operands == (
            Equals("objectClass", "person"), Present("mail"),
        )

    @pytest.mark.parametrize("code,axis", [
        ("c", Axis.CHILD), ("p", Axis.PARENT),
        ("d", Axis.DESCENDANT), ("a", Axis.ANCESTOR),
    ])
    def test_axes(self, code, axis):
        parsed = parse_query(f"({code} (objectClass=a) (objectClass=b))")
        assert parsed == HSelect(axis, oc("a"), oc("b"))

    @pytest.mark.parametrize("token", ["σ⁻", "?", "minus", "sigma-"])
    def test_minus_spellings(self, token):
        parsed = parse_query(f"({token} (objectClass=a) (objectClass=b))")
        assert parsed == Minus(oc("a"), oc("b"))

    def test_nested(self):
        parsed = parse_query(
            "(σ⁻ (objectClass=orgGroup) "
            "(d (objectClass=orgGroup) (objectClass=person)))"
        )
        assert parsed == Minus(
            oc("orgGroup"),
            HSelect(Axis.DESCENDANT, oc("orgGroup"), oc("person")),
        )

    def test_filter_named_like_axis_stays_a_filter(self):
        # "(c=1)" must parse as an equality on attribute "c"
        parsed = parse_query("(c=1)")
        assert parsed == Select(Equals("c", "1"))

    def test_whitespace_tolerant(self):
        parsed = parse_query("  ( c   (objectClass=a)   (objectClass=b) )  ")
        assert parsed == HSelect(Axis.CHILD, oc("a"), oc("b"))

    @pytest.mark.parametrize("bad", [
        "", "objectClass=a", "(c (objectClass=a))",
        "(c (objectClass=a) (objectClass=b) (objectClass=x))",
        "(c (objectClass=a) (objectClass=b)", "(objectClass=a))",
    ])
    def test_malformed(self, bad):
        with pytest.raises((QueryError, FilterSyntaxError)):
            parse_query(bad)


class TestRoundTrip:
    def test_figure4_queries_roundtrip(self):
        schema = whitepages_schema()
        for element in schema.structure_schema.elements():
            query = translate_element(element).query
            assert parse_query(str(query)) == query

    @given(st.integers(0, 10_000))
    def test_random_queries_roundtrip(self, seed):
        import random

        rng = random.Random(seed)

        def build(depth) -> Query:
            if depth == 0 or rng.random() < 0.4:
                return oc(rng.choice("abc"))
            if rng.random() < 0.5:
                return Minus(build(depth - 1), build(depth - 1))
            return HSelect(rng.choice(list(Axis)), build(depth - 1), build(depth - 1))

        query = build(3)
        assert parse_query(str(query)) == query

    def test_parsed_query_evaluates(self, fig1):
        parsed = parse_query(
            "(σ⁻ (objectClass=orgGroup) "
            "(d (objectClass=orgGroup) (objectClass=person)))"
        )
        assert evaluate(parsed, fig1) == set()
        parsed = parse_query("(a (&(objectClass=person)(mail=*)) (objectClass=organization))")
        assert len(evaluate(parsed, fig1)) == 1
