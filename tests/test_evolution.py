"""Tests for schema-evolution analysis (Section 6.2 made executable).

The key property: a diff classified as lightweight (only relaxing
changes) never invalidates an instance that was legal under the old
schema."""


from hypothesis import given, settings, strategies as st

from repro.legality.checker import LegalityChecker
from repro.schema.evolution import EvolutionAnalyzer
from repro.workloads import generate_whitepages, whitepages_schema


def fresh_pair():
    return whitepages_schema(), whitepages_schema()


class TestDiffing:
    def test_identical_schemas_have_no_changes(self):
        old, new = fresh_pair()
        report = EvolutionAnalyzer(old, new).analyze()
        assert len(report) == 0 and report.lightweight
        assert str(report) == "no schema changes"

    def test_new_allowed_attribute_is_relaxing(self):
        old, new = fresh_pair()
        new.attribute_schema._allowed["person"] = (
            new.attribute_schema.allowed("person") | {"pager"}
        )
        report = EvolutionAnalyzer(old, new).analyze()
        assert report.lightweight
        assert any(c.kind == "attribute-now-allowed" for c in report)

    def test_new_required_attribute_is_narrowing(self):
        old, new = fresh_pair()
        new.attribute_schema._required["person"] = (
            new.attribute_schema.required("person") | {"badge"}
        )
        new.attribute_schema._allowed["person"] = (
            new.attribute_schema.allowed("person") | {"badge"}
        )
        report = EvolutionAnalyzer(old, new).analyze()
        assert not report.lightweight
        assert any(c.kind == "attribute-now-required" for c in report)

    def test_new_auxiliary_and_aux_grant_are_relaxing(self):
        old, new = fresh_pair()
        new.class_schema.add_auxiliary("vpnUser")
        new.class_schema.allow_auxiliary("person", "vpnUser")
        report = EvolutionAnalyzer(old, new).analyze()
        assert report.lightweight
        kinds = {c.kind for c in report}
        assert kinds == {"auxiliary-class-added", "aux-allowed"}

    def test_withdrawn_aux_is_narrowing(self):
        old, new = fresh_pair()
        new.class_schema._aux_of["person"].discard("online")
        report = EvolutionAnalyzer(old, new).analyze()
        assert any(c.kind == "aux-withdrawn" for c in report)
        assert not report.lightweight

    def test_new_core_class_is_relaxing(self):
        old, new = fresh_pair()
        new.class_schema.add_core("contractor", parent="person")
        report = EvolutionAnalyzer(old, new).analyze()
        assert report.lightweight

    def test_reparenting_is_narrowing(self):
        old, new = fresh_pair()
        new.class_schema._parent["researcher"] = "orgGroup"
        report = EvolutionAnalyzer(old, new).analyze()
        assert any(c.kind == "core-class-reparented" for c in report)
        assert not report.lightweight

    def test_dropping_structure_elements_is_relaxing(self):
        old, new = fresh_pair()
        new.structure_schema._forbidden_edges.clear()
        new.structure_schema._required_classes.discard("person")
        report = EvolutionAnalyzer(old, new).analyze()
        assert report.lightweight
        kinds = {c.kind for c in report}
        assert "relationship-no-longer-forbidden" in kinds
        assert "class-no-longer-required" in kinds

    def test_adding_structure_elements_is_narrowing(self):
        old, new = fresh_pair()
        new.structure_schema.require_child("orgUnit", "person")
        new.structure_schema.forbid_descendant("organization", "organization")
        report = EvolutionAnalyzer(old, new).analyze()
        narrowing = {c.kind for c in report.narrowing_changes()}
        assert narrowing == {
            "relationship-now-required", "relationship-now-forbidden"
        }

    def test_str_shows_verdict(self):
        old, new = fresh_pair()
        new.structure_schema.require_class("staffMember")
        text = str(EvolutionAnalyzer(old, new).analyze())
        assert "NEEDS RE-VALIDATION" in text


class TestLightweightContract:
    """Relaxing-only evolutions preserve legality of every old-legal
    instance."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_relaxing_changes_preserve_legality(self, seed):
        old = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed)
        assert LegalityChecker(old).is_legal(instance)

        new = whitepages_schema()
        # a representative batch of relaxing changes
        new.class_schema.add_auxiliary("vpnUser")
        new.class_schema.allow_auxiliary("person", "vpnUser")
        new.class_schema.add_core("contractor", parent="person")
        new.attribute_schema._allowed["person"] = (
            new.attribute_schema.allowed("person") | {"pager"}
        )
        new.structure_schema._forbidden_edges = {
            e for e in new.structure_schema._forbidden_edges
            if e.source != "top"
        }
        analyzer = EvolutionAnalyzer(old, new)
        report = analyzer.analyze()
        assert report.lightweight, str(report)
        assert analyzer.revalidate(instance).is_legal

    def test_narrowing_change_detected_by_revalidation(self, fig1):
        old = whitepages_schema()
        new = whitepages_schema()
        new.attribute_schema._required["orgUnit"] = frozenset({"ou", "location"})
        new.attribute_schema._allowed["orgUnit"] = (
            new.attribute_schema.allowed("orgUnit") | {"location"}
        )
        analyzer = EvolutionAnalyzer(old, new)
        assert not analyzer.analyze().lightweight
        # Figure 1's databases unit has no location -> now illegal.
        report = analyzer.revalidate(fig1)
        assert not report.is_legal
        assert any("location" in v.message for v in report)
