"""CLI surface of sharded stores (``create --shard``, ``check
--shards``, ``fsck --shards``) plus the follow-mode shutdown behavior:
Ctrl-C is a normal exit (0, message, no traceback) and a store that
vanishes mid-follow ends the loop with a clear message and exit 1 —
for both the single-store and the sharded follow paths."""

from __future__ import annotations

import shutil

import pytest

from repro.cli import main
from repro.ldif import dump_ldif
from repro.schema.dsl import dump_dsl
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_schema

SHARD_ARGS = ["--shard", "att=o=att", "--shard", "labs=ou=attLabs,o=att"]


@pytest.fixture()
def paths(tmp_path):
    schema_path = tmp_path / "schema.dsl"
    data_path = tmp_path / "data.ldif"
    dump_dsl(whitepages_schema(), str(schema_path))
    dump_ldif(figure1_instance(), str(data_path))
    return str(schema_path), str(data_path), tmp_path


@pytest.fixture()
def sharded_store(paths, capsys):
    """A sharded store created through the CLI itself."""
    schema, data, tmp = paths
    path = str(tmp / "shstore")
    assert main(["create", path, "--schema", schema, "--data", data,
                 *SHARD_ARGS]) == 0
    capsys.readouterr()
    return schema, path


def _corrupt_composite(path, schema_path):
    """Commit a shard-locally legal but composite-illegal change: under
    the nested cut the labs shard has no structural edges of its own,
    so an empty orgUnit sails through its guard."""
    from repro.schema.dsl import load_dsl
    from repro.store.sharded import ShardedStore

    writer = ShardedStore.open_shard(path, "labs", load_dsl(schema_path))
    try:
        tx = UpdateTransaction().insert(
            "ou=ghost,ou=attLabs", ["orgUnit", "orgGroup", "top"],
            {"ou": ["ghost"]},
        )
        assert writer.apply(tx).applied
    finally:
        writer.close()


class TestCreate:
    def test_create_plain_store(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "plain")
        assert main(["create", path, "--schema", schema, "--data", data]) == 0
        out = capsys.readouterr().out
        assert f"created store {path} (6 entries)" in out

    def test_create_sharded_store_prints_partition(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "sh")
        assert main(["create", path, "--schema", schema, "--data", data,
                     *SHARD_ARGS]) == 0
        out = capsys.readouterr().out
        assert "created sharded store" in out and "2 shard(s)" in out
        assert "att: base o=att (2 entries)" in out
        assert "labs: base ou=attLabs,o=att (4 entries)" in out

    def test_create_rejects_unroutable_data(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "sh")
        assert main(["create", path, "--schema", schema, "--data", data,
                     "--shard", "labs-only=ou=attLabs,o=att"]) == 1
        err = capsys.readouterr().err
        assert "create:" in err and "owns its parent" in err

    def test_create_rejects_malformed_shard_flag(self, paths, capsys):
        schema, data, tmp = paths
        assert main(["create", str(tmp / "sh"), "--schema", schema,
                     "--data", data, "--shard", "att"]) == 1
        assert "NAME=BASE_DN" in capsys.readouterr().err

    def test_create_refuses_existing_directory(self, sharded_store, paths,
                                               capsys):
        schema, data, _tmp = paths
        _, path = sharded_store
        assert main(["create", path, "--schema", schema, "--data", data,
                     *SHARD_ARGS]) == 1
        assert "refusing to create" in capsys.readouterr().err


class TestCheckShards:
    def test_one_shot_legal(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 0
        out = capsys.readouterr().out
        assert "[att@g1.0 labs@g1.0] LEGAL: 6 entries" in out

    def test_parallel_jobs_one_shot(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--jobs", "2"]) == 0
        assert "LEGAL: 6 entries across shards (2 jobs)" in \
            capsys.readouterr().out

    def test_composite_violation_fails(self, sharded_store, capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 1
        out = capsys.readouterr().out
        assert "ILLEGAL" in out and "person" in out

    def test_parallel_jobs_see_composite_violation(self, sharded_store,
                                                   capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--jobs", "2"]) == 1
        assert "ILLEGAL" in capsys.readouterr().out

    def test_follow_sees_new_commits(self, sharded_store, capsys):
        from repro.schema.dsl import load_dsl
        from repro.store.sharded import ShardedStore

        schema, path = sharded_store
        with ShardedStore.open(path, load_dsl(schema)) as store:
            tx = UpdateTransaction().insert(
                "uid=late,ou=attLabs,o=att", ["person", "top"],
                {"uid": ["late"], "name": ["l ate"]},
            )
            assert store.apply(tx).applied
            assert main(["check", "--schema", schema, "--store", path,
                         "--shards", "--follow", "--iterations", "2",
                         "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[att@g1.0 labs@g1.1] LEGAL: 7 entries" in out

    def test_not_a_sharded_store(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "plain")
        assert main(["create", path, "--schema", schema, "--data", data]) == 0
        capsys.readouterr()
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 1
        assert "cannot read shard map" in capsys.readouterr().err


class TestFsckShards:
    def test_healthy_sharded_store(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "shard map: 2 shard(s) [nested cut]" in out
        assert "att: base o=att" in out
        assert "labs: base ou=attLabs,o=att" in out
        assert "att: generation 1, seq 0 (2 entries; current)" in out
        assert "labs: generation 1, seq 0 (4 entries; current)" in out
        assert "scope:" in out
        assert "COMPOSITE VIEW CONSISTENT" in out

    def test_requires_schema(self, sharded_store, capsys):
        _, path = sharded_store
        assert main(["fsck", path, "--shards"]) == 2
        assert "requires --schema" in capsys.readouterr().err

    def test_not_a_sharded_store(self, paths, capsys):
        schema, _, tmp = paths
        assert main(["fsck", str(tmp / "nope"), "--schema", schema,
                     "--shards"]) == 1
        assert "cannot read shard map" in capsys.readouterr().out

    def test_composite_violation_reported(self, sharded_store, capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 1
        out = capsys.readouterr().out
        assert "legality: ILLEGAL" in out
        assert "COMPOSITE VIEW CONSISTENT" not in out


@pytest.fixture()
def plain_store(paths, capsys):
    schema, data, tmp = paths
    path = str(tmp / "fstore")
    assert main(["create", path, "--schema", schema, "--data", data]) == 0
    capsys.readouterr()
    return schema, path


class TestFollowShutdown:
    """``check --follow`` ends cleanly: Ctrl-C is exit 0 with a message
    (never a traceback), a vanished store is a clear message + exit 1."""

    def _sleep_hook(self, monkeypatch, action):
        import time

        monkeypatch.setattr(time, "sleep", lambda _seconds: action())

    def test_interrupt_exits_zero(self, plain_store, capsys, monkeypatch):
        schema, path = plain_store

        def interrupt():
            raise KeyboardInterrupt

        self._sleep_hook(monkeypatch, interrupt)
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow"]) == 0
        captured = capsys.readouterr()
        assert "follow interrupted; exiting" in captured.err
        assert "LEGAL" in captured.out

    def test_store_removed_mid_follow(self, plain_store, capsys, monkeypatch):
        schema, path = plain_store
        self._sleep_hook(monkeypatch, lambda: shutil.rmtree(path))
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow"]) == 1
        err = capsys.readouterr().err
        assert "is gone (removed or compacted away); stopping follow" in err
        assert "Traceback" not in err

    def test_sharded_interrupt_exits_zero(self, sharded_store, capsys,
                                          monkeypatch):
        schema, path = sharded_store

        def interrupt():
            raise KeyboardInterrupt

        self._sleep_hook(monkeypatch, interrupt)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--follow"]) == 0
        captured = capsys.readouterr()
        assert "follow interrupted; exiting" in captured.err
        assert "LEGAL: 6 entries" in captured.out

    def test_sharded_store_removed_mid_follow(self, sharded_store, capsys,
                                              monkeypatch):
        schema, path = sharded_store
        self._sleep_hook(monkeypatch, lambda: shutil.rmtree(path))
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--follow"]) == 1
        err = capsys.readouterr().err
        assert "is gone (removed mid-follow); stopping follow" in err
        assert "Traceback" not in err
