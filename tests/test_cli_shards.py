"""CLI surface of sharded stores (``create --shard``, ``check
--shards``, ``fsck --shards`` with its healthy/degraded/in-doubt exit
codes, ``recover --shards`` resolving in-doubt 2PC participants,
``--wait-lock`` backoff on held advisory locks) plus the follow-mode
shutdown behavior: Ctrl-C is a normal exit (0, message, no traceback)
and a store that vanishes mid-follow ends the loop with a clear
message and exit 1 — for both the single-store and the sharded follow
paths."""

from __future__ import annotations

import shutil

import pytest

from repro.cli import main
from repro.ldif import dump_ldif
from repro.schema.dsl import dump_dsl
from repro.updates.operations import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_schema

SHARD_ARGS = ["--shard", "att=o=att", "--shard", "labs=ou=attLabs,o=att"]


@pytest.fixture()
def paths(tmp_path):
    schema_path = tmp_path / "schema.dsl"
    data_path = tmp_path / "data.ldif"
    dump_dsl(whitepages_schema(), str(schema_path))
    dump_ldif(figure1_instance(), str(data_path))
    return str(schema_path), str(data_path), tmp_path


@pytest.fixture()
def sharded_store(paths, capsys):
    """A sharded store created through the CLI itself."""
    schema, data, tmp = paths
    path = str(tmp / "shstore")
    assert main(["create", path, "--schema", schema, "--data", data,
                 *SHARD_ARGS]) == 0
    capsys.readouterr()
    return schema, path


def _corrupt_composite(path, schema_path):
    """Commit a shard-locally legal but composite-illegal change: under
    the nested cut the labs shard has no structural edges of its own,
    so an empty orgUnit sails through its guard."""
    from repro.schema.dsl import load_dsl
    from repro.store.sharded import ShardedStore

    writer = ShardedStore.open_shard(path, "labs", load_dsl(schema_path))
    try:
        tx = UpdateTransaction().insert(
            "ou=ghost,ou=attLabs", ["orgUnit", "orgGroup", "top"],
            {"ou": ["ghost"]},
        )
        assert writer.apply(tx).applied
    finally:
        writer.close()


class TestCreate:
    def test_create_plain_store(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "plain")
        assert main(["create", path, "--schema", schema, "--data", data]) == 0
        out = capsys.readouterr().out
        assert f"created store {path} (6 entries)" in out

    def test_create_sharded_store_prints_partition(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "sh")
        assert main(["create", path, "--schema", schema, "--data", data,
                     *SHARD_ARGS]) == 0
        out = capsys.readouterr().out
        assert "created sharded store" in out and "2 shard(s)" in out
        assert "att: base o=att (2 entries)" in out
        assert "labs: base ou=attLabs,o=att (4 entries)" in out

    def test_create_rejects_unroutable_data(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "sh")
        assert main(["create", path, "--schema", schema, "--data", data,
                     "--shard", "labs-only=ou=attLabs,o=att"]) == 1
        err = capsys.readouterr().err
        assert "create:" in err and "owns its parent" in err

    def test_create_rejects_malformed_shard_flag(self, paths, capsys):
        schema, data, tmp = paths
        assert main(["create", str(tmp / "sh"), "--schema", schema,
                     "--data", data, "--shard", "att"]) == 1
        assert "NAME=BASE_DN" in capsys.readouterr().err

    def test_create_refuses_existing_directory(self, sharded_store, paths,
                                               capsys):
        schema, data, _tmp = paths
        _, path = sharded_store
        assert main(["create", path, "--schema", schema, "--data", data,
                     *SHARD_ARGS]) == 1
        assert "refusing to create" in capsys.readouterr().err


class TestCheckShards:
    def test_one_shot_legal(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 0
        out = capsys.readouterr().out
        assert "[att@g1.0 labs@g1.0] LEGAL: 6 entries" in out

    def test_parallel_jobs_one_shot(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--jobs", "2"]) == 0
        assert "LEGAL: 6 entries across shards (2 jobs)" in \
            capsys.readouterr().out

    def test_composite_violation_fails(self, sharded_store, capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 1
        out = capsys.readouterr().out
        assert "ILLEGAL" in out and "person" in out

    def test_parallel_jobs_see_composite_violation(self, sharded_store,
                                                   capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--jobs", "2"]) == 1
        assert "ILLEGAL" in capsys.readouterr().out

    def test_follow_sees_new_commits(self, sharded_store, capsys):
        from repro.schema.dsl import load_dsl
        from repro.store.sharded import ShardedStore

        schema, path = sharded_store
        with ShardedStore.open(path, load_dsl(schema)) as store:
            tx = UpdateTransaction().insert(
                "uid=late,ou=attLabs,o=att", ["person", "top"],
                {"uid": ["late"], "name": ["l ate"]},
            )
            assert store.apply(tx).applied
            assert main(["check", "--schema", schema, "--store", path,
                         "--shards", "--follow", "--iterations", "2",
                         "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[att@g1.0 labs@g1.1] LEGAL: 7 entries" in out

    @pytest.mark.parametrize("interval", ["0", "-2"])
    def test_follow_rejects_non_positive_interval(
        self, sharded_store, capsys, interval
    ):
        # The busy-spin guard covers the --shards follow path too, and
        # fires before the composite reader is even opened.
        schema, path = sharded_store
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--follow", "--interval", interval,
                     "--iterations", "1"]) == 2
        assert "--interval must be positive" in capsys.readouterr().err

    def test_not_a_sharded_store(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "plain")
        assert main(["create", path, "--schema", schema, "--data", data]) == 0
        capsys.readouterr()
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 1
        assert "cannot read shard map" in capsys.readouterr().err


class TestFsckShards:
    def test_healthy_sharded_store(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "shard map: 2 shard(s) [nested cut]" in out
        assert "att: base o=att" in out
        assert "labs: base ou=attLabs,o=att" in out
        assert ("att: generation 1, seq 0 "
                "(2 entries; current; index sidecar present)") in out
        assert ("labs: generation 1, seq 0 "
                "(4 entries; current; index sidecar present)") in out
        assert "scope:" in out
        assert "COMPOSITE VIEW CONSISTENT" in out

    def test_requires_schema(self, sharded_store, capsys):
        _, path = sharded_store
        assert main(["fsck", path, "--shards"]) == 2
        assert "requires --schema" in capsys.readouterr().err

    def test_not_a_sharded_store(self, paths, capsys):
        schema, _, tmp = paths
        assert main(["fsck", str(tmp / "nope"), "--schema", schema,
                     "--shards"]) == 1
        assert "cannot read shard map" in capsys.readouterr().out

    def test_composite_violation_reported(self, sharded_store, capsys):
        schema, path = sharded_store
        _corrupt_composite(path, schema)
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 1
        out = capsys.readouterr().out
        assert "legality: ILLEGAL" in out
        assert "COMPOSITE VIEW CONSISTENT" not in out


def _strand_in_doubt(path, schema_path, point):
    """Crash a spanning transaction mid-2PC, leaving prepared-but-
    unresolved participants on disk for fsck/recover to find."""
    from repro.schema.dsl import load_dsl
    from repro.store.faults import FaultPlan, FaultyIO, InjectedCrash
    from repro.store.sharded import ShardedStore

    io = FaultyIO(FaultPlan(crash_at_point=point))
    store = ShardedStore.open(path, load_dsl(schema_path), io=io)
    tx = (
        UpdateTransaction()
        .insert("uid=x,o=att", ["person", "top"],
                {"uid": ["x"], "name": ["x att"]})
        .insert("uid=y,ou=databases,ou=attLabs,o=att", ["person", "top"],
                {"uid": ["y"], "name": ["y labs"]})
    )
    try:
        with pytest.raises(InjectedCrash):
            store.apply(tx)
    finally:
        store.close()  # a dead process drops its advisory locks


class TestInDoubt2PC:
    """``fsck --shards`` exit 3 on in-doubt 2PC state and
    ``recover --shards`` resolving it with the coordinator's verdict."""

    def test_fsck_reports_undecided_prepares(self, sharded_store, capsys):
        schema, path = sharded_store
        _strand_in_doubt(path, schema, "2pc:prepared:labs")
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 3
        out = capsys.readouterr().out
        assert ("IN DOUBT: shard att holds prepared transaction tx-1 "
                "(coordinator verdict: abort)") in out
        assert "IN DOUBT: shard labs" in out
        assert "IN-DOUBT 2PC STATE (run `recover --shards` to resolve)" in out
        assert "COMPOSITE VIEW CONSISTENT" not in out

    def test_recover_shards_aborts_undecided(self, sharded_store, capsys):
        schema, path = sharded_store
        _strand_in_doubt(path, schema, "2pc:prepared:labs")
        assert main(["recover", path, "--schema", schema, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "resolved 1 in-doubt 2PC transaction(s): tx-1" in out
        assert "SHARDS RECOVERED" in out
        # presumed abort: the store is healthy and the tx left no trace
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "COMPOSITE VIEW CONSISTENT" in out
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 0
        assert "LEGAL: 6 entries" in capsys.readouterr().out

    def test_recover_shards_commits_decided(self, sharded_store, capsys):
        """A crash after the durable commit record but before the
        participants heard the verdict: fsck names the commit verdict,
        recover finishes the transaction."""
        schema, path = sharded_store
        _strand_in_doubt(path, schema, "2pc:decided:att")
        assert main(["fsck", path, "--schema", schema, "--shards"]) == 3
        out = capsys.readouterr().out
        assert ("IN DOUBT: shard labs holds prepared transaction tx-1 "
                "(coordinator verdict: commit)") in out
        assert main(["recover", path, "--schema", schema, "--shards"]) == 0
        assert "resolved 1 in-doubt" in capsys.readouterr().out
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards"]) == 0
        assert "LEGAL: 8 entries" in capsys.readouterr().out

    def test_recover_shards_requires_schema(self, sharded_store, capsys):
        _, path = sharded_store
        assert main(["recover", path, "--shards"]) == 2
        assert "requires --schema" in capsys.readouterr().err

    def test_recover_shards_healthy_store(self, sharded_store, capsys):
        schema, path = sharded_store
        assert main(["recover", path, "--schema", schema, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "no in-doubt 2PC transactions" in out
        assert "SHARDS RECOVERED" in out

    def test_recover_shards_not_a_sharded_store(self, plain_store, capsys):
        schema, path = plain_store
        assert main(["recover", path, "--schema", schema, "--shards"]) == 1
        assert "recover:" in capsys.readouterr().out


class TestWaitLock:
    """``--wait-lock SECONDS``: bounded backoff on a held advisory
    lock, reporting the holder's pid, instead of failing immediately."""

    def _hold_shard_lock(self, path, schema_path):
        from repro.schema.dsl import load_dsl
        from repro.store.sharded import ShardedStore

        return ShardedStore.open_shard(path, "att", load_dsl(schema_path))

    def test_default_fails_fast(self, sharded_store, capsys):
        schema, path = sharded_store
        writer = self._hold_shard_lock(path, schema)
        try:
            assert main(["recover", path, "--schema", schema,
                         "--shards"]) == 1
        finally:
            writer.close()
        captured = capsys.readouterr()
        assert "locked" in captured.out
        assert "retrying" not in captured.err

    def test_gives_up_after_deadline(self, sharded_store, capsys):
        import os

        schema, path = sharded_store
        writer = self._hold_shard_lock(path, schema)
        try:
            assert main(["recover", path, "--schema", schema, "--shards",
                         "--wait-lock", "0.2"]) == 1
        finally:
            writer.close()
        err = capsys.readouterr().err
        assert "recover: store is locked" in err and "retrying in" in err
        assert f"held by pid {os.getpid()}" in err
        assert "gave up waiting after 0.2s" in err

    def test_waits_out_a_transient_holder(self, sharded_store, capsys):
        import threading

        schema, path = sharded_store
        writer = self._hold_shard_lock(path, schema)
        release = threading.Timer(0.25, writer.close)
        release.start()
        try:
            assert main(["recover", path, "--schema", schema, "--shards",
                         "--wait-lock", "10"]) == 0
        finally:
            release.cancel()
            writer.close()
        captured = capsys.readouterr()
        assert "retrying in" in captured.err
        assert "gave up" not in captured.err
        assert "SHARDS RECOVERED" in captured.out

    def test_create_accepts_wait_lock(self, paths, capsys):
        schema, data, tmp = paths
        path = str(tmp / "waited")
        assert main(["create", path, "--schema", schema, "--data", data,
                     "--wait-lock", "0.1", *SHARD_ARGS]) == 0
        assert "created sharded store" in capsys.readouterr().out


@pytest.fixture()
def plain_store(paths, capsys):
    schema, data, tmp = paths
    path = str(tmp / "fstore")
    assert main(["create", path, "--schema", schema, "--data", data]) == 0
    capsys.readouterr()
    return schema, path


class TestFollowShutdown:
    """``check --follow`` ends cleanly: Ctrl-C is exit 0 with a message
    (never a traceback), a vanished store is a clear message + exit 1."""

    def _sleep_hook(self, monkeypatch, action):
        import time

        monkeypatch.setattr(time, "sleep", lambda _seconds: action())

    def test_interrupt_exits_zero(self, plain_store, capsys, monkeypatch):
        schema, path = plain_store

        def interrupt():
            raise KeyboardInterrupt

        self._sleep_hook(monkeypatch, interrupt)
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow"]) == 0
        captured = capsys.readouterr()
        assert "follow interrupted; exiting" in captured.err
        assert "LEGAL" in captured.out

    def test_store_removed_mid_follow(self, plain_store, capsys, monkeypatch):
        schema, path = plain_store
        self._sleep_hook(monkeypatch, lambda: shutil.rmtree(path))
        assert main(["check", "--schema", schema, "--store", path,
                     "--follow"]) == 1
        err = capsys.readouterr().err
        assert "is gone (removed or compacted away); stopping follow" in err
        assert "Traceback" not in err

    def test_sharded_interrupt_exits_zero(self, sharded_store, capsys,
                                          monkeypatch):
        schema, path = sharded_store

        def interrupt():
            raise KeyboardInterrupt

        self._sleep_hook(monkeypatch, interrupt)
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--follow"]) == 0
        captured = capsys.readouterr()
        assert "follow interrupted; exiting" in captured.err
        assert "LEGAL: 6 entries" in captured.out

    def test_sharded_store_removed_mid_follow(self, sharded_store, capsys,
                                              monkeypatch):
        schema, path = sharded_store
        self._sleep_hook(monkeypatch, lambda: shutil.rmtree(path))
        assert main(["check", "--schema", schema, "--store", path,
                     "--shards", "--follow"]) == 1
        err = capsys.readouterr().err
        assert "is gone (removed mid-follow); stopping follow" in err
        assert "Traceback" not in err


class TestShardedReplicationCli:
    """``promote --shards`` on a replicated cohort (the follower side
    is built through the library; the CLI is what promotes)."""

    def test_promote_shards_reports_cohort(
        self, sharded_store, tmp_path, capsys
    ):
        from repro.schema.dsl import load_dsl
        from repro.store.replicate import (
            ShardedFrameSource,
            ShardedReplicaApplier,
        )

        schema_path, path = sharded_store
        schema = load_dsl(schema_path)
        cohort = str(tmp_path / "cohort")
        source = ShardedFrameSource(path, schema)
        with ShardedReplicaApplier(cohort, schema) as applier:
            while True:
                batch = source.poll()
                if not batch:
                    break
                for message in batch:
                    applier.apply_message(message)
        assert main(["promote", cohort, "--schema", schema_path,
                     "--shards"]) == 0
        out = capsys.readouterr().out
        assert "sharded cohort writable" in out
        assert "6 entries" in out

    def test_promote_shards_refuses_bare_directory(
        self, paths, tmp_path, capsys
    ):
        schema_path, _, _ = paths
        bare = str(tmp_path / "bare")
        assert main(["promote", bare, "--schema", schema_path,
                     "--shards"]) == 1
        assert "cut" in capsys.readouterr().err
