"""Edge-case and error-path tests across modules."""

import pytest

from repro.axes import Axis
from repro.errors import (
    ModelError,
    QueryError,
    UnknownEntryError,
)
from repro.model.dn import parse_dn
from repro.model.instance import DirectoryInstance
from repro.query.ast import SCOPE_DELTA, HSelect, Minus, Select
from repro.query.evaluator import QueryEvaluator, evaluate
from repro.query.filters import Equals


def oc(name):
    return Select(Equals("objectClass", name))


class TestInstanceErrorPaths:
    def test_unknown_entry_id(self):
        d = DirectoryInstance()
        with pytest.raises(UnknownEntryError):
            d.entry(42)
        with pytest.raises(UnknownEntryError):
            d.dn_of(42)
        with pytest.raises(UnknownEntryError):
            d.entry("o=ghost")

    def test_deleted_entry_becomes_unknown(self):
        d = DirectoryInstance()
        e = d.add_entry(None, "o=x", ["top"])
        d.delete_entry(e)
        with pytest.raises(UnknownEntryError):
            d.entry(e.eid)

    def test_empty_instance_iteration(self):
        d = DirectoryInstance()
        assert list(d) == []
        assert d.entry_ids() == ()
        assert d.max_depth() == 0
        assert len(d.copy()) == 0

    def test_interval_invalidation_after_mutation(self):
        d = DirectoryInstance()
        a = d.add_entry(None, "o=a", ["top"])
        pre_a, post_a = d.interval_of(a)
        b = d.add_entry(a, "o=b", ["top"])
        # intervals recomputed lazily: a's interval now spans b's
        pre_a2, post_a2 = d.interval_of(a)
        pre_b, post_b = d.interval_of(b)
        assert pre_a2 < pre_b < post_b < post_a2

    def test_rdn_with_escaped_comma_in_dn_lookup(self):
        d = DirectoryInstance()
        d.add_entry(None, parse_dn("cn=Doe\\, Jane").rdn, ["top"])
        assert d.find("cn=Doe\\, Jane") is not None


class TestQueryScopesOnCompositeNodes:
    def test_scope_on_hselect_restricts_result(self, fig1):
        persons = sorted(fig1.entries_with_class("person"))
        query = HSelect(Axis.ANCESTOR, oc("person"), oc("organization")).scoped(
            SCOPE_DELTA
        )
        result = evaluate(query, fig1, {SCOPE_DELTA: {persons[0]}})
        assert result <= {persons[0]}

    def test_scope_on_minus_restricts_result(self, fig1):
        units = sorted(fig1.entries_with_class("orgUnit"))
        query = Minus(oc("orgUnit"), oc("person")).scoped(SCOPE_DELTA)
        result = evaluate(query, fig1, {SCOPE_DELTA: {units[0]}})
        assert result == {units[0]}

    def test_unknown_query_node_rejected(self, fig1):
        class Weird:
            scope = None

        with pytest.raises(QueryError):
            QueryEvaluator(fig1).evaluate(Weird())


class TestWitnessErrorMessages:
    def test_incomparable_required_parents(self):
        from repro.consistency.engine import close
        from repro.consistency.witness import (
            WitnessSynthesisError,
            synthesize_witness,
        )
        from repro.schema import (
            AttributeSchema,
            ClassSchema,
            DirectorySchema,
            StructureSchema,
        )

        classes = ClassSchema().add_core("a").add_core("p").add_core("q")
        structure = (
            StructureSchema()
            .require_class("a")
            .require_parent("a", "p")
            .require_parent("a", "q")
        )
        schema = DirectorySchema(AttributeSchema(), classes, structure).validate()
        closure = close(schema.all_elements(),
                        universe=schema.class_schema.core_classes())
        # unique-parent rule makes this inconsistent; synthesis refuses
        assert not closure.consistent
        with pytest.raises(WitnessSynthesisError):
            synthesize_witness(schema, closure)


class TestRepairBounds:
    def test_max_size_zero_finds_nothing(self):
        from repro.consistency.repair import suggest_repairs
        from repro.workloads import den_schema_overconstrained

        assert suggest_repairs(den_schema_overconstrained(), max_size=0) == []

    def test_max_suggestions_cap(self):
        from repro.consistency.repair import suggest_repairs
        from repro.schema import (
            AttributeSchema,
            ClassSchema,
            DirectorySchema,
            StructureSchema,
        )

        classes = ClassSchema().add_core("a").add_core("b")
        structure = (
            StructureSchema()
            .require_class("a")
            .require_descendant("a", "b")
            .forbid_descendant("a", "b")
        )
        schema = DirectorySchema(AttributeSchema(), classes, structure).validate()
        assert len(suggest_repairs(schema, max_suggestions=2)) == 2


class TestModelFinderApi:
    def test_model_zero_entries(self):
        from repro.consistency.modelfinder import find_model
        from repro.schema import (
            AttributeSchema,
            ClassSchema,
            DirectorySchema,
            StructureSchema,
        )

        schema = DirectorySchema(
            AttributeSchema(), ClassSchema(), StructureSchema()
        ).validate()
        model = find_model(schema, max_entries=0)
        assert model is not None and len(model) == 0

    def test_model_satisfaction_api(self):
        from repro.consistency.modelfinder import Model
        from repro.schema.elements import ForbiddenEdge, RequiredClass, RequiredEdge

        model = Model((None, 0), (("a", "top"), ("b", "top")))
        assert model.satisfies(RequiredClass("a"))
        assert model.satisfies(RequiredEdge(Axis.CHILD, "a", "b"))
        assert model.satisfies(RequiredEdge(Axis.PARENT, "b", "a"))
        assert not model.satisfies(ForbiddenEdge(Axis.DESCENDANT, "a", "b"))
        assert model.members("a") == [0]
        assert list(model.ancestors(1)) == [0]


class TestStoreErrorPaths:
    def test_open_missing_store(self, tmp_path, wp_schema):
        from repro.store import DirectoryStore

        with pytest.raises(FileNotFoundError):
            DirectoryStore.open(str(tmp_path / "nope"), wp_schema)

    def test_journal_missing_treated_as_empty(self, tmp_path, wp_schema):
        import os

        from repro.store import DirectoryStore
        from repro.workloads import figure1_instance, whitepages_registry

        path = str(tmp_path / "s")
        DirectoryStore.create(path, wp_schema, figure1_instance()).close()
        os.remove(os.path.join(path, "journal.ldif"))
        with DirectoryStore.open(path, wp_schema,
                                 registry=whitepages_registry()) as reopened:
            assert len(reopened.instance) == 6


class TestEntryOwnershipEdges:
    def test_detached_entry_has_no_index_effects(self):
        from repro.model.dn import parse_rdn
        from repro.model.entry import Entry

        entry = Entry(parse_rdn("o=x"), ["top"])
        entry.add_class("person")  # no owner: must not crash
        entry.remove_class("person")

    def test_deleted_entry_disowned(self):
        d = DirectoryInstance()
        e = d.add_entry(None, "o=x", ["top", "person"])
        d.delete_entry(e)
        e.add_class("router")  # disowned: index no longer tracks it
        assert d.entries_with_class("router") == set()

    def test_value_removal_of_missing_attribute(self):
        d = DirectoryInstance()
        e = d.add_entry(None, "o=x", ["top"])
        with pytest.raises(ModelError):
            e.remove_value("mail", "a@x")


class TestWriterBoundaries:
    def test_fold_exact_boundary(self):
        from repro.ldif.writer import _fold

        exact = "x" * 76
        assert list(_fold(exact)) == [exact]
        longer = "x" * 77
        folded = list(_fold(longer))
        assert len(folded) == 2 and folded[1].startswith(" ")
        assert "".join([folded[0]] + [p[1:] for p in folded[1:]]) == longer
