"""Integration and property tests for incremental legality testing
(Section 4.2).

The central property: for any subtree update against a legal instance,
the incremental checker's verdict equals a from-scratch legality check
of the hypothetically-updated instance — and a rejected update leaves
the instance byte-identical.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DuplicateEntryError, UpdateError
from repro.ldif import serialize_ldif
from repro.legality.checker import LegalityChecker
from repro.model.instance import DirectoryInstance
from repro.updates.incremental import IncrementalChecker
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    deletable_units,
    figure1_instance,
    generate_whitepages,
    make_unit_subtree,
    random_insertions,
    random_transaction,
    whitepages_schema,
)


def fresh_checker(instance, schema):
    return IncrementalChecker(schema, instance)


class TestGuards:
    def test_illegal_baseline_rejected(self, wp_schema):
        d = DirectoryInstance()
        d.add_entry(None, "o=alone", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
        with pytest.raises(UpdateError, match="not legal"):
            IncrementalChecker(wp_schema, d)

    def test_assume_legal_skips_baseline(self, wp_schema):
        d = DirectoryInstance()
        d.add_entry(None, "o=alone", ["orgUnit", "orgGroup", "top"], {"ou": ["x"]})
        IncrementalChecker(wp_schema, d, assume_legal=True)  # no raise


class TestSection42Examples:
    """The worked examples of Section 4.2."""

    def test_legal_unit_with_persons_accepted(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        delta = make_unit_subtree(random.Random(1), persons=2,
                                  attributes=fig1.attributes)
        outcome = checker.try_insert("ou=attLabs,o=att", delta)
        assert outcome.applied
        assert LegalityChecker(wp_schema).is_legal(fig1)

    def test_unit_without_person_rejected(self, wp_schema, fig1):
        """Checking right after the bare orgUnit insertion violates
        orgGroup →→ person — the motivation for subtree granularity."""
        checker = fresh_checker(fig1, wp_schema)
        delta = DirectoryInstance(attributes=fig1.attributes)
        delta.add_entry(None, "ou=empty", ["orgUnit", "orgGroup", "top"],
                        {"ou": ["empty"]})
        outcome = checker.try_insert("ou=attLabs,o=att", delta)
        assert not outcome.applied
        assert any("orgGroup →→ person" in (v.element or "") for v in outcome.report)

    def test_unit_under_person_rejected(self, wp_schema, fig1):
        """Inserting an orgUnit below suciu violates both the orgUnit
        parent requirement and person ↛ top (the paper's example)."""
        checker = fresh_checker(fig1, wp_schema)
        delta = make_unit_subtree(random.Random(2), persons=1,
                                  attributes=fig1.attributes)
        outcome = checker.try_insert(
            "uid=suciu,ou=databases,ou=attLabs,o=att", delta
        )
        assert not outcome.applied
        elements = {v.element for v in outcome.report if v.element}
        assert any("person ↛ top" in e for e in elements)
        assert any("orgUnit ← orgGroup" in e for e in elements)

    def test_content_illegal_delta_rejected_before_grafting(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        delta = DirectoryInstance(attributes=fig1.attributes)
        delta.add_entry(None, "uid=q", ["person", "top"], {"uid": ["q"]})  # no name
        before = serialize_ldif(fig1)
        outcome = checker.try_insert("ou=attLabs,o=att", delta)
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_delete_preserving_legality_accepted(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        outcome = checker.try_delete("uid=laks,ou=databases,ou=attLabs,o=att")
        assert outcome.applied
        assert LegalityChecker(wp_schema).is_legal(fig1)

    def test_delete_last_person_of_unit_rejected(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        assert checker.try_delete("uid=laks,ou=databases,ou=attLabs,o=att").applied
        outcome = checker.try_delete("uid=suciu,ou=databases,ou=attLabs,o=att")
        assert not outcome.applied  # databases would employ nobody
        assert any("orgGroup →→ person" in (v.element or "") for v in outcome.report)

    def test_delete_subtree_counted_required_class(self, wp_schema):
        """Deleting the only organization trips the counted Cr test."""
        d = figure1_instance()
        checker = fresh_checker(d, wp_schema)
        outcome = checker.try_delete("o=att")
        assert not outcome.applied
        assert any("□" in (v.element or "") for v in outcome.report)

    def test_full_recheck_rows_short_circuit_when_class_emptied(self, wp_schema):
        """ROADMAP satellite: when a deletion removes the last entry of a
        full-recheck row's source class, the class-count index answers
        the row in O(1) — no ``D − Δ`` query, regardless of how many
        unrelated entries survive."""

        def build(survivors):
            d = figure1_instance()
            for i in range(survivors):
                d.add_entry(None, f"uid=solo{i}", ["person", "top"],
                            {"uid": [f"solo{i}"], "name": [f"solo {i}"]})
            return d

        costs = []
        for survivors in (50, 400):
            d = build(survivors)
            subtree_size = len(d) - survivors
            checker = fresh_checker(d, wp_schema)
            outcome = checker.try_delete("o=att")
            # required classes organization/orgUnit vanish -> rejected
            assert not outcome.applied
            skips = [c for c in outcome.checks
                     if "class-count short-circuit" in c]
            assert len(skips) == 2  # both _FULL rows of Figure 5
            assert not any("full re-check" in c for c in outcome.checks)
            # exact accounting: subtree teardown + 1 cost unit per
            # short-circuited row + the 3 counted required-class tests;
            # nothing proportional to the surviving entries.
            costs.append(outcome.cost - subtree_size)
        assert costs[0] == costs[1] == 2 + 3

    def test_rejected_updates_roll_back_exactly(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        before = serialize_ldif(fig1)
        delta = DirectoryInstance(attributes=fig1.attributes)
        delta.add_entry(None, "ou=empty", ["orgUnit", "orgGroup", "top"],
                        {"ou": ["empty"]})
        checker.try_insert("ou=attLabs,o=att", delta)
        assert serialize_ldif(fig1) == before
        checker.try_delete("o=att")
        assert serialize_ldif(fig1) == before


class TestTransactions:
    def test_transaction_applies_and_stays_legal(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        tx = random_transaction(fig1, inserts=2, seed=3)
        outcome = checker.apply_transaction(tx)
        assert outcome.applied
        assert LegalityChecker(wp_schema).is_legal(fig1)

    def test_failing_transaction_rolls_back_everything(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        before = serialize_ldif(fig1)
        tx = (
            UpdateTransaction()
            # step 1 would be fine on its own...
            .insert("ou=ok,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["ok"]})
            .insert("uid=pp,ou=ok,o=att", ["person", "top"],
                    {"uid": ["pp"], "name": ["p p"]})
            # ...step 2 is an empty unit and fails
            .insert("ou=bad,ou=attLabs,o=att", ["orgUnit", "orgGroup", "top"],
                    {"ou": ["bad"]})
        )
        outcome = checker.apply_transaction(tx)
        assert not outcome.applied
        assert serialize_ldif(fig1) == before

    def test_raising_transaction_rolls_back_everything(self, wp_schema, fig1):
        """A step that *raises* (not merely rejects) mid-transaction must
        still undo every previously applied step."""
        checker = fresh_checker(fig1, wp_schema)
        before = serialize_ldif(fig1)
        tx = (
            UpdateTransaction()
            # step 1 applies cleanly...
            .insert("ou=ok,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["ok"]})
            .insert("uid=pp,ou=ok,o=att", ["person", "top"],
                    {"uid": ["pp"], "name": ["p p"]})
            # ...step 2's root DN already exists, so the graft raises
            .insert("ou=databases,ou=attLabs,o=att",
                    ["orgUnit", "orgGroup", "top"], {"ou": ["databases"]})
        )
        with pytest.raises(DuplicateEntryError):
            checker.apply_transaction(tx)
        assert serialize_ldif(fig1) == before
        assert LegalityChecker(wp_schema).is_legal(fig1)

    def test_insert_then_delete_transaction(self, wp_schema, fig1):
        checker = fresh_checker(fig1, wp_schema)
        tx = (
            UpdateTransaction()
            .insert("ou=new,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["new"]})
            .insert("uid=np,ou=new,o=att", ["person", "top"],
                    {"uid": ["np"], "name": ["n p"]})
            .delete("uid=laks,ou=databases,ou=attLabs,o=att")
        )
        outcome = checker.apply_transaction(tx)
        assert outcome.applied
        assert fig1.find("uid=np,ou=new,o=att") is not None
        assert fig1.find("uid=laks,ou=databases,ou=attLabs,o=att") is None
        assert LegalityChecker(wp_schema).is_legal(fig1)


class TestIncrementalEqualsFull:
    """Theorem 4.2's payoff: the incremental verdict always matches the
    full re-check of the updated instance."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_insertions(self, seed):
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=1,
                                       persons_per_unit=1, seed=seed % 5)
        checker = IncrementalChecker(schema, instance)
        full = LegalityChecker(schema)
        for parent, delta in random_insertions(instance, count=3, seed=seed):
            # Oracle: graft on a copy, check from scratch.
            hypothetical = instance.copy()
            hypothetical.insert_subtree(parent, delta)
            expected = full.is_legal(hypothetical)
            outcome = checker.try_insert(parent, delta)
            assert outcome.applied == expected
            # Instance stays legal either way.
            assert full.is_legal(instance)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_deletions(self, seed):
        schema = whitepages_schema()
        instance = generate_whitepages(orgs=1, units_per_level=2, depth=2,
                                       persons_per_unit=1, seed=seed % 5)
        checker = IncrementalChecker(schema, instance)
        full = LegalityChecker(schema)
        rng = random.Random(seed)
        candidates = deletable_units(instance) + [
            str(instance.dn_of(e))
            for e in sorted(instance.entries_with_class("person"))[:3]
        ]
        target = rng.choice(candidates)
        hypothetical = instance.copy()
        hypothetical.delete_subtree(target)
        expected = full.is_legal(hypothetical)
        outcome = checker.try_delete(target)
        assert outcome.applied == expected
        assert full.is_legal(instance)
