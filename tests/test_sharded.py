"""The sharded store and its composite reader.

Covers the routed write path (unroutable DNs raise, it never
mis-commits), per-shard + composite legality enforcement (content and
shard-local checks inside each shard, required classes and cut-spanning
Figure 4 edges on the composite view — single-shard transactions roll
back in memory on violation, spanning ones commit or abort atomically
through two-phase commit), the stitched read surface, and — the
acceptance gate — a randomized
differential: ``ShardedStore`` + ``CompositeReader`` must produce the
same entries, search results, and legality verdicts as one
``DirectoryStore`` holding the union instance.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import (
    ShardMapError,
    ShardRoutingError,
    StoreError,
    UpdateError,
)
from repro.legality.report import Kind
from repro.store import DirectoryStore
from repro.store.sharded import CompositeReader, ShardedStore, check_shards_parallel
from repro.store.shardmap import read_shard_map, shard_map_path
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)
from repro.workloads.update_streams import deletable_units, insertion_points

NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}


@pytest.fixture()
def schema():
    return whitepages_schema()


@pytest.fixture()
def registry():
    return whitepages_registry()


def make_store(tmp_path, schema, registry, bases=None, instance=None, name="sharded"):
    return ShardedStore.create(
        str(tmp_path / name),
        schema,
        bases if bases is not None else NESTED_BASES,
        instance if instance is not None else figure1_instance(),
        registry,
    )


def canonical_records(instance):
    """Order-independent canonical form of an instance: one record per
    entry — display DN plus sorted attribute lines (case-folded DN key
    for ordering only; the display spelling itself is compared)."""
    records = []
    for entry in instance:
        dn = instance.dn_string_of(entry)
        lines = tuple(
            sorted(
                f"{name}: {value}"
                for name in entry.attribute_names()
                for value in entry.values(name)
            )
        )
        records.append((dn.casefold(), dn, lines))
    return sorted(records)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_create_partitions_by_routing(self, tmp_path, schema, registry):
        with make_store(tmp_path, schema, registry) as store:
            att = store.shard("att").instance
            labs = store.shard("labs").instance
            # Shard content is localized: labs holds its base as root.
            assert att.find("o=att") is not None
            assert att.find("uid=armstrong,o=att") is not None
            assert labs.find("ou=attLabs") is not None
            assert labs.find("uid=laks,ou=databases,ou=attLabs") is not None
            assert len(att) + len(labs) == 6

    def test_reopen_preserves_composite_state(self, tmp_path, schema, registry):
        store = make_store(tmp_path, schema, registry)
        path = str(tmp_path / "sharded")
        tx = UpdateTransaction().insert(
            "uid=extra,ou=attLabs,o=att",
            ["person", "top"],
            {"uid": ["extra"], "name": ["e x"]},
        )
        assert store.apply(tx).applied
        before = canonical_records(store.composite_instance())
        store.close()
        with ShardedStore.open(path, schema, registry) as reopened:
            assert canonical_records(reopened.composite_instance()) == before
            assert reopened.check().is_legal

    def test_refuses_existing_directory(self, tmp_path, schema, registry):
        make_store(tmp_path, schema, registry).close()
        with pytest.raises(StoreError, match="refusing to create"):
            make_store(tmp_path, schema, registry)

    def test_unroutable_initial_entry_creates_nothing(
        self, tmp_path, schema, registry
    ):
        with pytest.raises(ShardRoutingError):
            make_store(
                tmp_path, schema, registry,
                bases={"att": "o=att"},
                instance=generate_whitepages(orgs=1, seed=3),  # roots o=org0
            )
        assert not os.path.exists(str(tmp_path / "sharded"))

    def test_missing_map_refuses_to_open(self, tmp_path, schema, registry):
        make_store(tmp_path, schema, registry).close()
        path = str(tmp_path / "sharded")
        os.unlink(shard_map_path(path))
        with pytest.raises(ShardMapError):
            ShardedStore.open(path, schema, registry)
        with pytest.raises(ShardMapError):
            CompositeReader.open(path, schema, registry)

    def test_initial_composite_violation_rejected(self, tmp_path, schema, registry):
        from repro.model.instance import DirectoryInstance

        lonely = DirectoryInstance(attributes=registry)
        lonely.add_entry(
            None, "o=att", ["organization", "orgGroup", "top"], {"o": ["att"]}
        )
        # No orgUnit/person anywhere: required classes are composite
        # elements and must be enforced at create time.
        with pytest.raises(UpdateError, match="composite"):
            make_store(tmp_path, schema, registry, instance=lonely)

    def test_schema_extras_accepted(self, tmp_path, registry):
        # The historical refusal is lifted: extras are enforced at the
        # composite check step via the per-shard key/referential
        # indexes, so an extras-bearing schema shards fine.
        with make_store(tmp_path, whitepages_schema(extras=True), registry) as store:
            assert store.check().is_legal

    def test_closed_store_refuses(self, tmp_path, schema, registry):
        store = make_store(tmp_path, schema, registry)
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            store.check()


# ----------------------------------------------------------------------
# the routed write path
# ----------------------------------------------------------------------
class TestApply:
    def test_commit_routes_to_owning_shard(self, tmp_path, schema, registry):
        with make_store(tmp_path, schema, registry) as store:
            tx = UpdateTransaction().insert(
                "uid=new,ou=databases,ou=attLabs,o=att",
                ["person", "top"],
                {"uid": ["new"], "name": ["n ew"]},
            )
            assert store.apply(tx).applied
            assert store.shard("labs").journal_length == 1
            assert store.shard("att").journal_length == 0
            found = store.composite_instance().find(
                "uid=new,ou=databases,ou=attLabs,o=att"
            )
            assert found is not None

    def test_spanning_transaction_commits_via_2pc(
        self, tmp_path, schema, registry
    ):
        """A transaction touching both shards commits atomically: each
        participant journals a prepare + decide pair, the coordinator
        log holds the commit decision, and the composite view has both
        entries — durably."""
        with make_store(tmp_path, schema, registry) as store:
            tx = UpdateTransaction()
            tx.insert("uid=a,o=att", ["person", "top"],
                      {"uid": ["a"], "name": ["a a"]})
            tx.insert("uid=b,ou=attLabs,o=att", ["person", "top"],
                      {"uid": ["b"], "name": ["b b"]})
            outcome = store.apply(tx)
            assert outcome.applied
            assert any("2pc: committed" in c for c in outcome.checks)
            # One prepare + one decide frame per participant.
            assert store.shard("att").journal_length == 2
            assert store.shard("labs").journal_length == 2
            composite = store.composite_instance()
            assert composite.find("uid=a,o=att") is not None
            assert composite.find("uid=b,ou=attLabs,o=att") is not None
            path = str(tmp_path / "sharded")
        with ShardedStore.open(path, schema, registry) as reopened:
            assert reopened.composite_instance().find("uid=a,o=att") is not None
            assert (
                reopened.composite_instance().find("uid=b,ou=attLabs,o=att")
                is not None
            )
            assert reopened.check().is_legal

    def test_spanning_composite_violation_aborts_everywhere(
        self, tmp_path, schema, registry
    ):
        """A spanning transaction that fails the composite check aborts
        on every participant: the prepares are decided ``abort`` and
        never become visible, in memory or after a reopen."""
        with make_store(tmp_path, schema, registry) as store:
            before = canonical_records(store.composite_instance())
            tx = UpdateTransaction()
            tx.insert("uid=ok,o=att", ["person", "top"],
                      {"uid": ["ok"], "name": ["o k"]})
            tx.insert(  # empty orgUnit: composite Figure 4 violation
                "ou=ghost,ou=attLabs,o=att",
                ["orgUnit", "orgGroup", "top"], {"ou": ["ghost"]},
            )
            outcome = store.apply(tx)
            assert not outcome.applied
            assert any("2pc: aborted" in c for c in outcome.checks)
            assert canonical_records(store.composite_instance()) == before
            path = str(tmp_path / "sharded")
        with ShardedStore.open(path, schema, registry) as reopened:
            assert canonical_records(reopened.composite_instance()) == before
            assert reopened.check().is_legal

    def test_unroutable_transaction_raises(self, tmp_path, schema, registry):
        with make_store(tmp_path, schema, registry) as store:
            tx = UpdateTransaction().insert(
                "o=other", ["organization", "orgGroup", "top"], {"o": ["other"]}
            )
            with pytest.raises(ShardRoutingError, match="no shard owns"):
                store.apply(tx)

    def test_shard_guard_rejection_matches_union_store(
        self, tmp_path, schema, registry
    ):
        # Missing the required `name` attribute: a *content* violation,
        # caught inside the labs shard.  The rejection report must be
        # indistinguishable from a single store's (the guard's DNs are
        # Δ-relative in both).
        tx = UpdateTransaction().insert(
            "uid=noname,ou=attLabs,o=att", ["person", "top"],
            {"uid": ["noname"]},
        )
        union = DirectoryStore.create(
            str(tmp_path / "union"), schema, figure1_instance(), registry
        )
        try:
            union_outcome = union.apply(tx)
        finally:
            union.close()
        with make_store(tmp_path, schema, registry) as store:
            outcome = store.apply(tx)
        assert not outcome.applied and not union_outcome.applied
        assert {(v.kind, v.dn, v.element) for v in outcome.report} == {
            (v.kind, v.dn, v.element) for v in union_outcome.report
        }

    def test_empty_transaction_is_a_noop(self, tmp_path, schema, registry):
        with make_store(tmp_path, schema, registry) as store:
            assert store.apply(UpdateTransaction()).applied


class TestCompositeEnforcement:
    def test_cut_spanning_violation_is_compensated(
        self, tmp_path, schema, registry
    ):
        """Under the nested cut every Figure 4 edge is composite: an
        empty orgUnit passes the (edge-free) shard guard, the composite
        check fails, and the exact inverse rolls the shard back."""
        with make_store(tmp_path, schema, registry) as store:
            before = canonical_records(store.composite_instance())
            tx = UpdateTransaction().insert(
                "ou=ghost,ou=attLabs,o=att",
                ["orgUnit", "orgGroup", "top"],
                {"ou": ["ghost"]},
            )
            outcome = store.apply(tx)
            assert not outcome.applied
            assert not outcome.report.is_legal
            elements = {v.element for v in outcome.report if v.element}
            assert any("person" in e for e in elements), elements
            assert canonical_records(store.composite_instance()) == before
            # The compensation is durable: a reopen agrees.
            path = str(tmp_path / "sharded")
        with ShardedStore.open(path, schema, registry) as reopened:
            assert canonical_records(reopened.composite_instance()) == before
            assert reopened.check().is_legal

    def test_legal_cut_spanning_insert_commits(self, tmp_path, schema, registry):
        with make_store(tmp_path, schema, registry) as store:
            tx = UpdateTransaction()
            tx.insert(
                "ou=new,ou=attLabs,o=att",
                ["orgUnit", "orgGroup", "top"],
                {"ou": ["new"]},
            )
            tx.insert(
                "uid=p,ou=new,ou=attLabs,o=att",
                ["person", "top"],
                {"uid": ["p"], "name": ["p p"]},
            )
            assert store.apply(tx).applied
            assert store.check().is_legal

    def test_flat_map_keeps_edges_shard_local(self, tmp_path, schema, registry):
        instance = generate_whitepages(
            orgs=2, units_per_level=2, depth=1, persons_per_unit=2, seed=5
        )
        with make_store(
            tmp_path, schema, registry,
            bases={"a": "o=org0", "b": "o=org1"}, instance=instance,
        ) as store:
            assert not store.scope.nested
            assert store.scope.local_edges and not store.scope.composite_edges
            # An empty orgUnit is now rejected by the shard's own guard
            # (stepwise), before any composite logic runs.
            tx = UpdateTransaction().insert(
                "ou=ghost,o=org0", ["orgUnit", "orgGroup", "top"],
                {"ou": ["ghost"]},
            )
            outcome = store.apply(tx)
            assert not outcome.applied
            assert store.shard("a").journal_length == 0


class TestCutIntegrity:
    """The attachment entry — a nested shard's suffix entry inside its
    enclosing shard — is part of the routing cut.  Deleting it is a
    spanning transaction: it commits through 2PC only when the same
    transaction also deletes every entry of the nested shard (the union
    store's leaves-only rule, mirrored across the cut), and when
    per-shard writers orphan a shard anyway, every read surface
    *reports* the wreckage instead of raising on it."""

    def test_attachment_entry_delete_requires_whole_subtree(
        self, tmp_path, schema, registry
    ):
        """Deleting the attachment entry without the nested shard's
        entries is exactly the union store's illegal non-leaf delete;
        the precondition fires before anything durable happens."""
        with make_store(tmp_path, schema, registry) as store:
            tx = UpdateTransaction()
            tx.delete("o=att")
            tx.delete("uid=armstrong,o=att")
            with pytest.raises(UpdateError, match="LDAP deletes leaves only"):
                store.apply(tx)
            # Nothing committed anywhere; the store is untouched.
            assert store.shard("att").journal_length == 0
            assert store.shard("labs").journal_length == 0
            assert store.check().is_legal

    def test_orphaned_shard_is_reported_not_raised(
        self, tmp_path, schema, registry
    ):
        """A per-shard writer (which bypasses routing by design) deletes
        the attachment entry: reopening must surface an
        ``orphaned-shard`` violation on every check surface, and the
        stitched view must keep answering searches."""
        make_store(tmp_path, schema, registry).close()
        path = str(tmp_path / "sharded")
        att = ShardedStore.open_shard(path, "att", schema, registry)
        try:
            tx = UpdateTransaction()
            tx.delete("o=att")
            tx.delete("uid=armstrong,o=att")
            assert att.apply(tx).applied
        finally:
            att.close()
        with ShardedStore.open(path, schema, registry) as store:
            report = store.check()
            orphans = report.of_kind(Kind.ORPHANED_SHARD)
            assert len(orphans) == 1
            assert "labs" in orphans[0].message
            assert orphans[0].dn == "o=att"
            # The orphaned shard is grafted as a detached root: its
            # entries stay reachable, nothing raises.
            composite = store.composite_instance()
            persons = store.search(filter="(objectClass=person)")
            assert {composite.dn_string_of(e) for e in persons} == {
                "uid=laks,ou=databases,ou=attLabs",
                "uid=suciu,ou=databases,ou=attLabs",
            }
        with CompositeReader.open(path, schema, registry) as reader:
            assert not reader.is_legal()
            assert reader.check().of_kind(Kind.ORPHANED_SHARD)
            assert reader.search(filter="(objectClass=person)")
        # The fsck path (worker probes, no stitching needed for the
        # orphan itself) agrees.
        merged, entries = check_shards_parallel(path, schema, registry, jobs=2)
        assert merged.of_kind(Kind.ORPHANED_SHARD)
        assert entries == 4

    def test_checker_crash_leaves_no_durable_footprint(
        self, tmp_path, schema, registry, monkeypatch
    ):
        """The composite check raising (a checker bug, not a verdict)
        must not strand tentative shard state: the single-shard fast
        path stages the transaction in memory only, so the rollback
        writes nothing — the journal stays empty and the pre-state
        survives the exception and a reopen.  (The old path committed
        first and compensated with an inverse transaction, leaving a
        crash window between the two frames; 2PC-era apply has no such
        window to close.)"""
        import repro.store.sharded as sharded_module

        with make_store(tmp_path, schema, registry) as store:
            before = canonical_records(store.composite_instance())

            def boom(*args, **kwargs):
                raise RuntimeError("checker bug")

            monkeypatch.setattr(sharded_module, "_composite_report", boom)
            tx = UpdateTransaction().insert(
                "uid=late,o=att", ["person", "top"],
                {"uid": ["late"], "name": ["l ate"]},
            )
            with pytest.raises(RuntimeError, match="checker bug"):
                store.apply(tx)
            monkeypatch.undo()
            # The tentative apply was memory-only: no frames hit the
            # WAL, and the in-memory state is the pre-state again.
            assert store.shard("att").journal_length == 0
            assert canonical_records(store.composite_instance()) == before
            assert store.check().is_legal
        path = str(tmp_path / "sharded")
        with ShardedStore.open(path, schema, registry) as reopened:
            assert canonical_records(reopened.composite_instance()) == before


# ----------------------------------------------------------------------
# the composite read surface
# ----------------------------------------------------------------------
class TestCompositeReader:
    def test_reader_stitches_all_shards(self, tmp_path, schema, registry):
        store = make_store(tmp_path, schema, registry)
        path = str(tmp_path / "sharded")
        try:
            with CompositeReader.open(path, schema, registry) as reader:
                assert canonical_records(reader.instance) == canonical_records(
                    store.composite_instance()
                )
                assert reader.is_legal()
                persons = reader.search(filter="(objectClass=person)")
                assert {reader.dn_string_of(e) for e in persons} == {
                    "uid=armstrong,o=att",
                    "uid=laks,ou=databases,ou=attLabs,o=att",
                    "uid=suciu,ou=databases,ou=attLabs,o=att",
                }
        finally:
            store.close()

    def test_refresh_follows_per_shard_writers(self, tmp_path, schema, registry):
        store = make_store(tmp_path, schema, registry)
        path = str(tmp_path / "sharded")
        try:
            with CompositeReader.open(path, schema, registry) as reader:
                tx = UpdateTransaction().insert(
                    "uid=late,ou=attLabs,o=att", ["person", "top"],
                    {"uid": ["late"], "name": ["l ate"]},
                )
                assert store.apply(tx).applied
                assert reader.instance.find("uid=late,ou=attLabs,o=att") is None
                lag = reader.lag()
                assert lag["labs"].frames == 1 and lag["att"].current
                result = reader.refresh()
                assert result.advanced and not result.stale
                assert result.per_shard["labs"].frames_replayed == 1
                assert result.per_shard["att"].frames_replayed == 0
                assert result.frontier["labs"] == (1, 1)
                assert reader.instance.find("uid=late,ou=attLabs,o=att") is not None
        finally:
            store.close()

    def test_refresh_survives_per_shard_compaction(self, tmp_path, schema, registry):
        store = make_store(tmp_path, schema, registry)
        path = str(tmp_path / "sharded")
        try:
            with CompositeReader.open(path, schema, registry) as reader:
                tx = UpdateTransaction().insert(
                    "uid=c,ou=attLabs,o=att", ["person", "top"],
                    {"uid": ["c"], "name": ["c c"]},
                )
                assert store.apply(tx).applied
                store.compact()
                result = reader.refresh()
                assert result.advanced
                assert result.per_shard["labs"].rebootstrapped
                assert reader.frontier()["labs"] == (2, 0)
                assert reader.instance.find("uid=c,ou=attLabs,o=att") is not None
        finally:
            store.close()

    def test_parallel_check_matches_composite_check(
        self, tmp_path, schema, registry
    ):
        store = make_store(tmp_path, schema, registry)
        path = str(tmp_path / "sharded")
        try:
            serial = store.check()
        finally:
            store.close()
        report, entries = check_shards_parallel(path, schema, registry, jobs=2)
        assert report.is_legal == serial.is_legal
        assert entries == 6

    def test_shard_writers_do_not_lock_each_other(self, tmp_path, schema, registry):
        """One writer per shard is a supported topology: the advisory
        locks are per shard directory."""
        make_store(tmp_path, schema, registry).close()
        path = str(tmp_path / "sharded")
        att = ShardedStore.open_shard(path, "att", schema, registry)
        labs = ShardedStore.open_shard(path, "labs", schema, registry)
        try:
            tx = UpdateTransaction().insert(
                "uid=w1,o=att", ["person", "top"],
                {"uid": ["w1"], "name": ["w 1"]},
            )
            assert att.apply(tx).applied
            tx = UpdateTransaction().insert(
                "uid=w2,ou=attLabs", ["person", "top"],
                {"uid": ["w2"], "name": ["w 2"]},
            )
            assert labs.apply(tx).applied
        finally:
            att.close()
            labs.close()
        with CompositeReader.open(path, schema, registry) as reader:
            assert reader.instance.find("uid=w1,o=att") is not None
            assert reader.instance.find("uid=w2,ou=attLabs,o=att") is not None

    def test_open_shard_unknown_name(self, tmp_path, schema, registry):
        make_store(tmp_path, schema, registry).close()
        with pytest.raises(ShardMapError, match="no shard named"):
            ShardedStore.open_shard(
                str(tmp_path / "sharded"), "nope", schema, registry
            )

    def test_map_survives_roundtrip(self, tmp_path, schema, registry):
        make_store(tmp_path, schema, registry).close()
        shard_map = read_shard_map(str(tmp_path / "sharded"))
        assert set(shard_map.names()) == {"att", "labs"}


# ----------------------------------------------------------------------
# the differential acceptance gate
# ----------------------------------------------------------------------
def _unit_delete_tx(instance, unit_dn):
    tx = UpdateTransaction()
    entry = instance.entry(unit_dn)
    tx.delete(unit_dn)
    for descendant in instance.descendants_of(entry):
        tx.delete(instance.dn_string_of(descendant))
    return tx


def _routable(shard_map, tx):
    try:
        owners = {shard_map.route(op.dn).name for op in tx}
    except ShardRoutingError:
        return False
    return len(owners) == 1


def _mixed_tx(rng, instance, shard_map, counter):
    """One mixed insert+delete transaction routed whole: delete one
    unit subtree and insert a fresh unit elsewhere in the *same* shard.
    The insertion point must survive the delete (``decompose`` refuses
    insertions under deleted entries), so candidates inside the deleted
    subtree are skipped."""
    from repro.model.dn import parse_dn

    units = [
        dn for dn in deletable_units(instance)
        if _routable(shard_map, _unit_delete_tx(instance, dn))
    ]
    rng.shuffle(units)
    for unit_dn in units:
        deleted = {
            str(op.dn.normalized()) for op in _unit_delete_tx(instance, unit_dn)
        }
        points = [
            p for p in insertion_points(instance)
            if str(parse_dn(p).normalized()) not in deleted
        ]
        rng.shuffle(points)
        for parent in points:
            counter[0] += 1
            tag = f"d{counter[0]}"
            tx = _unit_delete_tx(instance, unit_dn)
            tx.insert(
                f"ou={tag},{parent}", ["orgUnit", "orgGroup", "top"],
                {"ou": [tag]},
            )
            tx.insert(
                f"uid=p{tag},ou={tag},{parent}",
                ["person", "top"],
                {"uid": [f"p{tag}"], "name": [f"p {tag}"]},
            )
            if _routable(shard_map, tx):
                return tx
    return None


def _random_step(rng, union, shard_map, counter):
    """One randomized transaction (insert, whole-unit delete, or mixed
    insert+delete, with an occasional deliberately illegal insert),
    constrained to route whole — spanning transactions (which now
    commit through 2PC) have their own differential,
    :func:`test_spanning_differential_against_union_store`.

    Mixed transactions are in the stream on purpose: per-shard guards
    check every decomposed step while composite elements are checked
    once against the final state, and the ``decompose`` preconditions
    make those two disciplines provably agree (see the semantics note
    in ``repro.store.sharded``).  The differential holds the union
    store's stepwise verdict to that claim."""
    instance = union.instance
    kind = rng.random()
    if kind < 0.15:
        candidates = [
            dn for dn in deletable_units(instance)
            if _routable(shard_map, _unit_delete_tx(instance, dn))
        ]
        if candidates:
            return _unit_delete_tx(instance, rng.choice(candidates))
    elif kind < 0.45:
        mixed = _mixed_tx(rng, instance, shard_map, counter)
        if mixed is not None:
            return mixed
    counter[0] += 1
    tag = f"d{counter[0]}"
    parent = rng.choice(insertion_points(instance))
    tx = UpdateTransaction()
    tx.insert(
        f"ou={tag},{parent}", ["orgUnit", "orgGroup", "top"], {"ou": [tag]}
    )
    if kind < 0.6:
        return tx  # an empty orgUnit: illegal, both sides must reject
    tx.insert(
        f"uid=p{tag},ou={tag},{parent}",
        ["person", "top"],
        {"uid": [f"p{tag}"], "name": [f"p {tag}"]},
    )
    return tx


FILTERS = [
    "(objectClass=person)",
    "(objectClass=orgUnit)",
    "(&(objectClass=orgGroup)(!(objectClass=organization)))",
]


def _search_view(instance):
    from repro.query.search import search

    return [
        sorted(
            instance.dn_string_of(e)
            for e in search(instance, filter=filter_string)
        )
        for filter_string in FILTERS
    ]


def _canonical_key(dn_string):
    """Root-first tuple of normalized RDN strings — the canonical
    global document order the composite search surface promises."""
    from repro.model.dn import parse_dn

    return tuple(str(r) for r in reversed(parse_dn(dn_string).normalized().rdns))


class TestDeterministicSearchOrder:
    """``CompositeReader.search``/``ShardedStore.search`` order must not
    depend on shard iteration or stitch order: every layout of the same
    directory returns the same sequence, equal to the union store's
    results sorted into canonical global document order."""

    LAYOUTS = [
        {"att": "o=att", "labs": "ou=attLabs,o=att"},
        {"labs": "ou=attLabs,o=att", "att": "o=att"},
        {"only": "o=att"},
    ]

    def _expected(self, union, filter=None, scope="sub"):
        from repro.query.search import search

        dns = [
            union.instance.dn_string_of(e)
            for e in search(union.instance, scope=scope, filter=filter)
        ]
        return sorted(dns, key=_canonical_key)

    @pytest.mark.parametrize("filter_string", [None] + FILTERS)
    def test_order_matches_union_store_across_layouts(
        self, tmp_path, schema, registry, filter_string
    ):
        union = DirectoryStore.create(
            str(tmp_path / "union"), schema, figure1_instance(), registry
        )
        try:
            expected = self._expected(union, filter=filter_string)
        finally:
            union.close()
        assert expected == sorted(expected, key=_canonical_key)
        for index, bases in enumerate(self.LAYOUTS):
            path = str(tmp_path / f"layout{index}")
            store = ShardedStore.create(
                path, schema, bases, figure1_instance(), registry
            )
            try:
                composite = store.composite_instance()
                got = [
                    composite.dn_string_of(e)
                    for e in store.search(filter=filter_string)
                ]
                assert got == expected, f"layout {bases} diverged"
            finally:
                store.close()
            reader = CompositeReader.open(path, schema, registry)
            try:
                got = [
                    reader.dn_string_of(e)
                    for e in reader.search(filter=filter_string)
                ]
                assert got == expected, f"reader over {bases} diverged"
            finally:
                reader.close()

    def test_size_limit_is_prefix_of_canonical_order(
        self, tmp_path, schema, registry
    ):
        store = ShardedStore.create(
            str(tmp_path / "sharded"), schema, NESTED_BASES,
            figure1_instance(), registry,
        )
        try:
            composite = store.composite_instance()
            full = [
                composite.dn_string_of(e) for e in store.search()
            ]
            for limit in (0, 1, 3, len(full), len(full) + 5):
                got = [
                    composite.dn_string_of(e)
                    for e in store.search(size_limit=limit)
                ]
                assert got == full[:limit]
        finally:
            store.close()

    def test_parent_sorts_before_children(self, tmp_path, schema, registry):
        store = ShardedStore.create(
            str(tmp_path / "sharded"), schema, NESTED_BASES,
            figure1_instance(), registry,
        )
        try:
            composite = store.composite_instance()
            dns = [composite.dn_string_of(e) for e in store.search()]
            seen = set()
            for dn in dns:
                key = _canonical_key(dn)
                if len(key) > 1:
                    assert key[:-1] in seen, f"{dn} appeared before its parent"
                seen.add(key)
        finally:
            store.close()


@pytest.mark.parametrize(
    "bases,orgs",
    [
        pytest.param({"a": "o=org0", "b": "o=org1", "c": "o=org2"}, 3,
                     id="flat-3-shards"),
        pytest.param({"root": "o=org0", "cut": "ou=u0.0,o=org0"}, 1,
                     id="nested-cut"),
    ],
)
@pytest.mark.parametrize("seed", [11, 42])
def test_differential_against_union_store(tmp_path, seed, bases, orgs):
    """For a randomized workload — insert-only, delete-only, *and*
    mixed insert+delete transactions — the sharded store + composite
    reader and a single union store produce identical entries,
    identical search results, and identical legality verdicts,
    including the cross-shard Figure 4 checks under the nested cut.
    Mixed transactions pin the semantics note in
    ``repro.store.sharded``: stepwise per-shard checking plus a
    final-state composite check equals the union store's stepwise
    verdict for everything ``decompose`` accepts."""
    schema = whitepages_schema()
    registry = whitepages_registry()
    initial = generate_whitepages(
        orgs=orgs, units_per_level=2, depth=1, persons_per_unit=2, seed=seed
    )
    union = DirectoryStore.create(
        str(tmp_path / "union"), schema, initial, registry
    )
    sharded = ShardedStore.create(
        str(tmp_path / "sharded"), schema, bases, initial, registry
    )
    reader = CompositeReader.open(str(tmp_path / "sharded"), schema, registry)
    rng = random.Random(seed)
    counter = [0]
    accepted = rejected = mixed = 0
    try:
        for step in range(14):
            tx = _random_step(rng, union, sharded.shard_map, counter)
            if tx.insertions() and tx.deletions():
                mixed += 1
            union_outcome = union.apply(tx)
            sharded_outcome = sharded.apply(tx)
            assert union_outcome.applied == sharded_outcome.applied, (
                f"step {step}: union said {union_outcome.applied}, "
                f"sharded said {sharded_outcome.applied}\n"
                f"union: {union_outcome.report}\n"
                f"sharded: {sharded_outcome.report}"
            )
            if union_outcome.applied:
                accepted += 1
            else:
                rejected += 1
                union_elements = {
                    v.element for v in union_outcome.report if v.element
                }
                sharded_elements = {
                    v.element for v in sharded_outcome.report if v.element
                }
                assert union_elements == sharded_elements, (
                    f"step {step}: rejection cites different elements"
                )
            # The committed states are identical, byte for byte.
            assert canonical_records(
                sharded.composite_instance()
            ) == canonical_records(union.instance), f"diverged at step {step}"
            # ... and so is everything a client can observe: searches
            # through the sharded store's own surface and over the
            # union instance agree filter by filter.
            assert _search_view(
                sharded.composite_instance()
            ) == _search_view(union.instance)
            composite = sharded.composite_instance()
            assert sorted(
                composite.dn_string_of(e)
                for e in sharded.search(filter=FILTERS[0])
            ) == _search_view(union.instance)[0]
            refreshed = reader.refresh()
            assert not refreshed.stale
            assert canonical_records(reader.instance) == canonical_records(
                union.instance
            )
            union_report = union.check()
            composite_report = sharded.check()
            reader_report = reader.check()
            assert (
                union_report.is_legal
                == composite_report.is_legal
                == reader_report.is_legal
            )
            assert {v.element for v in union_report} == {
                v.element for v in composite_report
            }
        # The stream must have exercised both verdicts — and at least
        # one mixed transaction, or the stepwise/final-state agreement
        # claim went untested.
        assert accepted >= 3 and rejected >= 1, (accepted, rejected)
        assert mixed >= 1, "no mixed transaction generated"
    finally:
        reader.close()
        sharded.close()
        union.close()


def _spanning_step(rng, union, shard_map, counter, illegal=False):
    """One randomized transaction built to *span* shards: either a
    two-shard insert (a fresh unit+person pair in each of two shards)
    or a mixed spanning step (a whole-unit delete in one shard plus a
    fresh insert in another).  With ``illegal=True`` the second shard's
    slice is an empty orgUnit, so the union store rejects and the
    sharded store must abort the 2PC round with the same verdict."""
    instance = union.instance
    by_shard = {}
    for p in insertion_points(instance):
        try:
            name = shard_map.route(p).name
        except ShardRoutingError:
            continue
        by_shard.setdefault(name, []).append(p)
    names = sorted(by_shard)
    kind = rng.random()
    if not illegal and kind < 0.35 and len(names) >= 2:
        # Mixed spanning: delete a whole unit in one shard, insert a
        # fresh unit+person in a different one — 2PC must hold the
        # delete and the insert to one atomic verdict.
        units = [
            dn for dn in deletable_units(instance)
            if _routable(shard_map, _unit_delete_tx(instance, dn))
        ]
        rng.shuffle(units)
        for unit_dn in units:
            owner = shard_map.route(unit_dn).name
            others = [n for n in names if n != owner]
            if not others:
                continue
            counter[0] += 1
            tag = f"s{counter[0]}"
            parent = rng.choice(by_shard[rng.choice(others)])
            tx = _unit_delete_tx(instance, unit_dn)
            tx.insert(
                f"ou={tag},{parent}", ["orgUnit", "orgGroup", "top"],
                {"ou": [tag]},
            )
            tx.insert(
                f"uid=p{tag},ou={tag},{parent}", ["person", "top"],
                {"uid": [f"p{tag}"], "name": [f"p {tag}"]},
            )
            return tx
    chosen = (
        rng.sample(names, 2) if len(names) >= 2 else list(names)
    )
    tx = UpdateTransaction()
    for i, name in enumerate(chosen):
        counter[0] += 1
        tag = f"s{counter[0]}"
        parent = rng.choice(by_shard[name])
        tx.insert(
            f"ou={tag},{parent}", ["orgUnit", "orgGroup", "top"],
            {"ou": [tag]},
        )
        if illegal and i == 1:
            continue  # the second slice stays an empty orgUnit
        tx.insert(
            f"uid=p{tag},ou={tag},{parent}", ["person", "top"],
            {"uid": [f"p{tag}"], "name": [f"p {tag}"]},
        )
    return tx


@pytest.mark.parametrize(
    "bases,orgs",
    [
        pytest.param({"a": "o=org0", "b": "o=org1", "c": "o=org2"}, 3,
                     id="flat-3-shards"),
        # ``None`` marks a nested cut at the first generated unit (unit
        # names depend on the seed, so the base is derived below).
        pytest.param({"root": "o=org0", "cut": None}, 1, id="nested-cut"),
    ],
)
@pytest.mark.parametrize("seed", [7, 23])
def test_spanning_differential_against_union_store(tmp_path, seed, bases, orgs):
    """The 2PC acceptance gate: randomized *spanning* insert+delete
    transactions, committed (or aborted) through two-phase commit, must
    produce byte-identical entries and identical verdicts vs a single
    union ``DirectoryStore`` applying the same stream — including after
    a reopen, so the durable prepare/decide frames replay to the same
    state the union's ordinary frames do."""
    schema = whitepages_schema()
    registry = whitepages_registry()
    initial = generate_whitepages(
        orgs=orgs, units_per_level=2, depth=1, persons_per_unit=2, seed=seed
    )
    if None in bases.values():
        first_unit = next(
            initial.dn_string_of(e)
            for e in initial
            if initial.dn_string_of(e).startswith("ou=")
            and initial.dn_string_of(e).count(",") == 1
        )
        bases = {
            name: base if base is not None else first_unit
            for name, base in bases.items()
        }
    union = DirectoryStore.create(
        str(tmp_path / "union"), schema, initial, registry
    )
    sharded = ShardedStore.create(
        str(tmp_path / "sharded"), schema, bases, initial, registry
    )
    reader = CompositeReader.open(str(tmp_path / "sharded"), schema, registry)
    rng = random.Random(seed)
    counter = [0]
    accepted = rejected = spanning = 0
    try:
        for step in range(12):
            tx = _spanning_step(
                rng, union, sharded.shard_map, counter,
                illegal=step in (4, 9),
            )
            owners = {sharded.shard_map.route(op.dn).name for op in tx}
            if len(owners) > 1:
                spanning += 1
            union_outcome = union.apply(tx)
            sharded_outcome = sharded.apply(tx)
            assert union_outcome.applied == sharded_outcome.applied, (
                f"step {step}: union said {union_outcome.applied}, "
                f"sharded said {sharded_outcome.applied}\n"
                f"union: {union_outcome.report}\n"
                f"sharded: {sharded_outcome.report}"
            )
            if union_outcome.applied:
                accepted += 1
                if len(owners) > 1:
                    assert any(
                        "2pc: committed" in c for c in sharded_outcome.checks
                    ), sharded_outcome.checks
            else:
                rejected += 1
                if len(owners) > 1:
                    assert any(
                        "2pc: aborted" in c for c in sharded_outcome.checks
                    ), sharded_outcome.checks
                union_elements = {
                    v.element for v in union_outcome.report if v.element
                }
                sharded_elements = {
                    v.element for v in sharded_outcome.report if v.element
                }
                assert union_elements == sharded_elements, (
                    f"step {step}: rejection cites different elements"
                )
            assert canonical_records(
                sharded.composite_instance()
            ) == canonical_records(union.instance), f"diverged at step {step}"
            assert _search_view(
                sharded.composite_instance()
            ) == _search_view(union.instance)
            refreshed = reader.refresh()
            assert not refreshed.stale
            assert canonical_records(reader.instance) == canonical_records(
                union.instance
            )
            assert union.check().is_legal == sharded.check().is_legal
        assert spanning >= 4 and accepted >= 3 and rejected >= 2, (
            spanning, accepted, rejected,
        )
    finally:
        reader.close()
        sharded.close()
        union.close()
    # Durability: both journals replay to the same state — the sharded
    # side through its prepare/decide pairs, the union through ordinary
    # frames.
    with DirectoryStore.open(str(tmp_path / "union"), schema, registry) as u:
        with ShardedStore.open(
            str(tmp_path / "sharded"), schema, registry
        ) as s:
            assert canonical_records(s.composite_instance()) == (
                canonical_records(u.instance)
            )
            assert s.check().is_legal == u.check().is_legal


def test_insert_under_deleted_entry_refused_identically(tmp_path):
    """Pin the ``decompose`` precondition that makes stepwise and
    final-state checking agree (semantics note in
    ``repro.store.sharded``): a transaction inserting under an entry it
    also deletes — the one shape whose intermediate state could break a
    composite element that the final state repairs — is refused as
    malformed by *both* stores before any verdict, with nothing
    committed."""
    schema = whitepages_schema()
    registry = whitepages_registry()
    union = DirectoryStore.create(
        str(tmp_path / "union"), schema, figure1_instance(), registry
    )
    sharded = ShardedStore.create(
        str(tmp_path / "sharded"), schema, NESTED_BASES,
        figure1_instance(), registry,
    )
    # A person child under armstrong would break forbid-child(person)
    # only while armstrong exists; deleting armstrong in the same
    # transaction would make the final state legal — exactly the
    # intermediate-only violation decompose's preconditions rule out.
    tx = UpdateTransaction()
    tx.insert(
        "uid=ghost,uid=armstrong,o=att", ["person", "top"],
        {"uid": ["ghost"], "name": ["g host"]},
    )
    tx.delete("uid=armstrong,o=att")
    try:
        with pytest.raises(UpdateError, match="same transaction deletes"):
            union.apply(tx)
        with pytest.raises(UpdateError, match="same transaction deletes"):
            sharded.apply(tx)
        assert union.journal_length == 0
        assert sharded.shard("att").journal_length == 0
        assert union.instance.find("uid=armstrong,o=att") is not None
        assert (
            sharded.composite_instance().find("uid=armstrong,o=att") is not None
        )
    finally:
        sharded.close()
        union.close()


# ----------------------------------------------------------------------
# coordinator-cut reads: a reader landing mid-2PC
# ----------------------------------------------------------------------
class TestCoordinatorCutReads:
    """A ``CompositeReader`` refreshing while a spanning transaction's
    decide frames are still in flight must show the transaction on every
    shard or on none — decided by the coordinator log's durable commit
    record, captured once per refresh (the coordinator cut).

    Each case crashes a writer at a named 2PC protocol point and opens a
    reader on the crashed directory *before* recovery runs, freezing the
    exact intermediate journal states the concurrent-server test only
    hits probabilistically."""

    ATT_DN = "uid=c1att,o=att"
    LABS_DN = "uid=c1labs,ou=databases,ou=attLabs,o=att"

    def _crash_at(self, tmp_path, point):
        from harness.crash2pc import commit_tx, make_sharded, run_2pc_scenario
        from repro.store.faults import FaultPlan, FaultyIO, InjectedCrash

        path = str(tmp_path / "crash")
        make_sharded(path)
        io = FaultyIO(FaultPlan(crash_at_point=point))
        with pytest.raises(InjectedCrash):
            run_2pc_scenario(path, io, transactions=[commit_tx(1)])
        return path

    @pytest.mark.parametrize("point", ["2pc:committed", "2pc:decided:att"])
    def test_cut_committed_transaction_visible_on_every_shard(
        self, tmp_path, schema, registry, point
    ):
        """Once the coordinator's commit record is durable, the refresh
        cut proves the outcome: shards whose decide frame never landed
        apply the prepared payload early instead of withholding it."""
        path = self._crash_at(tmp_path, point)
        with CompositeReader.open(path, schema, registry) as reader:
            reader.refresh()
            instance = reader.instance
            assert instance.find(self.ATT_DN) is not None
            assert instance.find(self.LABS_DN) is not None
            labs = reader._readers["labs"]
            att = reader._readers["att"]
            # labs never saw its decide frame: applied early via the
            # cut, flagged as ahead of its durable position.
            assert labs.resolved_txid is not None
            assert labs.pending_txid is None
            if point == "2pc:committed":
                assert att.resolved_txid == labs.resolved_txid
            else:
                # att's decide landed before the crash and was consumed
                # normally — only labs needed resolution.
                assert att.resolved_txid is None
            before = canonical_records(instance)

            # Recovery appends the missing decide frames; the next
            # refresh consumes them positionally without re-replaying
            # the already-applied payload.
            ShardedStore.open(path, schema, registry).close()
            reader.refresh()
            assert reader._readers["labs"].resolved_txid is None
            assert reader._readers["att"].resolved_txid is None
            assert canonical_records(reader.instance) == before

    @pytest.mark.parametrize("point", ["2pc:prepared:labs", "2pc:decision"])
    def test_in_doubt_transaction_withheld_on_every_shard(
        self, tmp_path, schema, registry, point
    ):
        """With no durable coordinator decision the prepares are
        genuinely in doubt: invisible on every shard (presumed abort),
        never applied by one shard and withheld by another."""
        path = self._crash_at(tmp_path, point)
        with CompositeReader.open(path, schema, registry) as reader:
            reader.refresh()
            instance = reader.instance
            assert instance.find(self.ATT_DN) is None
            assert instance.find(self.LABS_DN) is None
            assert reader._readers["att"].pending_txid is not None
            if point == "2pc:prepared:labs":
                assert reader._readers["labs"].pending_txid is not None
            for shard_reader in reader._readers.values():
                assert shard_reader.resolved_txid is None

            # Recovery resolves the in-doubt prepares as aborted; the
            # reader follows the abort decides and the entries stay out.
            ShardedStore.open(path, schema, registry).close()
            result = reader.refresh()
            assert result.advanced
            for shard_reader in reader._readers.values():
                assert shard_reader.pending_txid is None
                assert shard_reader.resolved_txid is None
            assert reader.instance.find(self.ATT_DN) is None
            assert reader.instance.find(self.LABS_DN) is None
