"""Legacy setup shim.

``pyproject.toml`` is the authoritative metadata; this file exists so
fully-offline environments without the ``wheel`` package can still do a
development install via ``python setup.py develop`` (modern
``pip install -e .`` builds an editable wheel, which needs ``wheel``).
"""

from setuptools import setup

setup()
