"""Quickstart: define a bounding-schema, validate a directory, catch a
violation.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AttributeSchema,
    ClassSchema,
    DirectoryInstance,
    DirectorySchema,
    LegalityChecker,
    StructureSchema,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A bounding-schema: lower and upper bounds on content and shape.
    # ------------------------------------------------------------------
    classes = (
        ClassSchema()
        .add_core("orgUnit")
        .add_core("person")
        .add_auxiliary("online")
        .allow_auxiliary("person", "online")
    )
    attributes = (
        AttributeSchema()
        .declare("top")
        .declare("orgUnit", required=("ou",))
        .declare("person", required=("name", "uid"))
        .declare("online", allowed=("mail",))
    )
    structure = (
        StructureSchema()
        .require_class("orgUnit")               # orgUnit □
        .require_descendant("orgUnit", "person")  # orgUnit →→ person
        .forbid_child("person", "top")            # person ↛ top (leaves)
    )
    schema = DirectorySchema(attributes, classes, structure).validate()

    # ------------------------------------------------------------------
    # 2. A directory instance (a forest of multi-class entries).
    # ------------------------------------------------------------------
    directory = DirectoryInstance()
    labs = directory.add_entry(None, "ou=labs", ["orgUnit", "top"], {"ou": ["labs"]})
    directory.add_entry(
        labs,
        "uid=amy",
        ["person", "online", "top"],
        {"uid": ["amy"], "name": ["Amy Stone"], "mail": ["amy@example.com"]},
    )
    directory.add_entry(
        labs,
        "uid=dan",
        ["person", "top"],                      # heterogeneity: no mail
        {"uid": ["dan"], "name": ["Dan Suciu"]},
    )

    # ------------------------------------------------------------------
    # 3. Legality testing (Section 3 of the paper).
    # ------------------------------------------------------------------
    checker = LegalityChecker(schema)
    report = checker.check(directory)
    print(f"directory with {len(directory)} entries: "
          f"{'LEGAL' if report.is_legal else 'ILLEGAL'}")

    # ------------------------------------------------------------------
    # 4. Violations are structured and explain themselves.
    # ------------------------------------------------------------------
    directory.add_entry(labs, "ou=empty", ["orgUnit", "top"], {"ou": ["empty"]})
    report = checker.check(directory)
    print(f"after adding an empty orgUnit: "
          f"{'LEGAL' if report.is_legal else 'ILLEGAL'}")
    for violation in report:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
