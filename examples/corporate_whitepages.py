"""The paper's running example, end to end.

Reconstructs Figures 1-3 (the corporate white-pages directory), tests
legality via the Figure 4 query reduction, then replays the Section 4.2
update scenarios through the incremental checker — including the two
updates the paper uses to motivate subtree granularity and rejection.

Run with::

    python examples/corporate_whitepages.py
"""

from repro import DirectoryInstance, LegalityChecker, serialize_ldif
from repro.query import translate_element
from repro.schema.dsl import serialize_dsl
from repro.updates import IncrementalChecker, UpdateTransaction
from repro.workloads import figure1_instance, whitepages_schema


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    schema = whitepages_schema()
    directory = figure1_instance()

    show("The bounding-schema (Figures 2-3) in DSL form")
    print(serialize_dsl(schema))

    show("Figure 4: structure elements translated to queries")
    for element in schema.structure_schema.elements():
        print(f"  {translate_element(element)}")

    show("Figure 1 instance is legal")
    checker = LegalityChecker(schema)
    print(f"  entries: {len(directory)}")
    print(f"  verdict: {'LEGAL' if checker.is_legal(directory) else 'ILLEGAL'}")

    # ------------------------------------------------------------------
    # Section 4.2, example 1: inserting a new orgUnit under attLabs.
    # Checking after the bare orgUnit insertion would wrongly fail
    # (orgGroup →→ person); at subtree granularity the whole Δ passes.
    # ------------------------------------------------------------------
    show("Section 4.2: subtree insertion under ou=attLabs")
    guard = IncrementalChecker(schema, directory)
    delta = DirectoryInstance(attributes=directory.attributes)
    unit = delta.add_entry(
        None, "ou=networking", ["orgUnit", "orgGroup", "top"],
        {"ou": ["networking"]},
    )
    delta.add_entry(
        unit, "uid=chen", ["researcher", "person", "top"],
        {"uid": ["chen"], "name": ["wei chen"]},
    )
    outcome = guard.try_insert("ou=attLabs,o=att", delta)
    print(f"  applied: {outcome.applied} (cost: {outcome.cost} entries touched)")
    for check in outcome.checks:
        print(f"    {check}")

    # ------------------------------------------------------------------
    # Section 4.2, example 2: an orgUnit below person suciu must be
    # rejected — it violates orgUnit ← orgGroup and person ↛ top, and
    # neither violation is visible from Δ alone.
    # ------------------------------------------------------------------
    show("Section 4.2: orgUnit under a person is rejected")
    bad = DirectoryInstance(attributes=directory.attributes)
    bad_unit = bad.add_entry(
        None, "ou=rogue", ["orgUnit", "orgGroup", "top"], {"ou": ["rogue"]}
    )
    bad.add_entry(
        bad_unit, "uid=x", ["person", "top"], {"uid": ["x"], "name": ["x y"]}
    )
    outcome = guard.try_insert("uid=suciu,ou=databases,ou=attLabs,o=att", bad)
    print(f"  applied: {outcome.applied}")
    for violation in outcome.report:
        print(f"    {violation}")

    # ------------------------------------------------------------------
    # A whole transaction (Theorem 4.1): singleton operations are
    # grouped into subtrees, checked step by step, rolled back together.
    # ------------------------------------------------------------------
    show("Theorem 4.1: transaction of single-entry operations")
    tx = (
        UpdateTransaction()
        .insert("ou=theory,ou=attLabs,o=att",
                ["orgUnit", "orgGroup", "top"], {"ou": ["theory"]})
        .insert("uid=nina,ou=theory,ou=attLabs,o=att",
                ["person", "online", "top"],
                {"uid": ["nina"], "name": ["nina novak"],
                 "mail": ["nina@example.com"]})
        .delete("uid=armstrong,o=att")
    )
    outcome = guard.apply_transaction(tx)
    print(f"  applied: {outcome.applied}")
    print(f"  instance still legal: {checker.is_legal(directory)}")

    show("Resulting directory (LDIF)")
    print(serialize_ldif(directory))


if __name__ == "__main__":
    main()
