"""Directory-enabled networks (DEN): schema authoring with a consistency
gate.

The paper's introduction motivates bounding-schemas with DEN directories
(network resources and policies in LDAP).  This example:

1. authors the DEN bounding-schema and *gates it on consistency* —
   including a realistic authoring mistake the inference system catches
   with a readable proof (Section 5);
2. generates a network inventory and validates it (Section 3);
3. evolves it under the incremental checker (Section 4).

Run with::

    python examples/den_network_policies.py
"""

from repro import LegalityChecker
from repro.consistency import check_consistency
from repro.updates import IncrementalChecker, UpdateTransaction
from repro.workloads import den_schema, den_schema_overconstrained, generate_den


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The consistency gate catches an over-constrained schema.
    # ------------------------------------------------------------------
    show("An authoring mistake: 'policies live under domains only'")
    print("  adding  top ↛ policy  to say policies may not be children")
    print("  of arbitrary entries contradicts  policyDomain →→ policy:")
    result = check_consistency(den_schema_overconstrained())
    print(f"  consistent: {result.consistent}")
    print("  proof of inconsistency:")
    for line in (result.proof() or "").splitlines():
        print(f"    {line}")

    show("The corrected schema passes, with a synthesized witness")
    schema = den_schema()
    result = check_consistency(schema, synthesize=True)
    print(f"  consistent: {result.consistent}")
    print(f"  witness: a legal instance with {len(result.witness)} entries")

    # ------------------------------------------------------------------
    # 2. Generate and validate an inventory.
    # ------------------------------------------------------------------
    show("Network inventory")
    inventory = generate_den(sites=3, devices_per_site=4,
                             interfaces_per_device=3, domains=2,
                             policies_per_domain=4, seed=2026)
    checker = LegalityChecker(schema)
    print(f"  entries: {len(inventory)} "
          f"(sites={inventory.class_count('site')}, "
          f"routers={inventory.class_count('router')}, "
          f"interfaces={inventory.class_count('interface')}, "
          f"policies={inventory.class_count('policy')})")
    print(f"  verdict: {'LEGAL' if checker.is_legal(inventory) else 'ILLEGAL'}")

    # ------------------------------------------------------------------
    # 3. Guarded evolution.
    # ------------------------------------------------------------------
    show("Provisioning a new router (with its first interface)")
    guard = IncrementalChecker(schema, inventory, assume_legal=True)
    tx = (
        UpdateTransaction()
        .insert("hostname=router-new,siteName=site0",
                ["router", "device", "netElement", "managed", "top"],
                {"hostname": ["router-new.example.net"],
                 "snmpCommunity": ["public"],
                 "routingProtocol": ["bgp"]})
        .insert("ifIndex=1,hostname=router-new,siteName=site0",
                ["interface", "netElement", "top"],
                {"ifIndex": [1], "ipAddress": ["10.9.0.1"]})
    )
    outcome = guard.apply_transaction(tx)
    print(f"  applied: {outcome.applied}")

    show("A router without interfaces is rejected")
    tx = UpdateTransaction().insert(
        "hostname=router-bare,siteName=site1",
        ["router", "device", "netElement", "top"],
        {"hostname": ["router-bare.example.net"]},
    )
    outcome = guard.apply_transaction(tx)
    print(f"  applied: {outcome.applied}")
    for violation in outcome.report:
        print(f"    {violation}")

    show("Nesting a device under a device is rejected")
    router_dn = "hostname=router-new,siteName=site0"
    tx = UpdateTransaction().insert(
        f"hostname=sub,{router_dn}",
        ["switch", "device", "netElement", "top"],
        {"hostname": ["sub.example.net"]},
    )
    outcome = guard.apply_transaction(tx)
    print(f"  applied: {outcome.applied}")
    for violation in outcome.report:
        print(f"    {violation}")

    print()
    print(f"inventory still legal: {checker.is_legal(inventory)} "
          f"({len(inventory)} entries)")


if __name__ == "__main__":
    main()
