"""Schema workbench: exploring the Section 5 consistency machinery.

Walks through the paper's worked inconsistency examples (cycles,
hierarchy-induced cycles, contradictions), shows proof trees, uses the
empty-class lint, cross-checks verdicts against the bounded model finder,
and synthesizes witnesses.

Run with::

    python examples/schema_workbench.py
"""

from repro.axes import Axis
from repro.consistency import check_consistency, close, find_model
from repro.schema import (
    AttributeSchema,
    ClassSchema,
    DirectorySchema,
    StructureSchema,
    Subclass,
)
from repro.schema.elements import RequiredClass, RequiredEdge


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def report(schema: DirectorySchema) -> None:
    result = check_consistency(schema, synthesize=True)
    print(f"  consistent: {result.consistent}")
    if result.consistent:
        empties = result.empty_classes()
        if empties:
            print(f"  lint: classes that can never be populated: {sorted(empties)}")
        if result.witness is not None:
            print(f"  witness: legal instance with {len(result.witness)} entries")
    else:
        print("  proof:")
        for line in (result.proof() or "").splitlines():
            print(f"    {line}")
    model = find_model(schema, max_entries=4)
    print(f"  bounded model finder (≤4 entries) agrees: "
          f"{(model is not None) == result.consistent} "
          f"{'(model: ' + repr(model) + ')' if model else ''}")


def flat_schema(*names: str) -> ClassSchema:
    classes = ClassSchema()
    for name in names:
        classes.add_core(name)
    return classes


def main() -> None:
    # ------------------------------------------------------------------
    show("Section 5.1: a cycle — c1 □, c1 → c2, c2 →→ c1")
    structure = (
        StructureSchema()
        .require_class("c1")
        .require_child("c1", "c2")
        .require_descendant("c2", "c1")
    )
    report(DirectorySchema(AttributeSchema(), flat_schema("c1", "c2"), structure))

    show("Footnote 3: the same edges without c1 □ are satisfiable")
    structure = (
        StructureSchema().require_child("c1", "c2").require_descendant("c2", "c1")
    )
    report(DirectorySchema(AttributeSchema(), flat_schema("c1", "c2"), structure))

    # ------------------------------------------------------------------
    show("Section 5.1: a cycle through the class hierarchy")
    print("  c1 □, c2 → c3, c4 →→ c5   with   c1 ⊑ c2, c3 ⊑ c4, c5 ⊑ c1")
    closure = close([
        RequiredClass("c1"),
        RequiredEdge(Axis.CHILD, "c2", "c3"),
        RequiredEdge(Axis.DESCENDANT, "c4", "c5"),
        Subclass("c1", "c2"),
        Subclass("c3", "c4"),
        Subclass("c5", "c1"),
    ])
    print(f"  consistent: {closure.consistent}")
    print("  proof:")
    for line in (closure.proof_of_inconsistency() or "").splitlines():
        print(f"    {line}")

    # ------------------------------------------------------------------
    show("Section 5.2: a contradiction — c1 □, c1 →→ c2, c1 ↛↛ c2")
    structure = (
        StructureSchema()
        .require_class("c1")
        .require_descendant("c1", "c2")
        .forbid_descendant("c1", "c2")
    )
    report(DirectorySchema(AttributeSchema(), flat_schema("c1", "c2"), structure))

    # ------------------------------------------------------------------
    show("A subtle case found by differential testing (see DESIGN.md)")
    print("  k4 → k1, k1 ⇐⇐ k2 (required ancestor), k2 ⇐ k4 (required")
    print("  parent), k2 □: every k4 needs a k2 strictly above it, and")
    print("  every k2 needs a k4 strictly above it — an infinite tower.")
    structure = (
        StructureSchema()
        .require_class("k2")
        .require_child("k4", "k1")
        .require_ancestor("k1", "k2")
        .require_parent("k2", "k4")
    )
    report(DirectorySchema(AttributeSchema(), flat_schema("k1", "k2", "k4"), structure))

    # ------------------------------------------------------------------
    show("The empty-class lint on a consistent schema")
    print("  c →→ c alone is consistent — but only because no legal")
    print("  instance may contain a c at all; worth telling the author:")
    structure = StructureSchema().require_descendant("c", "c").require_class("d")
    report(DirectorySchema(AttributeSchema(), flat_schema("c", "d"), structure))


if __name__ == "__main__":
    main()
