"""Schema evolution and schema-aware query optimization.

Two things bounding-schemas enable beyond validation:

1. **Evolution analysis** (Section 6.2): the paper stresses that many
   schema changes are "extremely lightweight, involving no modifications
   to existing directory entries".  The analyzer classifies a diff
   between two schema versions into relaxing vs narrowing changes and
   tells the operator whether re-validation is needed.

2. **Query optimization** (the paper's future work): the consistency
   closure knows facts every legal instance satisfies, which lets a
   query processor constant-fold hierarchical queries.

Run with::

    python examples/schema_evolution_and_optimization.py
"""

from repro.axes import Axis
from repro.query.ast import HSelect
from repro.query.optimizer import SchemaAwareOptimizer
from repro.query.translate import class_selection
from repro.schema.evolution import EvolutionAnalyzer
from repro.workloads import figure1_instance, whitepages_schema


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    # ------------------------------------------------------------------
    # Evolution, round 1: a lightweight release.
    # ------------------------------------------------------------------
    show("v2: add a vpnUser auxiliary and allow pagers — lightweight")
    v1 = whitepages_schema()
    v2 = whitepages_schema()
    v2.class_schema.add_auxiliary("vpnUser")
    v2.class_schema.allow_auxiliary("person", "vpnUser")
    v2.attribute_schema._allowed["person"] = (
        v2.attribute_schema.allowed("person") | {"pager"}
    )
    analyzer = EvolutionAnalyzer(v1, v2)
    print(analyzer.analyze())
    directory = figure1_instance()
    print(f"  Figure 1 data under v2 without any migration: "
          f"{'LEGAL' if analyzer.revalidate(directory).is_legal else 'ILLEGAL'}")

    # ------------------------------------------------------------------
    # Evolution, round 2: a narrowing release.
    # ------------------------------------------------------------------
    show("v3: every orgUnit must now record a location — narrowing")
    v3 = whitepages_schema()
    v3.attribute_schema._required["orgUnit"] = frozenset({"ou", "location"})
    analyzer = EvolutionAnalyzer(v1, v3)
    print(analyzer.analyze())
    report = analyzer.revalidate(directory)
    print("  re-validation of the Figure 1 data:")
    for violation in report:
        print(f"    {violation}")

    # ------------------------------------------------------------------
    # Schema-aware query optimization.
    # ------------------------------------------------------------------
    show("Optimizer: folding queries with schema facts")
    optimizer = SchemaAwareOptimizer(v1)
    examples = [
        HSelect(Axis.CHILD, class_selection("person"), class_selection("top")),
        HSelect(Axis.CHILD, class_selection("organization"),
                class_selection("orgUnit")),
        HSelect(Axis.ANCESTOR, class_selection("organization"),
                class_selection("orgGroup")),
    ]
    for query in examples:
        result = optimizer.optimize(query)
        print(f"  {query}")
        print(f"    → {result.query}")
        for note in result.notes:
            print(f"      because {note}")


if __name__ == "__main__":
    main()
