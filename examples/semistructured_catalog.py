"""Section 6.3: bounding-schemas beyond LDAP — semi-structured data.

Builds the paper's two motivating constraint families over a labeled
data graph:

* every *person* node must have a *name* node somewhere below it
  (arbitrary path length — inexpressible as fixed-length or
  destination-regular path constraints);
* *country* and *corporation* nesting: national corporations,
  international corporations, and conglomerates are all allowed, but no
  country may sit below another country.

Then demonstrates the bridge: for tree-shaped graphs, the same
constraints can be checked through the LDAP machinery (Figure 4 query
reduction) with identical verdicts.

Run with::

    python examples/semistructured_catalog.py
"""

from repro.legality.structure import QueryStructureChecker
from repro.semistructured import (
    DataGraph,
    GraphConstraints,
    GraphValidator,
    constraints_to_structure_schema,
    graph_to_instance,
)


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def build_world() -> DataGraph:
    g = DataGraph()
    g.add_node("world", "root")

    us = g.add_child("world", "us", "country")
    att = g.add_child(us, "att", "corporation")       # national
    g.add_child(att, "att-research", "corporation")   # conglomerate

    multi = g.add_child("world", "multi", "corporation")
    mx = g.add_child(multi, "multi-mx", "country")    # international
    g.add_child(mx, "mx-person", "person")
    g.add_child("mx-person", "mx-name", "name", "Ana Rivera")

    g.add_child(us, "us-person", "person")
    contact = g.add_child("us-person", "us-contact", "contact")
    g.add_child(contact, "us-name", "name", "Amy Stone")
    return g


def main() -> None:
    graph = build_world()
    constraints = (
        GraphConstraints()
        .require_label("person")
        .require_descendant("person", "name")
        .forbid_descendant("country", "country")
    )
    validator = GraphValidator(constraints)

    show("A legal catalog graph")
    print(f"  nodes: {len(graph)}, labels: {sorted(graph.labels())}")
    report = validator.check(graph)
    print(f"  verdict: {'LEGAL' if report.is_legal else 'ILLEGAL'}")

    show("Violation 1: a nameless person (any path length would do)")
    graph.add_child("att", "ghost", "person")
    report = validator.check(graph)
    for violation in report:
        print(f"  {violation}")
    # fix it — deep below, through intermediate nodes
    hr = graph.add_child("ghost", "ghost-hr", "contact")
    graph.add_child(hr, "ghost-name", "name", "G. Host")
    print(f"  fixed at depth 2: legal again = {validator.is_legal(graph)}")

    show("Violation 2: a country nested below a country")
    graph.add_child("att-research", "att-de", "country")
    report = validator.check(graph)
    for violation in report:
        print(f"  {violation}")
    print("  note: corporation-under-corporation stays allowed; only the")
    print("  country/country pair violates the upper bound.")

    show("The bridge: same constraints through the LDAP machinery")
    graph2 = build_world()
    instance = graph_to_instance(graph2)
    structure = constraints_to_structure_schema(constraints)
    directory_checker = QueryStructureChecker(structure)
    print(f"  graph checker:     {GraphValidator(constraints).is_legal(graph2)}")
    print(f"  directory checker: {directory_checker.is_legal(instance)}")
    graph2.add_child("att", "ghost2", "person")
    print("  after breaking the graph:")
    print(f"  graph checker:     {GraphValidator(constraints).is_legal(graph2)}")
    print(f"  directory checker: "
          f"{directory_checker.is_legal(graph_to_instance(graph2))}")

    show("Sharing and cycles (where the LDAP embedding stops)")
    shared = DataGraph()
    shared.add_node("db", "root")
    a = shared.add_child("db", "deptA", "dept")
    b = shared.add_child("db", "deptB", "dept")
    person = shared.add_child(a, "shared-person", "person")
    shared.add_edge(b, person)  # one person, two departments
    shared.add_child(person, "shared-name", "name", "Wei Chen")
    print(f"  tree-shaped: {shared.is_tree_shaped()}")
    print(f"  graph checker still works: "
          f"{GraphValidator(GraphConstraints().require_descendant('person', 'name')).is_legal(shared)}")


if __name__ == "__main__":
    main()
