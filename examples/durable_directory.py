"""A durable, schema-guarded directory service in ~60 lines.

Demonstrates the snapshot+journal store: create, apply guarded
transactions (including a rejected one), crash, recover, compact.

Run with::

    python examples/durable_directory.py
"""

import shutil
import tempfile

from repro.ldif import serialize_ldif
from repro.store import DirectoryStore
from repro.updates import UpdateTransaction
from repro.workloads import figure1_instance, whitepages_schema


def show(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="bounding-schemas-store-")
    schema = whitepages_schema()

    show(f"Create the store at {workdir}")
    store = DirectoryStore.create(workdir, schema, figure1_instance())
    print(f"  snapshot: {len(store.instance)} entries, journal empty")

    show("A legal transaction commits and is journaled")
    tx = (
        UpdateTransaction()
        .insert("ou=theory,ou=attLabs,o=att",
                ["orgUnit", "orgGroup", "top"], {"ou": ["theory"]})
        .insert("uid=nina,ou=theory,ou=attLabs,o=att",
                ["person", "top"], {"uid": ["nina"], "name": ["nina novak"]})
    )
    outcome = store.apply(tx)
    print(f"  applied: {outcome.applied}; journal length: {store.journal_length}")

    show("An illegal transaction is rejected, never journaled")
    bad = UpdateTransaction().insert(
        "ou=empty,o=att", ["orgUnit", "orgGroup", "top"], {"ou": ["empty"]}
    )
    outcome = store.apply(bad)
    print(f"  applied: {outcome.applied}; journal length: {store.journal_length}")
    for violation in outcome.report:
        print(f"    {violation}")

    show("Crash and recover (snapshot + journal replay)")
    live_state = serialize_ldif(store.instance)
    del store  # 'crash': the dying handle drops its advisory lock
    recovered = DirectoryStore.open(workdir, schema)
    print(f"  recovered {len(recovered.instance)} entries; "
          f"identical to live state: "
          f"{serialize_ldif(recovered.instance) == live_state}")
    print(f"  still legal: {recovered.check().is_legal}")

    show("Compaction folds the journal into the snapshot")
    recovered.compact()
    print(f"  journal length: {recovered.journal_length}")
    recovered.close()  # a live handle locks the store against second opens
    with DirectoryStore.open(workdir, schema) as reopened:
        print(f"  reopen after compaction: {len(reopened.instance)} entries, "
              f"legal: {reopened.check().is_legal}")

    shutil.rmtree(workdir)
    print(f"\n(cleaned up {workdir})")


if __name__ == "__main__":
    main()
