"""Experiment FIG2 — the Figure 2 class schema and content checking.

Section 3.1 bounds per-entry class-schema checking by
``O(|class(e)| + max|Aux(c)| * depth(H))`` and attribute checking by
``O(|val(e)| + Σ|a(c)|)``.  This bench measures content checking on the
Figure 2 schema and verifies the shape: per-entry work stays flat as the
*instance* grows (content checks are per-entry and independent), and
total work grows linearly.
"""

import pytest

from repro.legality.content import ContentChecker
from repro.schema.attribute_schema import AttributeSchema
from repro.schema.class_schema import ClassSchema
from repro.schema.directory_schema import DirectorySchema
from repro.schema.structure_schema import StructureSchema
from repro.model.instance import DirectoryInstance

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


@pytest.mark.parametrize("tier", list(WHITEPAGES_TIERS))
def test_content_check(benchmark, tier):
    """Content checking per tier (the FIG2 series)."""
    checker = ContentChecker(wp_schema())
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    assert benchmark(lambda: checker.check(instance).is_legal)


def test_single_entry_check(benchmark):
    """Per-entry cost on the busiest Figure 1 entry (laks: 5 classes,
    multi-valued mail)."""
    from repro.workloads import figure1_instance

    checker = ContentChecker(wp_schema())
    instance = figure1_instance()
    entry = instance.entry("uid=laks,ou=databases,ou=attLabs,o=att")
    violations = benchmark(lambda: checker.check_entry(entry))
    assert violations == []


def _deep_schema(depth: int) -> DirectorySchema:
    classes = ClassSchema()
    parent = "top"
    for level in range(depth):
        classes.add_core(f"level{level}", parent=parent)
        parent = f"level{level}"
    attributes = AttributeSchema()
    for level in range(depth):
        attributes.declare(f"level{level}")
    return DirectorySchema(attributes, classes, StructureSchema()).validate()


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_hierarchy_depth_scaling(benchmark, depth):
    """Checking an entry of the deepest class scales with depth(H) —
    the chain test walks one superclass chain, not all class pairs."""
    schema = _deep_schema(depth)
    checker = ContentChecker(schema)
    instance = DirectoryInstance()
    chain = [f"level{i}" for i in range(depth)] + ["top"]
    entry = instance.add_entry(None, "cn=deep", chain)
    benchmark.extra_info["depth"] = depth
    violations = benchmark(lambda: checker.check_entry(entry))
    assert violations == []


def test_content_work_is_linear_in_instance(benchmark):
    """Total content-check time across tiers fits a linear growth
    exponent (measured by timing small/large once, coarse but stable
    because the per-entry work is constant for this workload)."""
    import time

    checker = ContentChecker(wp_schema())
    sizes, costs = [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        start = time.perf_counter()
        for _ in range(3):
            checker.check(instance)
        elapsed = time.perf_counter() - start
        sizes.append(len(instance))
        costs.append(max(1, int(elapsed * 1e7)))
    exponent = fit_growth(sizes, costs)
    print_series("FIG2: content-check time vs |D|", list(zip(sizes, costs)))
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert 0.7 <= exponent <= 1.4, f"not linear: exponent {exponent:.2f}"
    instance = whitepages_instance("medium")
    benchmark(lambda: checker.check(instance).is_legal)
