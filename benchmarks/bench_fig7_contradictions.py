"""Experiment FIG7 — the contradiction-detection inference rules.

Reproduces Figure 7's behaviour on contradiction families:

* the direct Section 5.2 pattern (``c □, c →→ d, c ↛↛ d``) buried at a
  random position inside an otherwise-consistent random schema of
  growing size;
* hierarchy-mediated contradictions (forbidden at a superclass,
  required at a subclass);
* top-interaction contradictions (leaf classes required to have
  children; root classes required to have parents).

Shape claim: detection cost stays polynomial in schema size, and the
verdict is always ⊥ no matter where the contradiction hides.
"""

import pytest

from repro.axes import Axis
from repro.consistency.checker import check_consistency
from repro.consistency.engine import close
from repro.schema.elements import (
    ForbiddenEdge,
    RequiredClass,
    RequiredEdge,
    Subclass,
)
from repro.workloads import random_schema

from _helpers import fit_growth, print_series


def test_direct_contradiction(benchmark):
    """The exact Section 5.2 pattern."""
    elements = [
        RequiredClass("c1"),
        RequiredEdge(Axis.DESCENDANT, "c1", "c2"),
        ForbiddenEdge(Axis.DESCENDANT, "c1", "c2"),
    ]
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent


def test_hierarchy_mediated_contradiction(benchmark):
    """Forbidden at the superclass, required at the subclass."""
    elements = [
        RequiredClass("sub"),
        Subclass("sub", "sup"),
        RequiredEdge(Axis.DESCENDANT, "sub", "x"),
        ForbiddenEdge(Axis.DESCENDANT, "sup", "x"),
    ]
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent


def test_top_interaction_contradiction(benchmark):
    """A leaf class (``c ↛ top``) that must have children."""
    elements = [
        RequiredClass("c"),
        ForbiddenEdge(Axis.CHILD, "c", "top"),
        RequiredEdge(Axis.CHILD, "c", "d"),
    ]
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent


@pytest.mark.parametrize("n_classes", [6, 12, 24])
def test_hidden_contradiction_in_random_schema(benchmark, n_classes):
    """A contradiction injected into a random consistent schema of
    growing size is always found."""
    schema = random_schema(
        n_classes=n_classes,
        n_required=n_classes // 2,
        n_forbidden=n_classes // 3,
        seed=99,
        mode="contradictory",
    )
    benchmark.extra_info["classes"] = n_classes
    result = benchmark(lambda: check_consistency(schema))
    assert not result.consistent


def test_detection_cost_scales_polynomially(benchmark):
    """Closure time on growing contradictory schemas — polynomial
    exponent asserted."""
    import time

    sizes, times = [], []
    for n in (6, 12, 24, 48):
        schema = random_schema(
            n_classes=n, n_required=n // 2, n_forbidden=n // 3,
            seed=5, mode="contradictory",
        )
        elements = list(schema.all_elements())
        start = time.perf_counter()
        closure = close(elements)
        times.append(time.perf_counter() - start)
        sizes.append(n)
        assert not closure.consistent
    exponent = fit_growth(sizes, [max(1, int(t * 1e9)) for t in times])
    print_series(
        "FIG7: detection time vs #classes",
        [(f"n={s}", f"time={t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"time exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["time_exponent"] = round(exponent, 3)
    assert exponent < 3.6, f"should stay polynomial, got {exponent:.2f}"

    schema = random_schema(n_classes=12, n_required=6, n_forbidden=4,
                           seed=5, mode="contradictory")
    elements = list(schema.all_elements())
    benchmark(lambda: close(elements))


def test_proof_reconstruction(benchmark):
    """Building the ⊥ proof tree (the explain path) is cheap."""
    schema = random_schema(n_classes=12, n_required=6, n_forbidden=4,
                           seed=7, mode="contradictory")
    closure = close(schema.all_elements())
    assert not closure.consistent
    proof = benchmark(closure.proof_of_inconsistency)
    assert "∅ □" in proof
