"""Experiment FIG5 — incremental legality testing under updates.

Reproduces the payoff of Figure 5 / Theorem 4.2: on a legal instance,
checking a subtree *insertion* incrementally (Δ-scoped queries) costs
work proportional to |Δ|, independent of |D| — while a full re-check
costs Θ(|D|).  Deletion splits by row: the ``∅``-scoped rows are free,
the required-child/descendant rows fall back to a full pass.

Series produced: per-tier incremental-vs-full work counters and the
speedup factor, plus wall-clock benchmarks of guarded insertion.
"""

import random

import pytest

from repro.updates.incremental import IncrementalChecker
from repro.workloads import make_unit_subtree

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


def _guard(tier: str) -> IncrementalChecker:
    # Work on a private copy: benchmarks must not mutate the cache.
    instance = whitepages_instance(tier).copy()
    return IncrementalChecker(wp_schema(), instance, assume_legal=True)


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_guarded_insertion(benchmark, tier):
    """try_insert of a 3-entry unit (insert + rollback via delete to
    keep the instance stable across rounds)."""
    guard = _guard(tier)
    rng = random.Random(0)
    parent = "o=org0"
    benchmark.extra_info["entries"] = len(guard.instance)

    def insert_and_remove():
        delta = make_unit_subtree(rng, persons=2,
                                  attributes=guard.instance.attributes)
        outcome = guard.try_insert(parent, delta)
        assert outcome.applied
        root_dn = f"{delta.dn_of(delta.root_ids()[0])},{parent}"
        guard.instance.delete_subtree(root_dn)
        return outcome.cost

    benchmark(insert_and_remove)


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_full_recheck_baseline(benchmark, tier):
    """The non-incremental alternative: full legality re-check."""
    guard = _guard(tier)
    benchmark.extra_info["entries"] = len(guard.instance)
    assert benchmark(lambda: guard.full_recheck().is_legal)


def test_insertion_cost_independent_of_instance_size(benchmark):
    """The FIG5 headline: incremental insertion work stays ~flat in |D|
    (growth exponent ≈ 0) while the full re-check grows linearly."""
    rng = random.Random(7)
    sizes, inc_costs, full_costs = [], [], []
    for tier in WHITEPAGES_TIERS:
        guard = _guard(tier)
        delta = make_unit_subtree(rng, persons=2,
                                  attributes=guard.instance.attributes)
        outcome = guard.try_insert("o=org0", delta)
        assert outcome.applied
        sizes.append(len(guard.instance))
        inc_costs.append(outcome.cost)
        # full re-check work proxy: structure evaluation over all of D.
        # Summing per-call ``last_cost`` attributes the work to each
        # check explicitly instead of reading the evaluator's silently
        # accumulating ``cost`` counter.
        from repro.query.evaluator import QueryEvaluator

        evaluator = QueryEvaluator(guard.instance)
        full_cost = 0
        for check in guard.structure.checks:
            evaluator.evaluate(check.query)
            full_cost += evaluator.last_cost
        assert full_cost == evaluator.cost  # attribution covers all work
        full_costs.append(full_cost + len(guard.instance))

    inc_exp = fit_growth(sizes, inc_costs)
    full_exp = fit_growth(sizes, full_costs)
    print_series(
        "FIG5: insertion — incremental vs full work",
        [
            (f"|D|={s}", f"incremental={i}", f"full={f}", f"speedup={f / i:.1f}x")
            for s, i, f in zip(sizes, inc_costs, full_costs)
        ]
        + [(f"growth exponents: incremental={inc_exp:.2f}", f"full={full_exp:.2f}")],
    )
    benchmark.extra_info["incremental_exponent"] = round(inc_exp, 3)
    benchmark.extra_info["full_exponent"] = round(full_exp, 3)
    assert inc_exp < 0.35, f"incremental cost should be ~flat, got {inc_exp:.2f}"
    assert full_exp > 0.8, f"full re-check should be ~linear, got {full_exp:.2f}"
    assert full_costs[-1] / inc_costs[-1] > 10, "expected >10x speedup at scale"

    guard = _guard("medium")

    def insert_and_remove():
        delta = make_unit_subtree(rng, persons=2,
                                  attributes=guard.instance.attributes)
        assert guard.try_insert("o=org0", delta).applied
        guard.instance.delete_subtree(f"{delta.dn_of(delta.root_ids()[0])},o=org0")

    benchmark(insert_and_remove)


def test_deletion_skip_rows_are_free(benchmark):
    """Figure 5 deletion rows: required-parent/ancestor and forbidden
    forms need no evaluation; with the white-pages schema only
    ``orgGroup →→ person`` (required descendant) and
    ``organization → orgUnit`` (required child) force full passes."""
    guard = _guard("medium")
    # pick a deletable person (keeps orgGroup →→ person satisfied)
    person_dns = sorted(
        str(guard.instance.dn_of(e))
        for e in guard.instance.entries_with_class("person")
    )
    target = person_dns[0]

    outcome = guard.try_delete(target)
    skip_count = sum(1 for c in outcome.checks if c.startswith("skip"))
    full_count = sum(1 for c in outcome.checks if "full re-check" in c)
    print_series(
        "FIG5: deletion row behaviour",
        [(c,) for c in outcome.checks],
    )
    benchmark.extra_info["skipped_rows"] = skip_count
    benchmark.extra_info["full_rows"] = full_count
    assert skip_count >= 3  # person↛top, top↛organization, orgUnit←orgGroup
    assert full_count == 2  # orgGroup→→person, organization→orgUnit

    # timed kernel: delete+reinsert cycle
    guard2 = _guard("medium")
    dns = sorted(
        str(guard2.instance.dn_of(e))
        for e in guard2.instance.entries_with_class("person")
    )

    def delete_and_restore():
        entry = guard2.instance.entry(dns[0])
        parent = guard2.instance.parent_of(entry)
        removed = guard2.instance.delete_subtree(entry)
        guard2.instance.insert_subtree(str(parent.dn), removed)

    benchmark(delete_and_restore)
