"""Experiment THM41 — update-transaction modularity.

Theorem 4.1 licenses checking any transaction as subtree insertions
followed by subtree deletions.  This bench measures:

* decomposition overhead (grouping single-entry operations into maximal
  subtrees) — linear in transaction length;
* guarded transaction application (decompose + per-subtree incremental
  checks) versus the naive alternative (apply everything, then full
  re-check) — the modular path must win and widen with |D|.
"""

import pytest

from repro.legality.checker import LegalityChecker
from repro.updates.incremental import IncrementalChecker
from repro.updates.transactions import decompose
from repro.workloads import random_transaction

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


@pytest.mark.parametrize("ops", [4, 16, 64])
def test_decomposition(benchmark, ops):
    """Grouping a transaction of ``2*ops`` operations into subtrees."""
    instance = whitepages_instance("medium")
    tx = random_transaction(instance, inserts=ops, seed=3)
    benchmark.extra_info["operations"] = len(tx)
    steps = benchmark(lambda: decompose(tx, instance))
    assert len(steps) == ops  # each unit+person pair is one subtree


def test_decomposition_linear_in_transaction_size(benchmark):
    """Decomposition work grows linearly with operation count."""
    import time

    instance = whitepages_instance("medium")
    sizes, times = [], []
    for ops in (8, 16, 32, 64, 128):
        tx = random_transaction(instance, inserts=ops, seed=11)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            decompose(tx, instance)
            best = min(best, time.perf_counter() - start)
        sizes.append(len(tx))
        times.append(best)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "THM41: decomposition time vs |U|",
        [(f"|U|={s}", f"{t:.5f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.5, f"decomposition should be ~linear, got {exponent:.2f}"

    tx = random_transaction(instance, inserts=32, seed=11)
    benchmark(lambda: decompose(tx, instance))


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_guarded_transaction(benchmark, tier):
    """Modular path: decompose + incremental per-subtree checks.
    Applied to a private copy each round (setup excluded from timing)."""
    schema = wp_schema()

    def setup():
        instance = whitepages_instance(tier).copy()
        guard = IncrementalChecker(schema, instance, assume_legal=True)
        tx = random_transaction(instance, inserts=3, seed=21)
        return (guard, tx), {}

    def run(guard, tx):
        outcome = guard.apply_transaction(tx)
        assert outcome.applied

    benchmark.extra_info["entries"] = len(whitepages_instance(tier))
    benchmark.pedantic(run, setup=setup, rounds=10)


def test_modular_beats_apply_then_recheck(benchmark):
    """Guarded (incremental) application does asymptotically less work
    than apply-everything-then-full-recheck."""
    import time

    schema = wp_schema()
    full = LegalityChecker(schema)
    sizes, guarded_times, recheck_times = [], [], []
    for tier in WHITEPAGES_TIERS:
        base = whitepages_instance(tier)

        # guarded path
        instance = base.copy()
        guard = IncrementalChecker(schema, instance, assume_legal=True)
        tx = random_transaction(instance, inserts=3, seed=33)
        start = time.perf_counter()
        assert guard.apply_transaction(tx).applied
        guarded = time.perf_counter() - start

        # naive path: apply blindly, then full re-check
        instance2 = base.copy()
        tx2 = random_transaction(instance2, inserts=3, seed=33)
        start = time.perf_counter()
        for step in decompose(tx2, instance2):
            from repro.updates.transactions import apply_subtree_update

            apply_subtree_update(instance2, step)
        assert full.check(instance2).is_legal
        recheck = time.perf_counter() - start

        sizes.append(len(base))
        guarded_times.append(guarded)
        recheck_times.append(recheck)

    guarded_exp = fit_growth(sizes, [int(t * 1e9) for t in guarded_times])
    recheck_exp = fit_growth(sizes, [int(t * 1e9) for t in recheck_times])
    print_series(
        "THM41: guarded vs apply+full-recheck (seconds)",
        [
            (f"|D|={s}", f"guarded={g:.5f}", f"recheck={r:.5f}",
             f"ratio={r / g:.1f}x")
            for s, g, r in zip(sizes, guarded_times, recheck_times)
        ]
        + [(f"exponents: guarded={guarded_exp:.2f}", f"recheck={recheck_exp:.2f}")],
    )
    benchmark.extra_info["guarded_exponent"] = round(guarded_exp, 3)
    benchmark.extra_info["recheck_exponent"] = round(recheck_exp, 3)
    assert recheck_times[-1] > guarded_times[-1], "modular path should win at scale"
    assert recheck_exp > guarded_exp, "re-check should grow faster"

    instance = whitepages_instance("medium").copy()
    guard = IncrementalChecker(schema, instance, assume_legal=True)

    def kernel():
        tx = random_transaction(instance, inserts=1, seed=44)
        assert guard.apply_transaction(tx).applied

    benchmark(kernel)
