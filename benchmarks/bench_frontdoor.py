"""Extension benchmark — the read-balancing front door.

Claims under test: (1) **read scale-out** — ``check`` verdicts (the
Theorem 4.1 modular re-verification, the priciest read the protocol
offers) routed through the front door over two follower server
*processes* must reach >= 1.5x the primary-only throughput at matched
p99.  Primary-only is the same door asked ``max_lag=0`` (every read
pinned to the write route), so the two phases differ only in where
the verdicts are computed.  The throughput gate arms at
``BENCH_FRONTDOOR_SCALE >= 1.0`` on a >= 3-core machine — the three
server processes must actually have cores to spread over; smoke runs
exercise both phases and record the ratio only.

\\(2) **sharded replication differential** (always asserted) — a
follower cohort fed by the per-shard multiplexed streams stitches to
byte-for-byte the primary's composite instance on a coordinator cut
after every pump, across a run of spanning 2PC commits; no cut is
ever torn and the follower frontier tracks the source's.
"""

import asyncio
import hashlib
import os
import subprocess
import sys
import time

import repro
from repro.ldif.writer import serialize_ldif
from repro.schema.dsl import dump_dsl
from repro.server import DirectoryClient, FrontDoor
from repro.server.frontdoor import position_geq
from repro.store import DirectoryStore
from repro.store.replicate import ShardedFrameSource, ShardedReplicaApplier
from repro.store.sharded import ShardedStore
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    figure1_instance,
    generate_whitepages,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import print_series

SCALE = float(os.environ.get("BENCH_FRONTDOOR_SCALE", "1.0"))
CLIENTS = max(4, int(48 * SCALE))
CHECKS_PER_CLIENT = 6
NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}
try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
# primary + 2 followers need three cores before spreading can pay
GATE_ARMED = SCALE >= 1.0 and CPUS >= 3

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _digest(instance) -> str:
    return hashlib.blake2b(
        serialize_ldif(instance).encode("utf-8")
    ).hexdigest()


def _percentiles(samples):
    s = sorted(samples)

    def pct(q):
        return s[min(len(s) - 1, int(q * len(s)))]

    return pct(0.50), pct(0.95), pct(0.99)


# ----------------------------------------------------------------------
# member server processes (spawned via the CLI: the reads genuinely
# compute on separate cores, not behind this process's GIL)
# ----------------------------------------------------------------------

def _spawn_server(store_path, schema_path, *extra):
    """``repro.cli serve`` in a child process; returns (proc, port)
    parsed from the "serving ... on host:port" banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(store_path),
         "--schema", str(schema_path), "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"member server exited before serving (rc={proc.poll()})"
            )
        if line.startswith("serving "):
            address = line.split(" on ", 1)[1].split()[0].strip()
            return proc, int(address.rsplit(":", 1)[1])


def _stop_server(proc):
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:  # pragma: no cover - drain stall
        proc.kill()
        proc.wait()


async def _wait_bootstrapped(port, position, timeout=60.0):
    deadline = time.monotonic() + timeout
    client = await DirectoryClient.connect("127.0.0.1", port)
    try:
        while True:
            reply = await client.position()
            if position_geq(reply.get("position"), position):
                return
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"follower never reached {position}: {reply}"
                )
            await asyncio.sleep(0.1)
    finally:
        await client.close()


async def _check_phase(door_port, max_lag):
    """CLIENTS concurrent connections each running CHECKS_PER_CLIENT
    full-instance ``check`` verdicts; returns (wall, latencies)."""
    clients = []
    for _ in range(CLIENTS):
        client = await DirectoryClient.connect("127.0.0.1", door_port)
        await client.bind("cn=bench")
        clients.append(client)
    latencies = []

    async def loop(client):
        for _ in range(CHECKS_PER_CLIENT):
            start = time.perf_counter()
            reply = await client.check(max_lag=max_lag)
            latencies.append(time.perf_counter() - start)
            assert reply["legal"] and reply["entries"] > 0

    try:
        start = time.perf_counter()
        await asyncio.gather(*(loop(c) for c in clients))
        return time.perf_counter() - start, latencies
    finally:
        await asyncio.gather(
            *(c.close() for c in clients), return_exceptions=True
        )


def test_check_throughput_scales_over_followers(benchmark, tmp_path):
    """Two follower processes behind the door must serve >= 1.5x the
    primary-only ``check`` throughput at matched p99 (armed at full
    scale on >= 3 cores; the ratio is recorded always)."""
    schema, registry = whitepages_schema(), whitepages_registry()
    instance = generate_whitepages(
        orgs=max(1, int(12 * SCALE)), units_per_level=5, depth=2,
        persons_per_unit=10, seed=42,
    )
    primary_path = tmp_path / "primary"
    DirectoryStore.create(
        str(primary_path), schema, instance, registry
    ).close()
    schema_path = tmp_path / "schema.dsl"
    dump_dsl(schema, str(schema_path))

    primary_proc, primary_port = _spawn_server(primary_path, schema_path)
    follower_procs = []
    try:
        upstream = f"127.0.0.1:{primary_port}"
        follower_ports = []
        for index in range(2):
            proc, port = _spawn_server(
                tmp_path / f"replica{index}", schema_path,
                "--replica-of", upstream,
            )
            follower_procs.append(proc)
            follower_ports.append(port)

        async def run():
            bootstrap = {"generation": 1, "seq": 0}
            for port in follower_ports:
                await _wait_bootstrapped(port, bootstrap)
            door = FrontDoor(
                upstream,
                [f"127.0.0.1:{port}" for port in follower_ports],
            )
            await door.start()
            try:
                # warm both routes (executor views open lazily)
                await _check_phase(door.port, None)
                primary_wall, primary_lat = await _check_phase(
                    door.port, 0
                )
                spread_wall, spread_lat = await _check_phase(
                    door.port, None
                )
                probe = await DirectoryClient.connect(
                    "127.0.0.1", door.port
                )
                await probe.bind("cn=bench")
                topology = await probe.request("topology")
                await probe.close()
            finally:
                await door.stop(drain=True, timeout=10)
            return primary_wall, primary_lat, spread_wall, spread_lat, \
                topology

        primary_wall, primary_lat, spread_wall, spread_lat, topology = (
            asyncio.run(run())
        )
    finally:
        for proc in follower_procs:
            _stop_server(proc)
        _stop_server(primary_proc)

    # the spread phase really had two live followers the whole time
    assert topology["failovers"] == 0
    assert [r["alive"] for r in topology["replicas"]] == [True, True]

    total = CLIENTS * CHECKS_PER_CLIENT
    primary_rate = total / primary_wall
    spread_rate = total / spread_wall
    ratio = spread_rate / primary_rate
    primary_p = _percentiles(primary_lat)
    spread_p = _percentiles(spread_lat)
    print_series(
        f"FRONTDOOR: check throughput, primary-only vs 2 followers "
        f"({len(instance)} entries, {CLIENTS} clients, {CPUS} cpus)",
        [
            ("primary-only", f"{primary_rate:,.1f}/s",
             "p50/p95/p99 "
             + "/".join(f"{v * 1e3:.1f}" for v in primary_p) + "ms"),
            ("2 followers", f"{spread_rate:,.1f}/s",
             "p50/p95/p99 "
             + "/".join(f"{v * 1e3:.1f}" for v in spread_p) + "ms"),
            (f"ratio={ratio:.2f}x "
             f"(gate {'armed' if GATE_ARMED else 'recorded only'})",),
        ],
    )
    benchmark.extra_info["entries"] = len(instance)
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["primary_checks_per_second"] = round(
        primary_rate, 2
    )
    benchmark.extra_info["spread_checks_per_second"] = round(
        spread_rate, 2
    )
    benchmark.extra_info["throughput_ratio"] = round(ratio, 3)
    benchmark.extra_info["primary_p99_ms"] = round(primary_p[2] * 1e3, 2)
    benchmark.extra_info["spread_p99_ms"] = round(spread_p[2] * 1e3, 2)
    benchmark.extra_info["gate_armed"] = GATE_ARMED
    if GATE_ARMED:
        assert ratio >= 1.5, (
            f"2 followers served only {ratio:.2f}x the primary-only "
            f"check throughput ({spread_rate:.1f}/s vs "
            f"{primary_rate:.1f}/s)"
        )
        # "matched p99": the spread must not buy throughput by letting
        # tail latency blow out
        assert spread_p[2] <= primary_p[2] * 1.5, (
            f"spread p99 {spread_p[2] * 1e3:.1f}ms vs primary-only "
            f"{primary_p[2] * 1e3:.1f}ms — not a matched-latency win"
        )
    benchmark(lambda: None)


# ----------------------------------------------------------------------
# sharded replication differential (always asserted)
# ----------------------------------------------------------------------

def _spanning_commit(store, index):
    tx = UpdateTransaction()
    tx.insert(f"uid=r{index},o=att", ["person", "top"],
              {"uid": [f"r{index}"], "name": [f"r {index}"]})
    tx.insert(f"uid=l{index},ou=attLabs,o=att", ["person", "top"],
              {"uid": [f"l{index}"], "name": [f"l {index}"]})
    outcome = store.apply(tx)
    assert outcome.applied


def _pump_sharded(source, applier):
    while True:
        batch = source.poll()
        if not batch:
            return
        for message in batch:
            applier.apply_message(message)


def test_sharded_replication_differential(benchmark, tmp_path):
    """Every pump lands the follower cohort exactly on the primary's
    composite state at a coordinator cut — digest equality after each
    spanning 2PC commit, at every scale (machine-independent)."""
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_dir = str(tmp_path / "sharded-primary")
    cohort_dir = str(tmp_path / "cohort")
    store = ShardedStore.create(
        primary_dir, schema, NESTED_BASES, figure1_instance(), registry
    )
    source = ShardedFrameSource(primary_dir, schema)
    rounds = max(4, int(24 * SCALE))
    try:
        with ShardedReplicaApplier(cohort_dir, schema, registry) as applier:
            _pump_sharded(source, applier)  # cohort bootstrap
            assert applier.consistent()
            for index in range(rounds):
                _spanning_commit(store, index)
                _pump_sharded(source, applier)
                assert applier.consistent(), (
                    f"round {index}: the shipped cut tore a spanning "
                    "commit across the cohort"
                )
                assert applier.position() == source.position
                assert _digest(applier.instance) == _digest(
                    store.composite_instance()
                ), f"round {index}: follower diverged from the primary"

            state = {"seq": rounds}

            def one_spanning_cycle():
                state["seq"] += 1
                _spanning_commit(store, state["seq"])
                _pump_sharded(source, applier)
                assert applier.consistent()

            benchmark(one_spanning_cycle)
            assert _digest(applier.instance) == _digest(
                store.composite_instance()
            )
        print_series(
            "FRONTDOOR: sharded replication differential",
            [(f"{rounds} spanning commits verified",
              "cohort == composite at every cut")],
        )
        benchmark.extra_info["spanning_commits"] = rounds
    finally:
        store.close()
