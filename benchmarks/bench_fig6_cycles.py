"""Experiment FIG6 — the cycle-detection inference rules.

Reproduces Figure 6's behaviour on schema families built around cycles:

* pure structure-schema cycles of growing length (the Section 5.1
  pattern ``c1 □, c1 → c2, ..., cn →→ c1``);
* cycles that only arise through the class hierarchy (the Section 5.1
  subclass-interaction example, scaled);

and measures closure time as the family grows.  Shape claim: polynomial
(in fact near-quadratic or better here, since transitivity closes a
cycle of n classes with O(n²) facts) — asserted via the growth exponent.
"""

import pytest

from repro.axes import Axis
from repro.consistency.engine import close
from repro.schema.elements import RequiredClass, RequiredEdge, Subclass

from _helpers import fit_growth, print_series


def cycle_elements(n: int):
    """``c0 □`` plus a required-descendant cycle c0 → c1 → ... → c0."""
    elements = [RequiredClass("c0")]
    for i in range(n):
        elements.append(
            RequiredEdge(Axis.DESCENDANT, f"c{i}", f"c{(i + 1) % n}")
        )
    return elements


def hierarchy_cycle_elements(n: int):
    """The Section 5.1 subclass-interaction pattern, scaled: edges jump
    between hierarchy levels so the cycle only closes through ⊑."""
    elements = [RequiredClass("a0")]
    for i in range(n):
        # a_i ⊑ b_i ; b_i → a_{i+1 mod n} : a chain only via subclassing
        elements.append(Subclass(f"a{i}", f"b{i}"))
        elements.append(
            RequiredEdge(Axis.CHILD, f"b{i}", f"a{(i + 1) % n}")
        )
    return elements


@pytest.mark.parametrize("n", [4, 16, 64])
def test_structure_cycle_detection(benchmark, n):
    """Closure on a length-n required cycle (must derive ⊥)."""
    elements = cycle_elements(n)
    benchmark.extra_info["cycle_length"] = n
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent


@pytest.mark.parametrize("n", [4, 16, 64])
def test_hierarchy_cycle_detection(benchmark, n):
    """Closure on a hierarchy-mediated cycle (must derive ⊥)."""
    elements = hierarchy_cycle_elements(n)
    benchmark.extra_info["cycle_length"] = n
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent


def test_paper_example_cycle(benchmark):
    """The exact Section 5.1 example, as a timing anchor."""
    elements = [
        RequiredClass("c1"),
        RequiredEdge(Axis.CHILD, "c2", "c3"),
        RequiredEdge(Axis.DESCENDANT, "c4", "c5"),
        Subclass("c1", "c2"),
        Subclass("c3", "c4"),
        Subclass("c5", "c1"),
    ]
    closure = benchmark(lambda: close(elements))
    assert not closure.consistent
    assert "∅ □" in closure.proof_of_inconsistency()


def test_polynomial_shape(benchmark):
    """Closure work (derived-fact count) on growing cycles stays
    polynomial — exponent well under cubic."""
    import time

    sizes, facts, times = [], [], []
    for n in (8, 16, 32, 64):
        elements = cycle_elements(n)
        start = time.perf_counter()
        closure = close(elements)
        times.append(time.perf_counter() - start)
        sizes.append(n)
        facts.append(len(closure))
    fact_exp = fit_growth(sizes, facts)
    time_exp = fit_growth(sizes, [max(1, int(t * 1e9)) for t in times])
    print_series(
        "FIG6: closure growth on length-n cycles",
        [
            (f"n={s}", f"facts={f}", f"time={t:.4f}s")
            for s, f, t in zip(sizes, facts, times)
        ]
        + [(f"exponents: facts={fact_exp:.2f}", f"time={time_exp:.2f}")],
    )
    benchmark.extra_info["fact_exponent"] = round(fact_exp, 3)
    benchmark.extra_info["time_exponent"] = round(time_exp, 3)
    assert fact_exp < 2.6, f"fact count should be ~quadratic, got {fact_exp:.2f}"
    assert time_exp < 3.2, f"closure time should stay polynomial, got {time_exp:.2f}"

    benchmark(lambda: close(cycle_elements(32)))
