"""Extension benchmark — the asyncio network front-end.

Claims under test: (1) **saturation** — connections × throughput is
recorded at escalating client counts up to ~1k concurrent connections
at ``BENCH_SERVER_SCALE=1.0``, with p50/p95/p99 search latency; and
(2) **reads never block on the writer** — every connection owns a
lock-free WAL-following reader, and mutations funnel through a single
writer thread, so p99 search latency under a sustained write storm
must stay within 2x of the idle-writer p99.

The 2x gate arms at ``BENCH_SERVER_SCALE >= 1.0`` on a multi-core
machine; smoke runs (CI default lane) exercise both phases and record
the ratio only — at tiny client counts per-commit fsync noise
dominates the percentiles.
"""

import asyncio
import os
import statistics
import time

from repro.server.client import DirectoryClient
from repro.server.server import DirectoryServer
from repro.store.sharded import ShardedStore
from repro.workloads import (
    figure1_instance,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import print_series

SCALE = float(os.environ.get("BENCH_SERVER_SCALE", "1.0"))
CLIENTS = max(8, int(1000 * SCALE))
SEARCHES_PER_CLIENT = 5
CONNECT_WAVE = 64  # simultaneous connects (the listen backlog is finite)
NESTED_BASES = {"att": "o=att", "labs": "ou=attLabs,o=att"}
try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
GATE_ARMED = SCALE >= 1.0 and CPUS >= 2


def _raise_fd_limit() -> None:
    """1k clients need ~2k descriptors on each side; lift the soft
    limit toward the hard one (best effort — the ladder still runs at
    whatever the OS grants)."""
    try:
        import resource

        need = CLIENTS * 2 + 512
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < need:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(need, hard), hard)
            )
    except Exception:  # pragma: no cover - platform quirks
        pass


def _make_store(tmp_path, name: str) -> str:
    path = str(tmp_path / name)
    ShardedStore.create(
        path,
        whitepages_schema(),
        NESTED_BASES,
        figure1_instance(),
        whitepages_registry(),
    ).close()
    return path


def _percentiles(samples):
    s = sorted(samples)

    def pct(q):
        return s[min(len(s) - 1, int(q * len(s)))]

    return pct(0.50), pct(0.95), pct(0.99)


async def _run_clients(port: int, n_clients: int, latencies: list) -> float:
    """Connect ``n_clients`` (in waves), then fire every client's
    search loop concurrently; returns the search-phase wall time and
    appends one latency sample per search."""
    gate = asyncio.Semaphore(CONNECT_WAVE)

    async def connect():
        async with gate:
            client = await DirectoryClient.connect("127.0.0.1", port)
            await client.bind("cn=bench")
            return client

    clients = await asyncio.gather(*(connect() for _ in range(n_clients)))

    async def search_loop(client):
        for _ in range(SEARCHES_PER_CLIENT):
            start = time.perf_counter()
            response = await client.search(filter="(objectClass=person)")
            latencies.append(time.perf_counter() - start)
            assert response["entries"]

    try:
        start = time.perf_counter()
        await asyncio.gather(*(search_loop(c) for c in clients))
        return time.perf_counter() - start
    finally:
        await asyncio.gather(
            *(c.close() for c in clients), return_exceptions=True
        )


async def _write_storm(port: int, stop: asyncio.Event) -> int:
    """A dedicated connection committing add+delete pairs flat out
    until told to stop; returns the number of committed writes."""
    client = await DirectoryClient.connect("127.0.0.1", port)
    writes = 0
    try:
        await client.bind("cn=writer")
        while not stop.is_set():
            dn = f"uid=storm{writes},o=att"
            added = await client.add(
                dn, ["person", "top"],
                {"uid": [f"storm{writes}"], "name": [f"storm {writes}"]},
            )
            assert added["applied"]
            removed = await client.delete(dn)
            assert removed["applied"]
            writes += 2
    finally:
        await client.close()
    return writes


async def _serve(path: str):
    server = DirectoryServer(
        path, whitepages_schema(), whitepages_registry(),
        shards=True, port=0,
    )
    await server.start()
    return server


def test_connection_throughput_ladder(benchmark, tmp_path):
    """Connections x throughput: the saturation curve at escalating
    client counts (recorded — the shape, not an absolute gate)."""
    _raise_fd_limit()
    path = _make_store(tmp_path, "ladder")
    ladder = sorted({max(2, CLIENTS // 16), max(4, CLIENTS // 4), CLIENTS})

    async def run():
        server = await _serve(path)
        rows = []
        try:
            for n in ladder:
                latencies = []
                wall = await _run_clients(server.port, n, latencies)
                p50, p95, p99 = _percentiles(latencies)
                rows.append((n, len(latencies) / wall, p50, p95, p99))
        finally:
            await server.stop(drain=False)
        return rows

    rows = asyncio.run(run())
    print_series(
        "server: connections x throughput (searches/s, p50/p95/p99 ms)",
        [
            (f"{n} clients",
             f"{rate:,.0f}/s",
             f"{p50 * 1e3:.2f}/{p95 * 1e3:.2f}/{p99 * 1e3:.2f}ms")
            for n, rate, p50, p95, p99 in rows
        ],
    )
    top = rows[-1]
    benchmark.extra_info["clients"] = top[0]
    benchmark.extra_info["searches_per_second"] = round(top[1], 1)
    benchmark.extra_info["p99_ms"] = round(top[4] * 1e3, 3)
    benchmark(lambda: None)


def test_write_storm_read_latency_gate(benchmark, tmp_path):
    """The reads-never-block-writes gate: p99 search latency at full
    client count with a sustained writer committing must stay within
    2x of the idle-writer p99 (armed at SCALE >= 1.0, multi-core)."""
    _raise_fd_limit()
    path = _make_store(tmp_path, "storm")

    async def run():
        server = await _serve(path)
        try:
            idle = []
            await _run_clients(server.port, CLIENTS, idle)
            stop = asyncio.Event()
            storm_task = asyncio.create_task(
                _write_storm(server.port, stop)
            )
            stormy = []
            try:
                await _run_clients(server.port, CLIENTS, stormy)
            finally:
                stop.set()
                writes = await storm_task
            return idle, stormy, writes
        finally:
            await server.stop(drain=False)

    idle, stormy, writes = asyncio.run(run())
    assert writes > 0, "the write storm never committed — no contention"
    idle_p = _percentiles(idle)
    storm_p = _percentiles(stormy)
    ratio = storm_p[2] / max(idle_p[2], 1e-9)
    print_series(
        "server: search latency, idle writer vs write storm",
        [
            ("idle p50/p95/p99",
             "/".join(f"{v * 1e3:.2f}" for v in idle_p) + "ms"),
            ("storm p50/p95/p99",
             "/".join(f"{v * 1e3:.2f}" for v in storm_p) + "ms"),
            (f"{writes} writes committed during the storm phase",),
            (f"p99 ratio={ratio:.2f}x ({CLIENTS} clients, {CPUS} cpus, "
             f"gate {'armed' if GATE_ARMED else 'recorded only'})",),
        ],
    )
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["idle_p99_ms"] = round(idle_p[2] * 1e3, 3)
    benchmark.extra_info["storm_p99_ms"] = round(storm_p[2] * 1e3, 3)
    benchmark.extra_info["p99_ratio"] = round(ratio, 3)
    benchmark.extra_info["storm_writes"] = writes
    if GATE_ARMED:
        assert ratio <= 2.0, (
            "p99 search latency under a write storm must stay within "
            f"2x of the idle-writer p99: {ratio:.2f}x "
            f"(idle {idle_p[2] * 1e3:.2f}ms, storm {storm_p[2] * 1e3:.2f}ms)"
        )
    benchmark(lambda: None)
