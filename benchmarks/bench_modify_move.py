"""Extension benchmark — incremental modify and move.

The library extends Figure 5's derivation to in-place modification and
subtree moves (DESIGN.md §7).  Shape claims mirroring FIG5:

* attribute-only modification costs O(1) in |D| (per-entry content
  re-check only);
* class-addition modification stays flat in |D| (Δ = {entry} scoped
  queries);
* a guarded move costs the insertion checks at the destination plus the
  non-skippable deletion rows — bounded by one full pass, far below
  apply-then-recheck for transactions of many moves.
"""

import pytest

from repro.updates.incremental import IncrementalChecker

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


def _guard(tier):
    return IncrementalChecker(wp_schema(), whitepages_instance(tier).copy(),
                              assume_legal=True)


def _some_person(guard):
    """Any person entry (used for attribute-only modification)."""
    return str(
        guard.instance.dn_of(sorted(guard.instance.entries_with_class("person"))[0])
    )


def _toggleable_person(guard):
    """A staff member or researcher without the ``consultant``
    auxiliary, which can be toggled freely (no attributes ride on it)."""
    for name in ("staffMember", "researcher"):
        for eid in sorted(guard.instance.entries_with_class(name)):
            entry = guard.instance.entry(eid)
            if not entry.belongs_to("consultant"):
                return str(guard.instance.dn_of(eid))
    raise AssertionError("workload should contain a non-consultant staffer")


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_attribute_modify(benchmark, tier):
    guard = _guard(tier)
    person = _some_person(guard)
    benchmark.extra_info["entries"] = len(guard.instance)
    counter = [0]

    def modify():
        counter[0] += 1
        outcome = guard.try_modify(
            person, replace_attributes={"telephoneNumber": [f"+1 555 {counter[0] % 10000:04d}"]}
        )
        assert outcome.applied

    benchmark(modify)


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_class_addition_modify(benchmark, tier):
    guard = _guard(tier)
    person = _toggleable_person(guard)
    benchmark.extra_info["entries"] = len(guard.instance)
    state = [False]

    def toggle_consultant():
        if state[0]:
            outcome = guard.try_modify(person, remove_classes=["consultant"])
        else:
            outcome = guard.try_modify(person, add_classes=["consultant"])
        assert outcome.applied, str(outcome.report)
        state[0] = not state[0]

    benchmark(toggle_consultant)


def test_modify_cost_flat_in_instance_size(benchmark):
    """Class-addition work is independent of |D| (the Δ={entry}
    property)."""
    sizes, costs = [], []
    for tier in WHITEPAGES_TIERS:
        guard = _guard(tier)
        person = _toggleable_person(guard)
        outcome = guard.try_modify(person, add_classes=["consultant"])
        assert outcome.applied
        sizes.append(len(guard.instance))
        costs.append(max(1, outcome.cost))
    exponent = fit_growth(sizes, costs)
    print_series(
        "MODIFY: class-addition work vs |D|",
        [(f"|D|={s}", f"work={c}") for s, c in zip(sizes, costs)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 0.4, f"modify should be ~flat in |D|: {exponent:.2f}"

    guard = _guard("medium")
    person = _toggleable_person(guard)
    state = [False]

    def kernel():
        if state[0]:
            guard.try_modify(person, remove_classes=["consultant"])
        else:
            guard.try_modify(person, add_classes=["consultant"])
        state[0] = not state[0]

    benchmark(kernel)


@pytest.mark.parametrize("tier", ["small", "medium"])
def test_guarded_move(benchmark, tier):
    """Move a person back and forth between two units."""
    guard = _guard(tier)
    instance = guard.instance
    units = sorted(
        str(instance.dn_of(e)) for e in instance.entries_with_class("orgUnit")
    )
    # pick a person whose unit keeps another person (so the move is legal)
    person = None
    for eid in sorted(instance.entries_with_class("person")):
        entry = instance.entry(eid)
        parent = instance.parent_of(entry)
        if parent is None:
            continue
        siblings = [
            c for c in instance.children_of(parent)
            if c.belongs_to("person") and c.eid != eid
        ]
        if siblings:
            person = str(instance.dn_of(entry))
            home = str(parent.dn)
            break
    assert person is not None
    away = next(u for u in units if u != home)
    benchmark.extra_info["entries"] = len(instance)
    location = [person, home, away]

    def move_back_and_forth():
        outcome = guard.try_move(location[0], new_parent=location[2])
        assert outcome.applied, str(outcome.report)
        rdn = location[0].split(",", 1)[0]
        location[0] = f"{rdn},{location[2]}"
        location[1], location[2] = location[2], location[1]

    benchmark(move_back_and_forth)
