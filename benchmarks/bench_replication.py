"""Extension benchmark — WAL-shipping replication lag.

Claim under test: a follower's catch-up costs O(|Δ|) — the frames the
primary committed since the replica's last position — independent of
the snapshot it bootstrapped from.  The shipper reads only the journal
suffix past its offset and the applier replays only the shipped
frames through its embedded reader, so doubling Δ doubles the shipped
bytes (exponent ~1) while the snapshot is read exactly once, at
bootstrap (``reader.bootstraps == 1``, asserted at every scale).

``BENCH_REPLICATION_SCALE`` scales the primary (1.0 -> ~40k entries;
CI smoke uses a small fraction).  The wall-clock exponent gate arms at
full scale only; the machine-independent counters (frames shipped,
bytes shipped, bootstraps) are asserted always.
"""

import os
import time
from functools import lru_cache

from repro.store import DirectoryStore
from repro.store.recovery import SNAPSHOT_FILE
from repro.store.replicate import FrameSource, ReplicaApplier, pump
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import fit_growth, print_series

SCALE = float(os.environ.get("BENCH_REPLICATION_SCALE", "1.0"))


@lru_cache(maxsize=None)
def _primary_instance():
    """A ~40k-entry legal instance at SCALE=1.0 (cached per process)."""
    orgs = max(1, int(120 * SCALE))
    return generate_whitepages(
        orgs=orgs, units_per_level=5, depth=2, persons_per_unit=10, seed=42,
    )


def _commit(store, seed):
    outcome = store.apply(
        random_transaction(store.instance, inserts=1, seed=seed)
    )
    assert outcome.applied


def test_replica_lag_scales_with_delta(benchmark, tmp_path):
    """Catch-up after Δ primary commits ships exactly Δ frames, with
    bytes growing ~linearly in Δ and zero snapshot re-reads."""
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_dir = str(tmp_path / "primary")
    replica_dir = str(tmp_path / "replica")
    store = DirectoryStore.create(
        primary_dir, schema, _primary_instance(), registry
    )
    source = FrameSource(primary_dir, schema)
    applier = ReplicaApplier(replica_dir, schema, registry)
    try:
        pump(source, applier)  # snapshot bootstrap
        assert applier.snapshots_installed == 1
        assert applier.reader is not None
        snapshot_bytes = os.path.getsize(
            os.path.join(primary_dir, SNAPSHOT_FILE)
        )

        deltas = [1, 2, 4, 8, 16]
        shipped_bytes, wall_times = [], []
        seed = 0
        for delta in deltas:
            for _ in range(delta):
                seed += 1
                _commit(store, seed)
            frames_before = applier.frames_applied
            bytes_before = applier.bytes_applied
            start = time.perf_counter()
            pump(source, applier)
            wall_times.append(time.perf_counter() - start)
            assert applier.frames_applied - frames_before == delta, (
                f"Δ={delta} commits shipped "
                f"{applier.frames_applied - frames_before} frames"
            )
            shipped_bytes.append(applier.bytes_applied - bytes_before)
            # The catch-up never re-reads the snapshot: one bootstrap,
            # ever, and the shipped slice is a sliver of the snapshot.
            assert applier.reader.bootstraps == 1, (
                f"catch-up re-bootstrapped the replica view "
                f"({applier.reader.bootstraps} bootstraps)"
            )
            assert applier.snapshots_installed == 1
            assert shipped_bytes[-1] * 20 < snapshot_bytes, (
                f"Δ={delta} shipped {shipped_bytes[-1]}B against a "
                f"{snapshot_bytes}B snapshot — not O(|Δ|)"
            )
        assert applier.position() == (store.generation, store.journal_length)

        bytes_exponent = fit_growth(deltas, shipped_bytes)
        time_exponent = fit_growth(
            deltas, [int(t * 1e9) for t in wall_times]
        )

        # The benchmark table times one one-frame catch-up cycle.
        def one_frame_catchup():
            _commit(store, 10_000 + applier.frames_applied)
            pump(source, applier)

        benchmark(one_frame_catchup)

        print_series(
            f"REPLICATION: catch-up vs Δ ({len(store.instance)} entries)",
            [(f"Δ={d}", f"{b}B shipped")
             for d, b in zip(deltas, shipped_bytes)]
            + [(f"bytes exponent={bytes_exponent:.2f}",),
               (f"time exponent={time_exponent:.2f}",)],
        )
        benchmark.extra_info["bytes_exponent"] = round(bytes_exponent, 3)
        benchmark.extra_info["time_exponent"] = round(time_exponent, 3)
        assert 0.5 < bytes_exponent < 1.5, (
            f"shipped bytes should grow ~linearly with Δ: "
            f"{bytes_exponent:.2f}"
        )
        if SCALE >= 1.0:
            assert time_exponent < 1.5, (
                f"catch-up wall time grows superlinearly in Δ: "
                f"{time_exponent:.2f} — the shipper is re-reading "
                "history it already shipped"
            )
    finally:
        applier.close()
        store.close()


def test_bootstrap_cost(benchmark, tmp_path):
    """Snapshot bootstrap of a fresh follower (the one-time price the
    incremental path amortises away)."""
    schema, registry = whitepages_schema(), whitepages_registry()
    primary_dir = str(tmp_path / "primary")
    store = DirectoryStore.create(
        primary_dir, schema, _primary_instance(), registry
    )
    counter = [0]

    def bootstrap():
        counter[0] += 1
        source = FrameSource(primary_dir, schema)
        replica_dir = str(tmp_path / f"replica{counter[0]}")
        with ReplicaApplier(replica_dir, schema, registry) as applier:
            pump(source, applier)
            assert applier.snapshots_installed == 1
            assert applier.position() == (
                store.generation, store.journal_length
            )

    try:
        benchmark(bootstrap)
    finally:
        store.close()
