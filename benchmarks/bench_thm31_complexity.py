"""Experiment THM31 — the Theorem 3.1 legality-testing bound.

Theorem 3.1: testing legality of ``D`` w.r.t. ``S = (A, H, S)`` costs
``O(|D| * (max|class(e)| + max|Aux| * depth(H) + max|val(e)| +
max Σ|a(c)| + |S|))``.  The three measurable shape claims:

1. for a fixed schema, total cost is **linear in |D|**;
2. for a fixed instance, structure-checking cost is **linear in |S|**
   (one query per element);
3. content cost per entry is independent of |D|.
"""

import time

import pytest

from repro.legality.checker import LegalityChecker
from repro.legality.content import ContentChecker
from repro.legality.structure import QueryStructureChecker
from repro.query.evaluator import QueryEvaluator
from repro.schema.structure_schema import StructureSchema

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


@pytest.mark.parametrize("tier", list(WHITEPAGES_TIERS))
def test_total_legality_cost(benchmark, tier):
    """The headline series: full Definition 2.7 check per tier."""
    checker = LegalityChecker(wp_schema())
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    assert benchmark(lambda: checker.check(instance).is_legal)


def test_linear_in_instance_size(benchmark):
    """Claim 1: growth exponent of total time vs |D| ≈ 1."""
    checker = LegalityChecker(wp_schema())
    sizes, times = [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            checker.check(instance)
            best = min(best, time.perf_counter() - start)
        sizes.append(len(instance))
        times.append(best)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "THM31: full check time vs |D|",
        [(f"|D|={s}", f"{t:.5f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert 0.7 <= exponent <= 1.35, f"not linear in |D|: {exponent:.2f}"
    instance = whitepages_instance("medium")
    benchmark(lambda: checker.check(instance).is_legal)


def test_linear_in_schema_size(benchmark):
    """Claim 2: structure-check work grows linearly with |S| for a
    fixed instance (synthetic schemas of 2..32 elements)."""
    instance = whitepages_instance("medium")
    classes = ["organization", "orgUnit", "person", "orgGroup",
               "staffMember", "researcher"]
    sizes, costs = [], []
    for k in (2, 4, 8, 16, 32):
        structure = StructureSchema()
        for i in range(k):
            source = classes[i % len(classes)]
            target = classes[(i + 1 + i // len(classes)) % len(classes)]
            if i % 3 == 2:
                structure.forbid_descendant(source, target)
            else:
                structure.require_descendant(source, target)
        checker = QueryStructureChecker(structure)
        evaluator = QueryEvaluator(instance)
        for check in checker.checks:
            evaluator.evaluate(check.query)
        sizes.append(max(1, len(structure)))
        costs.append(evaluator.cost)
    exponent = fit_growth(sizes, costs)
    print_series(
        "THM31: structure work vs |S| (fixed |D|)",
        [(f"|S|={s}", f"work={c}") for s, c in zip(sizes, costs)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert 0.6 <= exponent <= 1.3, f"not linear in |S|: {exponent:.2f}"

    checker = QueryStructureChecker(wp_schema().structure_schema)
    benchmark(lambda: checker.check(instance).is_legal)


def test_content_cost_per_entry_is_flat(benchmark):
    """Claim 3: content work per entry is independent of |D|."""
    checker = ContentChecker(wp_schema())
    per_entry = []
    sizes = []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            checker.check(instance)
            best = min(best, time.perf_counter() - start)
        sizes.append(len(instance))
        per_entry.append(best / len(instance))
    print_series(
        "THM31: content time per entry vs |D|",
        [(f"|D|={s}", f"{p * 1e6:.2f}us/entry") for s, p in zip(sizes, per_entry)],
    )
    spread = max(per_entry) / min(per_entry)
    benchmark.extra_info["per_entry_spread"] = round(spread, 2)
    assert spread < 5, f"per-entry cost should be ~flat, spread {spread:.1f}x"

    instance = whitepages_instance("medium")
    benchmark(lambda: checker.check(instance).is_legal)
