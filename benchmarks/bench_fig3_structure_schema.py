"""Experiment FIG3 — the Figure 3 structure schema.

Checks the running example's structure bound (required classes,
``orgGroup →→ person``, ``organization → orgUnit``,
``orgUnit ← orgGroup``, ``person ↛ top``, ``top ↛ organization``)
element by element and as a whole, across instance tiers.  Shape claim:
per-element work is linear in |D| (one Figure 4 query each).
"""

import pytest

from repro.legality.structure import QueryStructureChecker
from repro.query.evaluator import QueryEvaluator
from repro.query.translate import translate_element

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


@pytest.mark.parametrize("tier", list(WHITEPAGES_TIERS))
def test_structure_check(benchmark, tier):
    """Whole structure-schema check per tier (the FIG3 series)."""
    checker = QueryStructureChecker(wp_schema().structure_schema)
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    assert benchmark(lambda: checker.check(instance).is_legal)


@pytest.mark.parametrize(
    "label",
    [str(e) for e in wp_schema().structure_schema.elements()],
)
def test_per_element_check(benchmark, label):
    """Each Figure 3 element individually, on the medium tier."""
    element = next(
        e for e in wp_schema().structure_schema.elements() if str(e) == label
    )
    check = translate_element(element)
    instance = whitepages_instance("medium")
    benchmark.extra_info["entries"] = len(instance)
    assert benchmark(lambda: check.is_legal(instance))


def test_per_element_linearity(benchmark):
    """Per-element work counters grow linearly across tiers for every
    Figure 3 element."""
    exponents = []
    rows = []
    for element in wp_schema().structure_schema.elements():
        check = translate_element(element)
        sizes, costs = [], []
        for tier in WHITEPAGES_TIERS:
            instance = whitepages_instance(tier)
            evaluator = QueryEvaluator(instance)
            evaluator.evaluate(check.query)
            sizes.append(len(instance))
            costs.append(max(1, evaluator.cost))
        exponent = fit_growth(sizes, costs)
        exponents.append(exponent)
        rows.append((str(element), [f"{c}" for c in costs], f"exp={exponent:.2f}"))
    print_series("FIG3: per-element work vs |D|", rows)
    benchmark.extra_info["exponents"] = [round(e, 3) for e in exponents]
    assert all(e <= 1.3 for e in exponents), exponents

    checker = QueryStructureChecker(wp_schema().structure_schema)
    instance = whitepages_instance("medium")
    benchmark(lambda: checker.check(instance).is_legal)
