"""Experiment FIG1 — the Figure 1 white-pages directory, at scale.

Regenerates the paper's running-example instance, then measures
end-to-end legality checking (content + structure, Definition 2.7)
across instance tiers.  The shape claim under test: total checking work
is **linear in |D|** (Theorem 3.1) — asserted via the fitted growth
exponent of the structure-checker's work counter.
"""

import pytest

from repro.legality.checker import LegalityChecker
from repro.legality.structure import QueryStructureChecker
from repro.ldif import parse_ldif, serialize_ldif
from repro.query.evaluator import QueryEvaluator
from repro.workloads import figure1_instance

from _helpers import (
    WHITEPAGES_TIERS,
    fit_growth,
    print_series,
    whitepages_instance,
    wp_schema,
)


def test_figure1_exact_instance(benchmark):
    """Construct + fully check the exact Figure 1 fragment."""
    schema = wp_schema()
    checker = LegalityChecker(schema)

    def build_and_check():
        instance = figure1_instance()
        assert checker.check(instance).is_legal
        return len(instance)

    assert benchmark(build_and_check) == 6


@pytest.mark.parametrize("tier", list(WHITEPAGES_TIERS))
def test_full_legality_check(benchmark, tier):
    """Full legality check per tier (the headline FIG1 series)."""
    schema = wp_schema()
    checker = LegalityChecker(schema)
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    result = benchmark(lambda: checker.check(instance).is_legal)
    assert result


@pytest.mark.parametrize("tier", ["small", "large"])
def test_ldif_roundtrip(benchmark, tier):
    """LDIF export+import throughput on the same tiers."""
    instance = whitepages_instance(tier)
    text = serialize_ldif(instance)
    benchmark.extra_info["entries"] = len(instance)
    parsed = benchmark(lambda: parse_ldif(text, attributes=instance.attributes))
    assert len(parsed) == len(instance)


def test_linear_shape_of_structure_checking(benchmark):
    """Structure-checking *work* (entries touched) grows linearly in
    |D| — exponent within [0.8, 1.25]."""
    schema = wp_schema()
    checker = QueryStructureChecker(schema.structure_schema)
    sizes, costs = [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        evaluator = QueryEvaluator(instance)
        for check in checker.checks:
            evaluator.evaluate(check.query)
        sizes.append(len(instance))
        costs.append(evaluator.cost)
    exponent = fit_growth(sizes, costs)
    print_series(
        "FIG1: structure-check work vs |D|",
        list(zip(["|D|"] + sizes, ["work"] + costs)),
    )
    benchmark.extra_info["sizes"] = sizes
    benchmark.extra_info["costs"] = costs
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert 0.8 <= exponent <= 1.25, f"not linear: exponent {exponent:.2f}"

    # Keep a timed kernel so --benchmark-only reports something real.
    instance = whitepages_instance("medium")
    benchmark(lambda: checker.check(instance).is_legal)
