"""Experiment FIG4 — the query reduction vs. the naive pairwise check.

Section 3.2 motivates the Figure 4 reduction by contrasting it with the
"straightforward approach" that compares every (parent, child) and
(ancestor, descendant) pair against the structure schema:
``O((|Er|+|Ef|) * |D|^2)`` versus ``O(|S| * |D|)``.

This bench reproduces that contrast: identical verdicts, wall-clock
series for both checkers across tiers, and the shape assertion that the
naive/query cost *ratio grows with |D|* (the paper's claimed asymptotic
separation — who wins, and by a factor that widens linearly).
"""

import time

import pytest

from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_query_reduction(benchmark, tier):
    """The paper's checker (Figure 4 reduction)."""
    checker = QueryStructureChecker(wp_schema().structure_schema)
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    benchmark.group = f"fig4-{tier}"
    assert benchmark(lambda: checker.check(instance).is_legal)


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_naive_pairwise(benchmark, tier):
    """The strawman baseline (quadratic pairwise scan)."""
    checker = NaiveStructureChecker(wp_schema().structure_schema)
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    benchmark.group = f"fig4-{tier}"
    assert benchmark(lambda: checker.check(instance).is_legal)


def _deep_chain(units: int):
    """A chain-shaped white-pages instance: nested orgUnits, one person
    per unit.  Depth grows with |D|, which is where the naive pairwise
    scan's Θ(|D|²) worst case lives."""
    from repro.model.instance import DirectoryInstance
    from repro.workloads import whitepages_registry

    instance = DirectoryInstance(attributes=whitepages_registry())
    cursor = instance.add_entry(
        None, "o=chain", ["organization", "orgGroup", "top"], {"o": ["chain"]}
    )
    for i in range(units):
        cursor = instance.add_entry(
            cursor, f"ou=u{i}", ["orgUnit", "orgGroup", "top"], {"ou": [f"u{i}"]}
        )
        instance.add_entry(
            cursor, f"uid=p{i}", ["person", "top"],
            {"uid": [f"p{i}"], "name": [f"p {i}"]},
        )
    return instance


def _measure(checker, instance, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        checker.check(instance)
        best = min(best, time.perf_counter() - start)
    return best


def test_separation_on_bushy_instances(benchmark):
    """On bushy trees (depth bounded) the naive scan is only
    Θ(|D| · depth); the ratio still widens with |D|, but mildly."""
    structure = wp_schema().structure_schema
    query_checker = QueryStructureChecker(structure)
    naive_checker = NaiveStructureChecker(structure)

    sizes, query_times, naive_times, ratios = [], [], [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        query_time = _measure(query_checker, instance)
        naive_time = _measure(naive_checker, instance)
        sizes.append(len(instance))
        query_times.append(query_time)
        naive_times.append(naive_time)
        ratios.append(naive_time / query_time)

    query_exp = fit_growth(sizes, [int(t * 1e9) for t in query_times])
    naive_exp = fit_growth(sizes, [int(t * 1e9) for t in naive_times])
    print_series(
        "FIG4 (bushy): naive vs query-reduction (seconds, ratio)",
        [
            (f"|D|={s}", f"query={q:.5f}", f"naive={n:.5f}", f"ratio={r:.1f}x")
            for s, q, n, r in zip(sizes, query_times, naive_times, ratios)
        ]
        + [(f"growth exponents: query={query_exp:.2f}", f"naive={naive_exp:.2f}")],
    )
    benchmark.extra_info["ratios"] = [round(r, 2) for r in ratios]
    assert naive_times[-1] > query_times[-1], "query reduction should win"

    instance = whitepages_instance("medium")
    benchmark(lambda: query_checker.check(instance).is_legal)


def test_separation_on_deep_chains(benchmark):
    """On deep chains the asymptotic gap is fully visible: the naive
    pairwise scan goes quadratic while the query reduction stays
    linear (Theorem 3.1 vs the Section 3.2 strawman)."""
    structure = wp_schema().structure_schema
    query_checker = QueryStructureChecker(structure)
    naive_checker = NaiveStructureChecker(structure)

    sizes, query_times, naive_times, ratios = [], [], [], []
    for units in (50, 100, 200, 400):
        instance = _deep_chain(units)
        query_time = _measure(query_checker, instance)
        naive_time = _measure(naive_checker, instance)
        sizes.append(len(instance))
        query_times.append(query_time)
        naive_times.append(naive_time)
        ratios.append(naive_time / query_time)

    query_exp = fit_growth(sizes, [int(t * 1e9) for t in query_times])
    naive_exp = fit_growth(sizes, [int(t * 1e9) for t in naive_times])
    print_series(
        "FIG4 (deep): naive vs query-reduction (seconds, ratio)",
        [
            (f"|D|={s}", f"query={q:.5f}", f"naive={n:.5f}", f"ratio={r:.1f}x")
            for s, q, n, r in zip(sizes, query_times, naive_times, ratios)
        ]
        + [(f"growth exponents: query={query_exp:.2f}", f"naive={naive_exp:.2f}")],
    )
    benchmark.extra_info["query_exponent"] = round(query_exp, 3)
    benchmark.extra_info["naive_exponent"] = round(naive_exp, 3)

    assert ratios[-1] > 3 * ratios[0], "separation should widen sharply"
    assert naive_exp > 1.6, f"naive should be ~quadratic, got {naive_exp:.2f}"
    assert query_exp < 1.35, f"query should stay ~linear, got {query_exp:.2f}"

    instance = _deep_chain(100)
    benchmark(lambda: query_checker.check(instance).is_legal)


def test_verdict_equivalence(benchmark):
    """Both checkers agree on every tier (the reduction's correctness
    contract, Section 3.2) — timed on the agreement check itself."""
    structure = wp_schema().structure_schema
    query_checker = QueryStructureChecker(structure)
    naive_checker = NaiveStructureChecker(structure)

    def agree() -> bool:
        instance = whitepages_instance("small")
        return query_checker.is_legal(instance) == naive_checker.is_legal(instance)

    assert benchmark(agree)
