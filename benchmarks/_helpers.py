"""Shared benchmark helpers.

All benchmarks measure two things:

* **wall-clock** via ``pytest-benchmark`` (the usual timing table), and
* **shape** via the library's machine-independent work counters
  (entries touched), asserted inside the tests so a regression in
  asymptotics fails the run rather than just looking slow.

Instances are cached per size so the timing loops measure checking, not
generation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.workloads import (
    den_schema,
    generate_den,
    generate_whitepages,
    whitepages_schema,
)

#: (orgs, units_per_level, depth, persons_per_unit) per size tier.
WHITEPAGES_TIERS = {
    "small": (1, 3, 1, 3),
    "medium": (2, 3, 2, 3),
    "large": (3, 4, 2, 4),
    "xlarge": (4, 4, 3, 4),
}


@lru_cache(maxsize=None)
def whitepages_instance(tier: str):
    """A cached legal white-pages instance of the given tier."""
    orgs, units, depth, persons = WHITEPAGES_TIERS[tier]
    return generate_whitepages(
        orgs=orgs, units_per_level=units, depth=depth,
        persons_per_unit=persons, seed=42,
    )


@lru_cache(maxsize=None)
def wp_schema():
    return whitepages_schema()


@lru_cache(maxsize=None)
def den_instance(scale: int):
    return generate_den(
        sites=scale, devices_per_site=4, interfaces_per_device=3,
        domains=scale, policies_per_domain=5, seed=42,
    )


@lru_cache(maxsize=None)
def den_schema_cached():
    return den_schema()


def fit_growth(sizes: List[int], costs: List[int]) -> float:
    """Estimated polynomial degree of cost growth: the slope of
    log(cost) against log(size), via least squares.  ~1 means linear,
    ~2 quadratic."""
    import math

    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(c, 1)) for c in costs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def print_series(title: str, rows: List[Tuple]) -> None:
    """Print a labelled series (shows under ``pytest -s`` and in the
    captured bench log)."""
    print()
    print(f"--- {title}")
    for row in rows:
        print("   ", *row)
