"""Extension benchmark — attribute-level secondary indexes.

Claims under test:

1. **Sublinearity.**  An index-planned equality or substring search
   does work bounded by its candidate set, not by |D|: across a 10x
   instance ladder the index work-unit (candidate ids surfaced by the
   planner's probes) must grow with an exponent **< 1** in |D|, while
   the naive scan's work-unit (entries visited) grows linearly.  The
   gate is asserted on the machine-independent counters, so a slow CI
   box cannot mask a complexity regression; it is armed only at
   ``BENCH_INDEX_SCALE >= 1.0`` (smoke fractions sit in noise).

2. **Differential soundness.**  Planner output is byte-identical to
   the naive scan — same entries, same document order — for every
   filter shape on every rung.  This gate is always armed: indexes
   that answer fast but wrong are worse than no indexes.

3. **O(|Delta|) key enforcement.**  With Section 6.1 extras declared,
   a committed (or rejected-duplicate) write pays index probes
   proportional to the *transaction*, not the directory: the probe
   work-unit must also stay sublinear in |D| across the ladder.

``BENCH_INDEX_SCALE`` scales the ladder (1.0 -> ~15k entries at the
top rung; CI smoke uses a small fraction).
"""

import os

from repro.query.filter_parser import parse_filter
from repro.query.search import search
from repro.store import DirectoryStore
from repro.store.index import AttributeIndexes
from repro.updates.operations import UpdateTransaction
from repro.workloads import generate_whitepages, whitepages_schema

from _helpers import fit_growth, print_series

SCALE = float(os.environ.get("BENCH_INDEX_SCALE", "1.0"))
GATE_ARMED = SCALE >= 1.0

#: Relative rungs of the instance ladder — a 10x span in |D|.
RUNGS = (1, 2, 4, 10)


#: The needle entry every rung carries: its uid shares no trigram with
#: the generator's dense ``u<number>`` uids, so the probe's candidate
#: set measures selectivity, not directory size.
PROBE_UID = "zqxprobe"


def ladder_instance(rung: int):
    """A white-pages instance whose size scales linearly with ``rung``
    (persons dominate the entry count), carrying one tagged needle
    entry, with indexes attached."""
    persons = max(2, int(120 * rung * SCALE))
    instance = generate_whitepages(
        orgs=1, units_per_level=3, depth=2, persons_per_unit=persons, seed=7
    )
    org = instance.find("o=org0")
    instance.add_entry(
        org, f"uid={PROBE_UID}", ["person", "top"],
        {"uid": [PROBE_UID], "name": ["probe person"]},
    )
    AttributeIndexes.attach(instance, frozenset(), frozenset(), None)
    return instance


def probe_filters(instance):
    """Filters exercised at every rung.  The ``equality`` and
    ``substring`` entries gate sublinearity (they target the needle, so
    their true-match count is constant); the rest only feed the
    differential check with wider shapes, including a mid-directory uid
    whose trigrams *do* collide with neighbours."""
    eids = sorted(instance.entry_ids())
    uid = None
    for eid in eids[len(eids) // 2:]:
        values = instance.entry(eid).values("uid")
        if values:
            uid = str(values[0])
            break
    assert uid is not None and len(uid) >= 3
    return {
        "equality": f"(uid={PROBE_UID})",
        "substring": f"(uid=*{PROBE_UID[1:-1]}*)",
        "colliding-substring": f"(uid=*{uid[-3:]}*)",
        "and": f"(&(objectClass=person)(uid={uid}))",
        "or": f"(|(uid={uid})(uid={PROBE_UID}))",
    }


def indexed_work(instance, filter_text):
    """Run one indexed search; returns (results, candidate work-unit)."""
    before = instance.indexes.counters()
    results = search(instance, filter=parse_filter(filter_text))
    probes, _, candidates = (
        n - b for n, b in zip(instance.indexes.counters(), before)
    )
    return results, probes + candidates


def naive_results(instance, filter_text):
    """The scan oracle: the same search with the indexes detached."""
    indexes = instance.indexes
    instance.indexes = None
    try:
        return search(instance, filter=parse_filter(filter_text))
    finally:
        instance.indexes = indexes


def test_search_work_sublinear_and_differential(benchmark):
    """Gates 1 and 2: candidate work grows sublinearly while results
    stay byte-identical to the naive scan on every rung."""
    sizes = []
    work = {"equality": [], "substring": []}
    top_instance = None
    top_filter = None
    for rung in RUNGS:
        instance = ladder_instance(rung)
        sizes.append(len(instance))
        filters = probe_filters(instance)
        for label, filter_text in filters.items():
            results, units = indexed_work(instance, filter_text)
            oracle = naive_results(instance, filter_text)
            # Differential gate: identical entries, identical order.
            assert [e.dn for e in results] == [e.dn for e in oracle], (
                f"planner diverged from scan for {filter_text!r} "
                f"at |D|={len(instance)}"
            )
            if label in work:
                work[label].append(max(1, units))
        top_instance, top_filter = instance, filters["equality"]

    rows = [
        (size, eq, sub)
        for size, eq, sub in zip(sizes, work["equality"], work["substring"])
    ]
    print_series("index work-units (|D|, equality, substring)", rows)
    for label, series in work.items():
        exponent = fit_growth(sizes, series)
        if GATE_ARMED:
            assert exponent < 1.0, (
                f"{label} search work grew with exponent {exponent:.2f} "
                f"across |D|={sizes} (work={series}); expected sublinear"
            )

    benchmark(lambda: search(top_instance, filter=parse_filter(top_filter)))


def test_extras_delta_probe_work_sublinear(benchmark, tmp_path):
    """Gate 3: with ``uid`` a Section 6.1 key, accepting a fresh
    insert and rejecting a duplicate both cost index probes bounded by
    the transaction, not the directory."""
    schema = whitepages_schema(extras=True)
    sizes = []
    work = []
    store = None
    for rung in RUNGS:
        persons = max(2, int(120 * rung * SCALE))
        instance = generate_whitepages(
            orgs=1, units_per_level=3, depth=2,
            persons_per_unit=persons, seed=7,
        )
        if store is not None:
            store.close()
        store = DirectoryStore.create(
            str(tmp_path / f"rung{rung}"), schema, instance
        )
        sizes.append(len(store.instance))
        taken = str(store.instance.entry(
            sorted(store.instance.entry_ids())[-1]
        ).values("uid")[0])

        fresh = UpdateTransaction().insert(
            "uid=bench0,o=org0", ["person", "top"],
            {"uid": ["bench0"], "name": ["bench zero"]},
        )
        accepted = store.apply(fresh)
        assert accepted.applied
        duplicate = UpdateTransaction().insert(
            "uid=bench1,o=org0", ["person", "top"],
            {"uid": [taken], "name": ["bench one"]},
        )
        rejected = store.apply(duplicate)
        assert not rejected.applied
        units = (
            accepted.stats.index_probes + accepted.stats.index_candidates
            + rejected.stats.index_probes + rejected.stats.index_candidates
        )
        work.append(max(1, units))

    print_series("extras delta work-units (|D|, probes)", list(zip(sizes, work)))
    exponent = fit_growth(sizes, work)
    if GATE_ARMED:
        assert exponent < 1.0, (
            f"extras delta work grew with exponent {exponent:.2f} "
            f"across |D|={sizes} (work={work}); expected O(|Delta|)"
        )

    counter = [1]

    def guarded_insert():
        counter[0] += 1
        outcome = store.apply(
            UpdateTransaction().insert(
                f"uid=bench{counter[0]},o=org0", ["person", "top"],
                {"uid": [f"bench{counter[0]}"], "name": ["bench n"]},
            )
        )
        assert outcome.applied

    try:
        benchmark(guarded_insert)
    finally:
        store.close()
