"""Ablation — the evaluator's adaptive strategies and the schema-aware
optimizer.

DESIGN.md calls out two design choices worth quantifying:

1. **Adaptive evaluation** (semi-joins from the small side, interval
   bisection, ancestor walks) vs. a non-adaptive baseline that always
   materializes both operands and runs whole-forest flag passes.  The
   adaptive paths are what make Figure 5's Δ-scoped checks O(|Δ|); this
   ablation measures how much they matter (and verifies both modes
   agree).
2. **Schema-aware optimization** (the paper's future-work suggestion):
   evaluation cost of the Figure 4 queries with and without
   constant-folding against the schema closure.
"""

import random

import pytest

from repro.query.ast import SCOPE_DELTA, SCOPE_NEW, HSelect, Minus
from repro.query.evaluator import QueryEvaluator
from repro.query.optimizer import SchemaAwareOptimizer
from repro.query.translate import class_selection, translate_element
from repro.axes import Axis

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance, wp_schema


def delta_scoped_query():
    """A representative Figure 5 insertion Δ-query (required ancestor)."""
    source = class_selection("person").scoped(SCOPE_DELTA)
    target = class_selection("organization").scoped(SCOPE_NEW)
    return Minus(source, HSelect(Axis.ANCESTOR, source, target))


def scopes_for(instance, delta_size=3):
    ids = sorted(instance.all_entry_id_set())
    delta = set(ids[-delta_size:])
    return {SCOPE_DELTA: delta, SCOPE_NEW: set(ids)}


@pytest.mark.parametrize("adaptive", [True, False], ids=["adaptive", "baseline"])
def test_delta_query_evaluation(benchmark, adaptive):
    """Wall-clock for one Δ-scoped query on the large tier."""
    instance = whitepages_instance("large")
    scopes = scopes_for(instance)
    benchmark.extra_info["adaptive"] = adaptive

    def run():
        return QueryEvaluator(instance, scopes, adaptive=adaptive).evaluate(
            delta_scoped_query()
        )

    benchmark(run)


def test_modes_agree_and_adaptive_is_flat(benchmark):
    """Both modes compute identical results; only the adaptive mode's
    work stays flat as |D| grows."""
    sizes, adaptive_costs, baseline_costs = [], [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        scopes = scopes_for(instance)
        query = delta_scoped_query()

        adaptive = QueryEvaluator(instance, scopes, adaptive=True)
        baseline = QueryEvaluator(instance, scopes, adaptive=False)
        assert adaptive.evaluate(query) == baseline.evaluate(query)

        sizes.append(len(instance))
        adaptive_costs.append(max(1, adaptive.cost))
        baseline_costs.append(max(1, baseline.cost))

    adaptive_exp = fit_growth(sizes, adaptive_costs)
    baseline_exp = fit_growth(sizes, baseline_costs)
    print_series(
        "ABLATION: adaptive vs baseline work on a Δ-query",
        [
            (f"|D|={s}", f"adaptive={a}", f"baseline={b}")
            for s, a, b in zip(sizes, adaptive_costs, baseline_costs)
        ]
        + [(f"exponents: adaptive={adaptive_exp:.2f}",
            f"baseline={baseline_exp:.2f}")],
    )
    benchmark.extra_info["adaptive_exponent"] = round(adaptive_exp, 3)
    benchmark.extra_info["baseline_exponent"] = round(baseline_exp, 3)
    assert adaptive_exp < 0.5, f"adaptive should be ~flat: {adaptive_exp:.2f}"
    assert baseline_exp > 0.6, f"baseline should grow with |D|: {baseline_exp:.2f}"

    instance = whitepages_instance("medium")
    scopes = scopes_for(instance)
    benchmark(
        lambda: QueryEvaluator(instance, scopes).evaluate(delta_scoped_query())
    )


def test_random_queries_agree_across_modes(benchmark):
    """Differential: on random class pairs and axes, both modes give
    identical results (timed on the adaptive mode)."""
    instance = whitepages_instance("medium")
    rng = random.Random(3)
    classes = ["person", "orgUnit", "organization", "orgGroup", "top"]
    queries = [
        HSelect(
            rng.choice(list(Axis)),
            class_selection(rng.choice(classes)),
            class_selection(rng.choice(classes)),
        )
        for _ in range(20)
    ]
    for query in queries:
        a = QueryEvaluator(instance, adaptive=True).evaluate(query)
        b = QueryEvaluator(instance, adaptive=False).evaluate(query)
        assert a == b, str(query)

    benchmark(
        lambda: [QueryEvaluator(instance).evaluate(q) for q in queries[:5]]
    )


@pytest.mark.parametrize("optimized", [False, True], ids=["plain", "optimized"])
def test_figure4_suite_with_optimizer(benchmark, optimized):
    """Evaluating all Figure 4 violation queries, with and without
    schema-aware constant folding.  On legal instances the folds reduce
    the whole suite to empty selections."""
    schema = wp_schema()
    instance = whitepages_instance("large")
    checks = [
        translate_element(e)
        for e in schema.structure_schema.relationship_elements()
    ]
    queries = [c.query for c in checks]
    if optimized:
        optimizer = SchemaAwareOptimizer(schema)
        queries = [optimizer.optimize(q).query for q in queries]
    benchmark.extra_info["optimized"] = optimized

    def run():
        evaluator = QueryEvaluator(instance)
        return [evaluator.evaluate(q) for q in queries]

    results = benchmark(run)
    assert all(not r for r in results)  # instance is legal
