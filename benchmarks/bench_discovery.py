"""Extension benchmark — bounding-schema discovery.

Not a paper artifact (the paper's Section 6.2 points at descriptive
schema work as complementary); measured here because the discovered
schemas feed the prescriptive machinery.  Claims under test:

* discovery cost grows near-linearly with |D| for a fixed class
  universe (the per-pair checks reuse the linear Figure 4 machinery);
* every discovered schema accepts its training instance and passes the
  consistency check — on every tier (a semantic cross-validation of the
  Section 5 rules at benchmark scale).
"""

import pytest

from repro.consistency.checker import check_consistency
from repro.legality.checker import LegalityChecker
from repro.schema.discovery import discover_schema

from _helpers import WHITEPAGES_TIERS, fit_growth, print_series, whitepages_instance


@pytest.mark.parametrize("tier", ["small", "medium", "large"])
def test_discover(benchmark, tier):
    instance = whitepages_instance(tier)
    benchmark.extra_info["entries"] = len(instance)
    result = benchmark(lambda: discover_schema(instance))
    assert LegalityChecker(result.schema).is_legal(instance)


def test_discovery_scales_and_cross_validates(benchmark):
    import time

    sizes, times = [], []
    for tier in WHITEPAGES_TIERS:
        instance = whitepages_instance(tier)
        start = time.perf_counter()
        result = discover_schema(instance)
        times.append(time.perf_counter() - start)
        sizes.append(len(instance))
        assert LegalityChecker(result.schema).is_legal(instance)
        assert check_consistency(result.schema).consistent
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "DISCOVERY: time vs |D|",
        [(f"|D|={s}", f"{t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.6, f"should stay near-linear: {exponent:.2f}"

    instance = whitepages_instance("medium")
    benchmark(lambda: discover_schema(instance))
