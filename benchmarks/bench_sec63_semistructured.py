"""Experiment SEC63 — bounding-schemas on semi-structured data.

Reproduces the Section 6.3 applicability claim as measurements:

* graph-constraint validation cost vs graph size for the two paper
  constraint families (person →→ name; country ↛↛ country), on random
  tree-shaped and DAG-shaped catalogs;
* the bridge: on tree-shaped graphs the directory reduction gives the
  same verdicts; its cost is compared with the native graph checker.
"""

import random

import pytest

from repro.legality.structure import QueryStructureChecker
from repro.semistructured import (
    DataGraph,
    GraphConstraints,
    GraphValidator,
    constraints_to_structure_schema,
    graph_to_instance,
)

from _helpers import fit_growth, print_series


def catalog_constraints() -> GraphConstraints:
    return (
        GraphConstraints()
        .require_label("person")
        .require_descendant("person", "name")
        .forbid_descendant("country", "country")
    )


def random_catalog(n: int, seed: int = 0, sharing: float = 0.0) -> DataGraph:
    """A random legal catalog of ~n nodes (countries, corporations,
    persons with name children); with ``sharing > 0`` some persons get
    extra parents (DAG shape)."""
    rng = random.Random(seed)
    g = DataGraph()
    g.add_node("world", "root")
    containers = ["world"]
    # Containers with no country anywhere on their ancestor path — the
    # only places a new country may legally go.
    country_free = ["world"]
    i = 0
    while len(g) < n:
        i += 1
        kind = rng.random()
        if kind < 0.25:
            parent = rng.choice(country_free)
            node = g.add_child(parent, f"c{i}", "country")
            containers.append(node)  # a country may hold corporations
        elif kind < 0.55:
            parent = rng.choice(containers)
            node = g.add_child(parent, f"corp{i}", "corporation")
            containers.append(node)
            if parent in country_free:
                country_free.append(node)
        else:
            parent = rng.choice(containers)
            person = g.add_child(parent, f"p{i}", "person")
            g.add_child(person, f"n{i}", "name", f"name {i}")
            if sharing and rng.random() < sharing and len(containers) > 1:
                other = rng.choice(containers)
                if other != parent:
                    g.add_edge(other, person)
    return g


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_tree_catalog_validation(benchmark, n):
    """Graph validation per size on tree-shaped catalogs."""
    graph = random_catalog(n, seed=1)
    validator = GraphValidator(catalog_constraints())
    benchmark.extra_info["nodes"] = len(graph)
    assert benchmark(lambda: validator.is_legal(graph))


def test_dag_catalog_validation(benchmark):
    """Sharing (DAG shape) is handled natively — no LDAP embedding
    exists, but validation still works."""
    graph = random_catalog(400, seed=2, sharing=0.3)
    assert not graph.is_tree_shaped()
    validator = GraphValidator(catalog_constraints())
    assert benchmark(lambda: validator.is_legal(graph))


def test_bridge_equivalence_and_cost(benchmark):
    """On tree catalogs, the native checker and the LDAP reduction give
    the same verdicts at every size — with comparable growth."""
    import time

    constraints = catalog_constraints()
    validator = GraphValidator(constraints)
    structure = constraints_to_structure_schema(constraints)
    directory_checker = QueryStructureChecker(structure)

    sizes, graph_times, dir_times = [], [], []
    for n in (100, 400, 1600):
        graph = random_catalog(n, seed=3)
        instance = graph_to_instance(graph)

        start = time.perf_counter()
        graph_verdict = validator.is_legal(graph)
        graph_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        dir_verdict = directory_checker.is_legal(instance)
        dir_times.append(time.perf_counter() - start)

        assert graph_verdict == dir_verdict is True
        sizes.append(len(graph))

    graph_exp = fit_growth(sizes, [int(t * 1e9) for t in graph_times])
    dir_exp = fit_growth(sizes, [int(t * 1e9) for t in dir_times])
    print_series(
        "SEC63: native graph checker vs LDAP reduction (seconds)",
        [
            (f"|G|={s}", f"graph={g:.5f}", f"directory={d:.5f}")
            for s, g, d in zip(sizes, graph_times, dir_times)
        ]
        + [(f"exponents: graph={graph_exp:.2f}", f"directory={dir_exp:.2f}")],
    )
    benchmark.extra_info["graph_exponent"] = round(graph_exp, 3)
    benchmark.extra_info["directory_exponent"] = round(dir_exp, 3)
    assert dir_exp < 1.5, f"reduction should stay near-linear: {dir_exp:.2f}"

    graph = random_catalog(400, seed=3)
    benchmark(lambda: validator.is_legal(graph))


def test_violation_detection(benchmark):
    """A planted country-under-country violation is found at any size
    (timing the failing check)."""
    graph = random_catalog(400, seed=4)
    # plant: hang a country under an existing country's corporation
    country = sorted(graph.nodes_with_label("country"))[0]
    corp = graph.add_child(country, "planted-corp", "corporation")
    graph.add_child(corp, "planted-country", "country")
    validator = GraphValidator(catalog_constraints())
    report = benchmark(lambda: validator.check(graph))
    assert any(v.kind == "forbidden-relationship" for v in report)
