"""Experiment LEG — the parallel, memoized legality engine.

Gates for :class:`repro.legality.engine.CheckSession`:

* **Parallel speedup** — sharding the Section 3.1 content check over a
  4-worker pool must beat the sequential pass by >= 1.5x on a ~100k
  entry instance.  (The per-entry checks are independent, so the check
  is embarrassingly parallel; the gate guards the sharding overhead.)
  Skipped on machines with fewer than 4 cores, where the bound is
  physically unreachable — verdict agreement is still asserted.
* **Warm-cache re-check ∝ |Δ|** — after mutating ``k`` entries, a
  re-check must re-run content checks on exactly the ``k``-entry dirty
  set (machine-independent work-counter gate, per the benchmark
  conventions in ``_helpers``).
* **Differential** — engine (process pool, thread pool, warm cache),
  sequential checker, and the naive quadratic baseline agree
  verdict-for-verdict on legal and corrupted instances.

``BENCH_LEGALITY_SCALE`` scales the instance (1.0 -> ~100k entries;
CI smoke uses a small fraction).
"""

import os
import random
import time
from functools import lru_cache

import pytest

from repro.legality.checker import LegalityChecker
from repro.legality.engine import CheckSession

from _helpers import print_series, whitepages_instance, wp_schema

SCALE = float(os.environ.get("BENCH_LEGALITY_SCALE", "1.0"))


def _verdicts(report):
    """A report as an order-independent multiset of verdicts."""
    return sorted((v.kind, v.message, v.dn or "", v.element or "") for v in report.violations)


@lru_cache(maxsize=None)
def _big_instance():
    """A ~100k-entry legal instance at SCALE=1.0 (cached per process)."""
    from repro.workloads import generate_whitepages

    orgs = max(1, int(300 * SCALE))
    return generate_whitepages(
        orgs=orgs, units_per_level=5, depth=2, persons_per_unit=10, seed=42,
    )


def _corrupt(instance, rng, count):
    """Inject ``count`` content violations; returns the mutated copy."""
    mutated = instance.copy()
    persons = sorted(mutated.entries_with_class("person"))
    for eid in rng.sample(persons, min(count, len(persons))):
        entry = mutated.entry(eid)
        value = next(iter(entry.values("name")))
        entry.remove_value("name", value)
    return mutated


# ----------------------------------------------------------------------
# gate 1: parallel speedup
# ----------------------------------------------------------------------
def test_parallel_speedup(benchmark):
    """4 workers >= 1.5x over the sequential content pass at ~100k
    entries; verdicts must agree regardless."""
    schema = wp_schema()
    instance = _big_instance()
    sequential = CheckSession(schema, parallelism=1, memoize=False)
    parallel = CheckSession(schema, parallelism=4, memoize=False, min_parallel=1)
    try:
        seq_report = sequential.check(instance)
        par_report = parallel.check(instance)
        assert _verdicts(seq_report) == _verdicts(par_report)
        assert seq_report.is_legal, "generator output must be legal"

        seq_time = min(
            _timed(sequential.check, instance) for _ in range(3)
        )
        par_time = min(
            _timed(parallel.check, instance) for _ in range(3)
        )
    finally:
        sequential.close()
        parallel.close()

    speedup = seq_time / par_time if par_time else float("inf")
    print_series(
        "LEG: parallel speedup",
        [
            (f"|D|={len(instance)}",),
            (f"sequential={seq_time * 1e3:.1f}ms",),
            (f"parallel(4)={par_time * 1e3:.1f}ms",),
            (f"speedup={speedup:.2f}x",),
        ],
    )
    benchmark.extra_info["entries"] = len(instance)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # timing captured above; keep the fixture happy

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 cores (have {cores})")
    assert speedup >= 1.5, f"expected >= 1.5x on 4 workers, got {speedup:.2f}x"


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# gate 2: warm-cache re-check cost ∝ |Δ|
# ----------------------------------------------------------------------
def test_warm_recheck_cost_tracks_dirty_set(benchmark):
    """After mutating k entries, re-check work is exactly k content
    checks — independent of |D|."""
    schema = wp_schema()
    instance = _big_instance().copy()
    total = len(instance)
    rows = []
    with CheckSession(schema) as session:
        cold = session.check(instance)
        assert cold.stats.entries_checked == total
        assert cold.stats.cache_hits == 0

        persons = sorted(instance.entries_with_class("person"))
        rng = random.Random(9)
        for k in (1, 8, 32):
            for i, eid in enumerate(rng.sample(persons, k)):
                # unique new value -> unique fresh fingerprint
                instance.entry(eid).add_value("name", f"dirty {k}-{i}")
            report = session.check(instance)
            assert report.is_legal
            rows.append((f"|Δ|={k}", f"checked={report.stats.entries_checked}",
                         f"hits={report.stats.cache_hits}"))
            assert report.stats.entries_checked == k, (
                f"warm re-check after {k} mutations re-ran "
                f"{report.stats.entries_checked} content checks"
            )
            assert report.stats.cache_hits == total - k

        print_series(f"LEG: warm re-check work vs |Δ| (|D|={total})", rows)
        benchmark.extra_info["entries"] = total
        benchmark(lambda: session.check(instance).is_legal)


# ----------------------------------------------------------------------
# gate 3: differential — engine vs sequential vs naive
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [0, 7])
def test_engine_sequential_naive_agree(benchmark, bad):
    """All checking strategies agree verdict-for-verdict, on a legal
    instance and on one with injected content violations."""
    schema = wp_schema()
    rng = random.Random(bad)
    instance = whitepages_instance("large")
    if bad:
        instance = _corrupt(instance, rng, bad)

    sequential = _verdicts(LegalityChecker(schema).check(instance))
    naive = _verdicts(LegalityChecker(schema, structure="naive").check(instance))
    with CheckSession(schema, parallelism=2, min_parallel=1) as session:
        engine_cold = _verdicts(session.check(instance))
        engine_warm = _verdicts(session.check(instance))
    with CheckSession(schema, parallelism=2, executor="thread",
                      min_parallel=1) as session:
        engine_thread = _verdicts(session.check(instance))

    assert engine_cold == sequential
    assert engine_warm == sequential
    assert engine_thread == sequential
    assert naive == sequential
    assert bool(sequential) == bool(bad)

    benchmark.extra_info["entries"] = len(instance)
    benchmark.extra_info["violations"] = len(sequential)
    checker = LegalityChecker(schema)
    benchmark(lambda: checker.check(instance))
