"""Experiment STRUCT — the batched, memoized structure-check engine.

Gates for :class:`repro.legality.structure_engine.StructureEngine`:

* **Batched flag propagation** — at ``|S| = 32`` flag-bound elements on
  a ~100k entry forest, evaluating the whole check set through the two
  shared bitmask sweeps must cost >= 3x fewer evaluator work units than
  the per-query checker's one-flag-pass-per-element strategy.  Reports
  must be byte-identical regardless.
* **Warm re-check ∝ dirty classes** — after an update touching one
  class, a warm ``check()`` re-evaluates exactly the elements whose
  source/target classes intersect the dirty set (machine-independent
  work-counter gate).
* **Differential** — batched engine (sequential and parallel), the
  per-query reduction, and the naive baseline agree verdict-for-verdict
  on randomized forests and randomized mixed-axis schemas.

``BENCH_STRUCTURE_SCALE`` scales the forest (1.0 -> ~100k entries; CI
smoke uses a small fraction).
"""

import os
import random
from functools import lru_cache

from repro.legality.structure import NaiveStructureChecker, QueryStructureChecker
from repro.legality.structure_engine import StructureEngine
from repro.model.instance import DirectoryInstance
from repro.schema.structure_schema import StructureSchema
from repro.workloads import random_forest

from _helpers import print_series

SCALE = float(os.environ.get("BENCH_STRUCTURE_SCALE", "1.0"))

#: 8 single-class labels -> every class holds ~n/8 entries, so the
#: adaptive evaluator picks the whole-forest flag pass for every
#: descendant/ancestor element at any scale.
LABELS = [f"k{i}" for i in range(8)]
CHAIN_DEPTH = 25


def _verdicts(report):
    """A report as the ordered verdict list (batched and per-query
    checkers must agree byte-for-byte, including order)."""
    return [(v.kind, v.message, v.dn, v.element) for v in report.violations]


@lru_cache(maxsize=None)
def _big_forest():
    """A tower-structured forest: chains of depth ~25, labels assigned
    round-robin (~n/8 members per class at every depth band)."""
    n = max(200, int(100_000 * SCALE))
    d = DirectoryInstance()
    i = 0
    while i < n:
        parent = None
        for _ in range(min(CHAIN_DEPTH, n - i)):
            d.add_entry(parent, f"o=e{i}", [LABELS[i % len(LABELS)], "top"])
            parent = f"o=e{i}" if parent is None else f"o=e{i},{parent}"
            i += 1
    return d


def _flag_bound_schema(n_elements=32):
    """``n_elements`` descendant/ancestor elements over the 8 labels —
    each would cost one whole-forest flag pass evaluated alone."""
    schema = StructureSchema()
    rng = random.Random(17)
    while len(schema.relationship_elements()) < n_elements:
        source, target = rng.sample(LABELS, 2)
        kind = rng.randrange(3)
        if kind == 0:
            schema.require_descendant(source, target)
        elif kind == 1:
            schema.require_ancestor(source, target)
        else:
            schema.forbid_descendant(source, target)
    assert len(schema.relationship_elements()) == n_elements
    return schema


# ----------------------------------------------------------------------
# gate 1: batched sweeps >= 3x cheaper than per-query flag passes
# ----------------------------------------------------------------------
def test_batched_beats_per_query_cost(benchmark):
    schema = _flag_bound_schema(32)
    instance = _big_forest()

    per_query = QueryStructureChecker(schema)
    query_report = per_query.check(instance)
    query_cost = per_query.last_cost

    with StructureEngine(schema, memoize=False) as engine:
        engine_report = engine.check(instance)
        batched_cost = engine.last_cost
        assert engine.last_batched == 32, (
            f"only {engine.last_batched} elements took the batched path"
        )
        assert engine.last_flag_passes <= 2

    assert _verdicts(engine_report) == _verdicts(query_report)

    ratio = query_cost / batched_cost if batched_cost else float("inf")
    print_series(
        "STRUCT: batched vs per-query cost",
        [
            (f"|D|={len(instance)}", f"|S|={len(schema)}"),
            (f"per-query cost={query_cost}",),
            (f"batched cost={batched_cost}",),
            (f"ratio={ratio:.2f}x",),
        ],
    )
    benchmark.extra_info["entries"] = len(instance)
    benchmark.extra_info["cost_ratio"] = round(ratio, 2)
    with StructureEngine(schema, memoize=False) as engine:
        benchmark(lambda: engine.check(instance))
    assert ratio >= 3.0, (
        f"batched sweep should be >= 3x cheaper, got {ratio:.2f}x "
        f"({query_cost} vs {batched_cost} work units)"
    )


# ----------------------------------------------------------------------
# gate 2: warm re-check work ∝ dirty classes
# ----------------------------------------------------------------------
def test_warm_recheck_tracks_dirty_classes(benchmark):
    schema = _flag_bound_schema(32)
    instance = _big_forest().copy()
    dirty_class = LABELS[2]
    intersecting = sum(
        1
        for element in schema.relationship_elements()
        if dirty_class in (element.source, element.target)
    )
    assert 0 < intersecting < len(schema.relationship_elements())

    with StructureEngine(schema) as engine:
        engine.check(instance)
        cold_cost = engine.last_cost

        engine.check(instance)
        assert engine.last_checks_evaluated == 0, "clean re-check did work"
        assert engine.last_cost == 0

        instance.add_entry(None, "o=dirty", [dirty_class, "top"])
        engine.check(instance)
        warm_cost = engine.last_cost
        rows = [
            (f"|D|={len(instance)}", f"|S|={len(schema)}"),
            (f"cold cost={cold_cost}",),
            (f"dirty class={dirty_class!r}", f"intersecting={intersecting}"),
            (f"warm re-evaluated={engine.last_checks_evaluated}",
             f"memo hits={engine.last_cache_hits}"),
            (f"warm cost={warm_cost}",),
        ]
        print_series("STRUCT: warm re-check vs dirty set", rows)
        assert engine.last_checks_evaluated == intersecting, (
            f"touching {dirty_class!r} re-evaluated "
            f"{engine.last_checks_evaluated} elements, expected {intersecting}"
        )
        assert engine.last_cache_hits == len(engine.checks) - intersecting
        assert warm_cost < cold_cost

        benchmark.extra_info["entries"] = len(instance)
        benchmark.extra_info["intersecting"] = intersecting
        benchmark(lambda: engine.check(instance).is_legal)


# ----------------------------------------------------------------------
# gate 3: randomized differential, three strategies
# ----------------------------------------------------------------------
def test_batched_per_query_naive_agree(benchmark):
    """The naive baseline is quadratic, so this gate runs on small
    random forests — many seeds, mixed axes and polarities."""
    rng = random.Random(23)
    axes_schema = None
    for trial in range(12):
        schema = StructureSchema()
        for _ in range(34):
            source, target = rng.sample(LABELS, 2)
            pick = rng.randrange(6)
            if pick == 0:
                schema.require_child(source, target)
            elif pick == 1:
                schema.require_descendant(source, target)
            elif pick == 2:
                schema.require_parent(source, target)
            elif pick == 3:
                schema.require_ancestor(source, target)
            elif pick == 4:
                schema.forbid_child(source, target)
            else:
                schema.forbid_descendant(source, target)
        schema.require_class(rng.choice(LABELS))
        axes_schema = schema
        instance = random_forest(
            n_entries=rng.randrange(40, 160), labels=LABELS, seed=trial
        )

        query_report = QueryStructureChecker(schema).check(instance)
        naive_report = NaiveStructureChecker(schema).check(instance)
        with StructureEngine(schema) as engine:
            batched = engine.check(instance)
        with StructureEngine(schema, parallelism=4) as engine:
            parallel_batched = engine.check(instance)

        assert _verdicts(batched) == _verdicts(query_report)
        assert _verdicts(parallel_batched) == _verdicts(query_report)
        assert sorted(_verdicts(batched)) == sorted(_verdicts(naive_report))

    benchmark.extra_info["trials"] = 12
    checker = QueryStructureChecker(axes_schema)
    instance = random_forest(n_entries=120, labels=LABELS, seed=99)
    benchmark(lambda: checker.check(instance))
