"""Extension benchmark — the durable store (snapshot + WAL journal).

Claims under test: guarded-commit throughput is dominated by the
incremental check plus one fsync (flat in |D|), recovery replay is
linear in journal length, and the checksummed WAL frame format costs
less than 2x the seed's bare ``# commit`` marker format per append.
"""

import os
import statistics
import time

from repro.store import DirectoryStore
from repro.store.wal import encode_record
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import fit_growth, print_series


def fresh_store(tmp_path, name, orgs=1):
    schema = whitepages_schema()
    instance = generate_whitepages(orgs=orgs, units_per_level=2, depth=1,
                                   persons_per_unit=2, seed=8)
    return DirectoryStore.create(str(tmp_path / name), schema, instance)


def test_guarded_commit(benchmark, tmp_path):
    """One transaction end-to-end: check + WAL append + fsync."""
    store = fresh_store(tmp_path, "commit")
    counter = [0]

    def commit():
        counter[0] += 1
        tx = random_transaction(store.instance, inserts=1, seed=counter[0])
        outcome = store.apply(tx)
        assert outcome.applied

    try:
        benchmark(commit)
    finally:
        store.close()


def test_recovery_replay(benchmark, tmp_path):
    """Reopening a store with a 20-transaction journal."""
    store = fresh_store(tmp_path, "replay")
    for seed in range(20):
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=1000 + seed)
        ).applied
    live_size = len(store.instance)
    store.close()  # release the advisory lock before the reopen loop
    schema = whitepages_schema()
    path = str(tmp_path / "replay")
    observed = {}

    def reopen():
        with DirectoryStore.open(
            path, schema, registry=whitepages_registry()
        ) as reopened:
            observed["journal"] = reopened.journal_length
            observed["entries"] = len(reopened.instance)

    benchmark(reopen)
    assert observed["journal"] == 20
    assert observed["entries"] == live_size


def test_compaction(benchmark, tmp_path):
    """Journal-into-snapshot folding."""
    store = fresh_store(tmp_path, "compact")
    counter = [0]

    def fill_and_compact():
        counter[0] += 1
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=5000 + counter[0])
        ).applied
        store.compact()
        assert store.journal_length == 0

    try:
        benchmark(fill_and_compact)
    finally:
        store.close()


def _median_append_time(path, frames, repeats=5):
    """Median wall time to append ``frames`` (bytes) with one fsync each."""
    samples = []
    for _ in range(repeats):
        if os.path.exists(path):
            os.unlink(path)
        start = time.perf_counter()
        for frame in frames:
            with open(path, "ab") as handle:
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_wal_append_overhead(benchmark, tmp_path):
    """The checksummed WAL frame format vs the seed's bare commit marker.

    Both variants append the same LDIF payloads with one fsync per
    record; the only difference is the framing (header + CRC + trailer
    vs ``\\n# commit\\n\\n``).  The WAL format must stay within 2x.
    """
    payloads = [
        (
            f"dn: ou=bench{i},o=att\nchangetype: add\n"
            f"objectClass: orgUnit\nobjectClass: orgGroup\nou: bench{i}\n"
        )
        for i in range(50)
    ]
    seed_frames = [(p + "\n# commit\n\n").encode("utf-8") for p in payloads]
    wal_frames = [
        encode_record(i + 1, 1, p) for i, p in enumerate(payloads)
    ]

    seed_time = _median_append_time(str(tmp_path / "seed.journal"), seed_frames)
    wal_time = _median_append_time(str(tmp_path / "wal.journal"), wal_frames)
    ratio = wal_time / seed_time
    print_series(
        "STORE: WAL append overhead vs seed marker format (50 records)",
        [
            ("seed markers", f"{seed_time * 1e3:.2f}ms"),
            ("wal frames", f"{wal_time * 1e3:.2f}ms"),
            (f"ratio={ratio:.2f}x",),
        ],
    )
    benchmark.extra_info["ratio"] = round(ratio, 3)
    assert ratio < 2.0, f"WAL framing should cost < 2x the seed format: {ratio:.2f}x"

    wal_path = str(tmp_path / "kernel.journal")
    counter = [0]

    def append_one():
        counter[0] += 1
        frame = encode_record(counter[0], 1, payloads[counter[0] % len(payloads)])
        with open(wal_path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())

    benchmark(append_one)


def test_replay_linear_in_journal_length(benchmark, tmp_path):
    schema = whitepages_schema()
    sizes, times = [], []
    for n in (5, 10, 20, 40):
        store = fresh_store(tmp_path, f"lin{n}")
        for seed in range(n):
            assert store.apply(
                random_transaction(store.instance, inserts=1, seed=7000 + seed)
            ).applied
        store.close()
        path = str(tmp_path / f"lin{n}")
        start = time.perf_counter()
        DirectoryStore.open(path, schema, registry=whitepages_registry()).close()
        times.append(time.perf_counter() - start)
        sizes.append(n)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "STORE: recovery time vs journal length",
        [(f"txs={s}", f"{t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.6, f"replay should be ~linear: {exponent:.2f}"

    store = fresh_store(tmp_path, "kernel")
    assert store.apply(random_transaction(store.instance, inserts=1, seed=9)).applied
    store.close()
    path = str(tmp_path / "kernel")

    def reopen():
        DirectoryStore.open(path, schema, registry=whitepages_registry()).close()

    benchmark(reopen)
