"""Extension benchmark — the durable store (snapshot + journal).

Claims under test: guarded-commit throughput is dominated by the
incremental check plus one fsync (flat in |D|), and recovery replay is
linear in journal length.
"""

import random

import pytest

from repro.store import DirectoryStore
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import fit_growth, print_series


def fresh_store(tmp_path, name, orgs=1):
    schema = whitepages_schema()
    instance = generate_whitepages(orgs=orgs, units_per_level=2, depth=1,
                                   persons_per_unit=2, seed=8)
    return DirectoryStore.create(str(tmp_path / name), schema, instance)


def test_guarded_commit(benchmark, tmp_path):
    """One transaction end-to-end: check + journal append + fsync."""
    store = fresh_store(tmp_path, "commit")
    counter = [0]

    def commit():
        counter[0] += 1
        tx = random_transaction(store.instance, inserts=1, seed=counter[0])
        outcome = store.apply(tx)
        assert outcome.applied

    benchmark(commit)


def test_recovery_replay(benchmark, tmp_path):
    """Reopening a store with a 20-transaction journal."""
    store = fresh_store(tmp_path, "replay")
    for seed in range(20):
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=1000 + seed)
        ).applied
    schema = whitepages_schema()
    path = str(tmp_path / "replay")

    reopened = benchmark(
        lambda: DirectoryStore.open(path, schema, registry=whitepages_registry())
    )
    assert reopened.journal_length == 20
    assert len(reopened.instance) == len(store.instance)


def test_compaction(benchmark, tmp_path):
    """Journal-into-snapshot folding."""
    store = fresh_store(tmp_path, "compact")
    counter = [0]

    def fill_and_compact():
        counter[0] += 1
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=5000 + counter[0])
        ).applied
        store.compact()
        assert store.journal_length == 0

    benchmark(fill_and_compact)


def test_replay_linear_in_journal_length(benchmark, tmp_path):
    import time

    schema = whitepages_schema()
    sizes, times = [], []
    for n in (5, 10, 20, 40):
        store = fresh_store(tmp_path, f"lin{n}")
        for seed in range(n):
            assert store.apply(
                random_transaction(store.instance, inserts=1, seed=7000 + seed)
            ).applied
        path = str(tmp_path / f"lin{n}")
        start = time.perf_counter()
        DirectoryStore.open(path, schema, registry=whitepages_registry())
        times.append(time.perf_counter() - start)
        sizes.append(n)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "STORE: recovery time vs journal length",
        [(f"txs={s}", f"{t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.6, f"replay should be ~linear: {exponent:.2f}"

    store = fresh_store(tmp_path, "kernel")
    assert store.apply(random_transaction(store.instance, inserts=1, seed=9)).applied
    path = str(tmp_path / "kernel")
    benchmark(lambda: DirectoryStore.open(path, schema,
                                          registry=whitepages_registry()))
