"""Extension benchmark — the durable store (snapshot + WAL journal).

Claims under test: guarded-commit throughput is dominated by the
incremental check plus one fsync (flat in |D|), recovery replay is
linear in journal length, the checksummed WAL frame format costs
less than 2x the seed's bare ``# commit`` marker format per append,
and a lock-free reader's ``refresh()`` costs O(|Δ|) in the WAL tail —
independent of snapshot size.

``BENCH_STORE_SCALE`` scales the reader-refresh store (1.0 -> ~100k
entries; CI smoke uses a small fraction).
"""

import os
import statistics
import time
from functools import lru_cache

from repro.store import DirectoryStore
from repro.store.reader import StoreReader
from repro.store.recovery import SNAPSHOT_FILE
from repro.store.wal import encode_record
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import fit_growth, print_series

SCALE = float(os.environ.get("BENCH_STORE_SCALE", "1.0"))


def fresh_store(tmp_path, name, orgs=1):
    schema = whitepages_schema()
    instance = generate_whitepages(orgs=orgs, units_per_level=2, depth=1,
                                   persons_per_unit=2, seed=8)
    return DirectoryStore.create(str(tmp_path / name), schema, instance)


def test_guarded_commit(benchmark, tmp_path):
    """One transaction end-to-end: check + WAL append + fsync."""
    store = fresh_store(tmp_path, "commit")
    counter = [0]

    def commit():
        counter[0] += 1
        tx = random_transaction(store.instance, inserts=1, seed=counter[0])
        outcome = store.apply(tx)
        assert outcome.applied

    try:
        benchmark(commit)
    finally:
        store.close()


def test_recovery_replay(benchmark, tmp_path):
    """Reopening a store with a 20-transaction journal."""
    store = fresh_store(tmp_path, "replay")
    for seed in range(20):
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=1000 + seed)
        ).applied
    live_size = len(store.instance)
    store.close()  # release the advisory lock before the reopen loop
    schema = whitepages_schema()
    path = str(tmp_path / "replay")
    observed = {}

    def reopen():
        with DirectoryStore.open(
            path, schema, registry=whitepages_registry()
        ) as reopened:
            observed["journal"] = reopened.journal_length
            observed["entries"] = len(reopened.instance)

    benchmark(reopen)
    assert observed["journal"] == 20
    assert observed["entries"] == live_size


def test_compaction(benchmark, tmp_path):
    """Journal-into-snapshot folding."""
    store = fresh_store(tmp_path, "compact")
    counter = [0]

    def fill_and_compact():
        counter[0] += 1
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=5000 + counter[0])
        ).applied
        store.compact()
        assert store.journal_length == 0

    try:
        benchmark(fill_and_compact)
    finally:
        store.close()


def _median_append_time(path, frames, repeats=5):
    """Median wall time to append ``frames`` (bytes) with one fsync each."""
    samples = []
    for _ in range(repeats):
        if os.path.exists(path):
            os.unlink(path)
        start = time.perf_counter()
        for frame in frames:
            with open(path, "ab") as handle:
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_wal_append_overhead(benchmark, tmp_path):
    """The checksummed WAL frame format vs the seed's bare commit marker.

    Both variants append the same LDIF payloads with one fsync per
    record; the only difference is the framing (header + CRC + trailer
    vs ``\\n# commit\\n\\n``).  The WAL format must stay within 2x.
    """
    payloads = [
        (
            f"dn: ou=bench{i},o=att\nchangetype: add\n"
            f"objectClass: orgUnit\nobjectClass: orgGroup\nou: bench{i}\n"
        )
        for i in range(50)
    ]
    seed_frames = [(p + "\n# commit\n\n").encode("utf-8") for p in payloads]
    wal_frames = [
        encode_record(i + 1, 1, p) for i, p in enumerate(payloads)
    ]

    seed_time = _median_append_time(str(tmp_path / "seed.journal"), seed_frames)
    wal_time = _median_append_time(str(tmp_path / "wal.journal"), wal_frames)
    ratio = wal_time / seed_time
    print_series(
        "STORE: WAL append overhead vs seed marker format (50 records)",
        [
            ("seed markers", f"{seed_time * 1e3:.2f}ms"),
            ("wal frames", f"{wal_time * 1e3:.2f}ms"),
            (f"ratio={ratio:.2f}x",),
        ],
    )
    benchmark.extra_info["ratio"] = round(ratio, 3)
    assert ratio < 2.0, f"WAL framing should cost < 2x the seed format: {ratio:.2f}x"

    wal_path = str(tmp_path / "kernel.journal")
    counter = [0]

    def append_one():
        counter[0] += 1
        frame = encode_record(counter[0], 1, payloads[counter[0] % len(payloads)])
        with open(wal_path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())

    benchmark(append_one)


def test_replay_linear_in_journal_length(benchmark, tmp_path):
    schema = whitepages_schema()
    sizes, times = [], []
    for n in (5, 10, 20, 40):
        store = fresh_store(tmp_path, f"lin{n}")
        for seed in range(n):
            assert store.apply(
                random_transaction(store.instance, inserts=1, seed=7000 + seed)
            ).applied
        store.close()
        path = str(tmp_path / f"lin{n}")
        start = time.perf_counter()
        DirectoryStore.open(path, schema, registry=whitepages_registry()).close()
        times.append(time.perf_counter() - start)
        sizes.append(n)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "STORE: recovery time vs journal length",
        [(f"txs={s}", f"{t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.6, f"replay should be ~linear: {exponent:.2f}"

    store = fresh_store(tmp_path, "kernel")
    assert store.apply(random_transaction(store.instance, inserts=1, seed=9)).applied
    store.close()
    path = str(tmp_path / "kernel")

    def reopen():
        DirectoryStore.open(path, schema, registry=whitepages_registry()).close()

    benchmark(reopen)


# ----------------------------------------------------------------------
# reader-refresh gate: O(|Δ|) in the WAL tail, not snapshot size
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _big_instance():
    """A ~100k-entry legal instance at SCALE=1.0 (cached per process)."""
    orgs = max(1, int(300 * SCALE))
    return generate_whitepages(
        orgs=orgs, units_per_level=5, depth=2, persons_per_unit=10, seed=42,
    )


def _median_refresh_time(store, reader, rounds, seed_base):
    """Median wall time of a one-frame ``refresh()``: commit one
    transaction, then time only the reader's catch-up."""
    samples = []
    for i in range(rounds):
        assert store.apply(
            random_transaction(store.instance, inserts=1, seed=seed_base + i)
        ).applied
        start = time.perf_counter()
        result = reader.refresh(strict=True)
        samples.append(time.perf_counter() - start)
        assert result.advanced and result.frames_replayed == 1
    return statistics.median(samples)


def test_reader_refresh_scales_with_tail(benchmark, tmp_path):
    """``refresh()`` cost tracks the tail length |Δ|, not the snapshot.

    Against a ~100k-entry store (at SCALE=1.0) the reader replays
    exactly the ``t`` frames the writer appended since its last
    refresh, scanning only the new journal suffix — asserted via the
    machine-independent ``frames_replayed`` / ``bytes_scanned``
    counters, plus a lenient wall-clock comparison against a toy store
    three orders of magnitude smaller.
    """
    schema = whitepages_schema()
    registry = whitepages_registry()
    big_path = str(tmp_path / "big")
    big = DirectoryStore.create(big_path, schema, _big_instance(), registry)
    reader = StoreReader.open(big_path, schema, registry)
    small = fresh_store(tmp_path, "small")
    small_reader = StoreReader.open(str(tmp_path / "small"), schema, registry)
    try:
        snapshot_bytes = os.path.getsize(os.path.join(big_path, SNAPSHOT_FILE))
        tails = [1, 2, 4, 8, 16]
        scanned = []
        seed = 0
        for t in tails:
            for _ in range(t):
                seed += 1
                assert big.apply(
                    random_transaction(big.instance, inserts=1, seed=seed)
                ).applied
            result = reader.refresh(strict=True)
            assert result.advanced and not result.rebootstrapped
            assert result.frames_replayed == t, (
                f"tail of {t} frames replayed {result.frames_replayed}"
            )
            # The refresh never re-reads the snapshot: the scanned
            # suffix is a sliver of the (≈100k-entry) snapshot file.
            assert result.bytes_scanned * 20 < snapshot_bytes, (
                f"refresh scanned {result.bytes_scanned}B against a "
                f"{snapshot_bytes}B snapshot — not O(|Δ|)"
            )
            scanned.append(result.bytes_scanned)
        exponent = fit_growth(tails, scanned)
        big_median = _median_refresh_time(big, reader, 9, seed_base=10_000)
        small_median = _median_refresh_time(
            small, small_reader, 9, seed_base=20_000
        )
        ratio = big_median / small_median if small_median else 1.0
        print_series(
            f"STORE: reader refresh vs tail length ({len(big.instance)} entries)",
            [(f"tail={t}", f"{b}B scanned") for t, b in zip(tails, scanned)]
            + [(f"bytes exponent={exponent:.2f}",),
               (f"1-frame refresh big/small ratio={ratio:.2f}x",)],
        )
        benchmark.extra_info["exponent"] = round(exponent, 3)
        benchmark.extra_info["ratio"] = round(ratio, 3)
        assert 0.5 < exponent < 1.5, (
            f"bytes scanned should grow ~linearly with the tail: {exponent:.2f}"
        )
        # Wall clock: a one-frame refresh on the big store must be in
        # the same league as on the toy store (lenient — the bound only
        # catches an accidental full-snapshot re-read, which would be
        # ~1000x at full scale).
        assert ratio < 10.0, (
            f"1-frame refresh is {ratio:.1f}x slower on the big store — "
            "refresh cost should not depend on snapshot size"
        )

        counter = [30_000]

        def commit_and_refresh():
            counter[0] += 1
            assert big.apply(
                random_transaction(big.instance, inserts=1, seed=counter[0])
            ).applied
            assert reader.refresh(strict=True).frames_replayed == 1

        benchmark(commit_and_refresh)
    finally:
        small_reader.close()
        small.close()
        reader.close()
        big.close()
