"""Extension benchmark — the sharded store behind the composite view.

Claim under test: Theorem 4.1's subtree modularity makes the routing
cut *pay*.  Shards are independent store directories, so whole-store
legality checking runs one worker **process** per shard
(:func:`repro.store.sharded.check_shards_parallel`) with no shared
state — at full scale (~100k entries, ``BENCH_SHARD_SCALE=1.0``) the
K-shard parallel check must beat a single union store checked through
one lock-free reader, end to end (bootstrap + check in both arms).

CI smoke runs a small fraction of the scale where process start-up
dominates, and a single-CPU box serializes the workers (the check is
CPU-bound, so K processes on one core do the same work as one, plus
fork overhead).  The beats-single-store gate is therefore asserted
only at ``BENCH_SHARD_SCALE >= 1.0`` on a multi-core machine; the
ratio is always recorded in ``extra_info``.
"""

import gc
import os
import statistics
import time

from repro.store import DirectoryStore
from repro.store.reader import StoreReader
from repro.store.sharded import ShardedStore, check_shards_parallel
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import print_series

SCALE = float(os.environ.get("BENCH_SHARD_SCALE", "1.0"))
SHARDS = 4
try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
GATE_ARMED = SCALE >= 1.0 and CPUS >= 2


def _union_instance():
    """~100k entries at SCALE=1.0, split evenly over SHARDS org roots."""
    target = max(200, int(100_000 * SCALE))
    per_org_units = max(2, int((target / (SHARDS * 11)) ** 0.5))
    return generate_whitepages(
        orgs=SHARDS,
        units_per_level=per_org_units,
        depth=2,
        persons_per_unit=10,
        seed=42,
    )


def _build_stores(tmp_path):
    """One union store and one K-shard store over the same instance."""
    schema = whitepages_schema()
    registry = whitepages_registry()
    instance = _union_instance()
    union_dir = str(tmp_path / "union")
    sharded_dir = str(tmp_path / "sharded")
    DirectoryStore.create(union_dir, schema, instance, registry).close()
    bases = {f"org{i}": f"o=org{i}" for i in range(SHARDS)}
    ShardedStore.create(sharded_dir, schema, bases, instance, registry).close()
    entries = len(instance)
    # Drop the build-time instance before measuring: the parallel arm
    # forks worker processes, and copy-on-write faults against a ~100k
    # entry parent heap would bill store construction to the check.
    del instance
    gc.collect()
    return schema, registry, union_dir, sharded_dir, entries


def _median(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_parallel_shard_check_vs_single_store(benchmark, tmp_path):
    """End-to-end whole-store check: K worker processes (one per shard)
    vs one reader over the union store."""
    schema, registry, union_dir, sharded_dir, entries = _build_stores(tmp_path)

    def check_union():
        reader = StoreReader.open(union_dir, schema, registry)
        try:
            assert reader.check().is_legal
        finally:
            reader.close()

    def check_sharded():
        report, checked = check_shards_parallel(
            sharded_dir, schema, registry, jobs=SHARDS
        )
        assert report.is_legal and checked == entries

    single_time = _median(check_union)
    parallel_time = _median(check_sharded)
    ratio = parallel_time / single_time
    print_series(
        f"SHARD: whole-store check, {entries} entries, {SHARDS} shards",
        [
            ("single store", f"{single_time:.3f}s"),
            (f"{SHARDS}-shard parallel", f"{parallel_time:.3f}s"),
            (f"ratio={ratio:.2f}x ({CPUS} cpus, "
             f"gate {'armed' if GATE_ARMED else 'recorded only'})",),
        ],
    )
    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["cpus"] = CPUS
    benchmark.extra_info["ratio"] = round(ratio, 3)
    if GATE_ARMED:
        assert ratio < 1.0, (
            f"{SHARDS}-shard parallel check should beat the single store "
            f"at ~100k entries on {CPUS} cpus: {ratio:.2f}x"
        )
    benchmark(check_sharded)


def test_routed_commit_overhead(benchmark, tmp_path):
    """One guarded commit through the routing + composite layer vs a
    plain store — the tax of shard routing on the write path."""
    schema = whitepages_schema()
    registry = whitepages_registry()
    instance = generate_whitepages(
        orgs=SHARDS, units_per_level=2, depth=1, persons_per_unit=2, seed=8
    )
    plain = DirectoryStore.create(
        str(tmp_path / "plain"), schema, instance, registry
    )
    bases = {f"org{i}": f"o=org{i}" for i in range(SHARDS)}
    sharded = ShardedStore.create(
        str(tmp_path / "routed"), schema, bases, instance, registry
    )
    counter = [0]

    def routed_commit():
        counter[0] += 1
        tx = random_transaction(
            sharded.shard("org0").instance, inserts=1, seed=counter[0]
        )
        assert sharded.apply(tx).applied

    try:
        plain_time = _median(
            lambda: plain.apply(
                random_transaction(plain.instance, inserts=1,
                                   seed=10_000 + counter[0])
            )
        )
        routed_time = _median(routed_commit)
        ratio = routed_time / max(plain_time, 1e-9)
        print_series(
            "SHARD: routed commit vs plain commit",
            [
                ("plain", f"{plain_time * 1e3:.2f}ms"),
                ("routed", f"{routed_time * 1e3:.2f}ms"),
                (f"ratio={ratio:.2f}x",),
            ],
        )
        benchmark.extra_info["ratio"] = round(ratio, 3)
        benchmark(routed_commit)
    finally:
        plain.close()
        sharded.close()
