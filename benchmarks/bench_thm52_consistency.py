"""Experiment THM52 — polynomial-time consistency checking.

Theorem 5.2: consistency of ``S`` is decidable in time polynomial in the
size of the schema.  Series produced:

* closure time vs. number of classes (fixed edge density) on consistent,
  cyclic-inconsistent, and contradictory schema families;
* closure time vs. number of edges (fixed classes);
* witness-synthesis time on consistent schemas.

Shape claims: fitted time exponents stay well below any exponential
escape (we assert ≲ cubic in classes; fact counts ≲ quadratic), and the
verdicts match the family labels at every size.
"""

import time

import pytest

from repro.consistency.checker import check_consistency
from repro.consistency.engine import close
from repro.workloads import random_schema

from _helpers import fit_growth, print_series


@pytest.mark.parametrize("mode", ["consistent", "cyclic", "contradictory"])
def test_verdicts_per_family(benchmark, mode):
    """Timing one mid-size check per family; verdicts must match."""
    schema = random_schema(n_classes=12, n_required=6, n_forbidden=4,
                           seed=1, mode=mode)
    result = benchmark(lambda: check_consistency(schema))
    assert result.consistent == (mode == "consistent")


@pytest.mark.parametrize("n_classes", [8, 16, 32])
def test_scaling_in_classes(benchmark, n_classes):
    """The headline series: classes grow, edges grow proportionally."""
    schema = random_schema(
        n_classes=n_classes, n_required=n_classes // 2,
        n_forbidden=n_classes // 4, seed=2, mode="consistent",
    )
    elements = list(schema.all_elements())
    benchmark.extra_info["classes"] = n_classes
    benchmark.extra_info["elements"] = len(elements)
    closure = benchmark(lambda: close(elements))
    assert closure.consistent


def test_polynomial_in_classes(benchmark):
    """Fitted exponent of closure time vs #classes stays polynomial."""
    sizes, times, facts = [], [], []
    for n in (8, 16, 32, 64):
        schema = random_schema(
            n_classes=n, n_required=n // 2, n_forbidden=n // 4,
            seed=3, mode="consistent",
        )
        elements = list(schema.all_elements())
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            closure = close(elements)
            best = min(best, time.perf_counter() - start)
        sizes.append(n)
        times.append(best)
        facts.append(len(closure))
    time_exp = fit_growth(sizes, [int(t * 1e9) for t in times])
    fact_exp = fit_growth(sizes, facts)
    print_series(
        "THM52: closure vs #classes",
        [
            (f"n={s}", f"time={t:.4f}s", f"facts={f}")
            for s, t, f in zip(sizes, times, facts)
        ]
        + [(f"exponents: time={time_exp:.2f}", f"facts={fact_exp:.2f}")],
    )
    benchmark.extra_info["time_exponent"] = round(time_exp, 3)
    benchmark.extra_info["fact_exponent"] = round(fact_exp, 3)
    assert fact_exp < 2.5, f"fact growth should be ≲ quadratic: {fact_exp:.2f}"
    assert time_exp < 3.5, f"time should stay polynomial: {time_exp:.2f}"

    schema = random_schema(n_classes=16, n_required=8, n_forbidden=4,
                           seed=3, mode="consistent")
    elements = list(schema.all_elements())
    benchmark(lambda: close(elements))


def test_polynomial_in_edges(benchmark):
    """Closure time vs #structure-edges for a fixed class universe."""
    sizes, times = [], []
    for edges in (4, 8, 16, 32):
        schema = random_schema(
            n_classes=16, n_required=edges, n_forbidden=edges // 2,
            seed=4, mode="any",
        )
        elements = list(schema.all_elements())
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            close(elements)
            best = min(best, time.perf_counter() - start)
        sizes.append(edges)
        times.append(best)
    exponent = fit_growth(sizes, [int(t * 1e9) for t in times])
    print_series(
        "THM52: closure time vs #edges (16 classes)",
        [(f"edges={s}", f"{t:.4f}s") for s, t in zip(sizes, times)]
        + [(f"exponent={exponent:.2f}",)],
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 2.5, f"should stay polynomial in edges: {exponent:.2f}"

    schema = random_schema(n_classes=16, n_required=16, n_forbidden=8,
                           seed=4, mode="any")
    elements = list(schema.all_elements())
    benchmark(lambda: close(elements))


def test_witness_synthesis(benchmark):
    """Constructive consistency: witness synthesis on a consistent
    schema (Theorem 5.2 made executable)."""
    schema = random_schema(n_classes=12, n_required=6, n_forbidden=3,
                           seed=6, mode="consistent")
    result = benchmark(lambda: check_consistency(schema, synthesize=True))
    assert result.consistent and result.witness is not None
