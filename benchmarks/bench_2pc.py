"""Extension benchmark — two-phase commit across the routing cut.

Claims under test: (1) lifting the spanning-transaction refusal must
not tax the common case.  A transaction owned by a single shard still
takes the fast path — staged in memory, composite-checked, then one
ordinary WAL frame, with **zero** coordinator-log I/O — and must stay
within 10% of the PR 5 sequence it replaced (reconstructed here as a
direct shard commit followed by the same composite check; PR 5
checked *after* committing and compensated on violation).  (2) The
spanning 2PC commit's overhead — a prepare and a decide frame on
every participant plus three coordinator-log records — is recorded
for tracking, not gated: it buys the atomicity the old path refused
to offer at any price.

CI smoke runs a small fraction of the scale, where per-commit fsync
noise dominates; the <10% gate is asserted only at
``BENCH_2PC_SCALE >= 1.0`` on a multi-core machine, and the ratios
are always recorded in ``extra_info``.
"""

import os
import statistics
import time

from repro.store.sharded import ShardedStore, _composite_report
from repro.store.txlog import TXLOG_FILE
from repro.updates.operations import UpdateTransaction
from repro.workloads import (
    generate_whitepages,
    random_transaction,
    whitepages_registry,
    whitepages_schema,
)

from _helpers import print_series

SCALE = float(os.environ.get("BENCH_2PC_SCALE", "1.0"))
SHARDS = 2
try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
GATE_ARMED = SCALE >= 1.0 and CPUS >= 2


def _instance():
    """~20k entries at SCALE=1.0, split over SHARDS org roots.  A flat
    map keeps shard-local DNs equal to global DNs, so per-shard
    ``random_transaction`` output routes unchanged."""
    target = max(100, int(20_000 * SCALE))
    per_org_units = max(2, int((target / (SHARDS * 11)) ** 0.5))
    return generate_whitepages(
        orgs=SHARDS,
        units_per_level=per_org_units,
        depth=2,
        persons_per_unit=10,
        seed=11,
    )


def _build(tmp_path, name):
    schema = whitepages_schema()
    registry = whitepages_registry()
    bases = {f"org{i}": f"o=org{i}" for i in range(SHARDS)}
    return ShardedStore.create(
        str(tmp_path / name), schema, bases, _instance(), registry
    )


def _median(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _txlog_size(directory):
    path = os.path.join(directory, TXLOG_FILE)
    return os.path.getsize(path) if os.path.exists(path) else 0


def test_single_shard_fast_path_vs_pr5_sequence(benchmark, tmp_path):
    """One routed single-shard commit through the 2PC-capable apply
    vs the PR 5 commit-then-check sequence on an identical store."""
    new = _build(tmp_path, "new")
    old = _build(tmp_path, "old")
    counter = [0]

    def fast_path():
        counter[0] += 1
        tx = random_transaction(
            new.shard("org0").instance, inserts=1, seed=counter[0]
        )
        assert new.apply(tx).applied

    def pr5_sequence():
        # PR 5's fast path: commit to the owning shard immediately,
        # *then* run the composite check (and compensate on violation
        # — never taken here, the transactions are legal).
        counter[0] += 1
        tx = random_transaction(
            old.shard("org0").instance, inserts=1, seed=10_000 + counter[0]
        )
        assert old.shard("org0").apply(tx).applied
        old._composite_cache = None
        report = _composite_report(
            old.scope,
            old.shard_map,
            {n: s.instance for n, s in old._shards.items()},
            old.composite_instance,
        )
        assert report.is_legal

    try:
        txlog_before = _txlog_size(str(tmp_path / "new"))
        new_time = _median(fast_path)
        old_time = _median(pr5_sequence)
        # The fast path must not touch the coordinator log at all: a
        # rejected or committed single-shard transaction has exactly
        # PR 5's durable footprint.
        assert _txlog_size(str(tmp_path / "new")) == txlog_before
        ratio = new_time / max(old_time, 1e-9)
        print_series(
            "2PC: single-shard fast path vs PR 5 sequence",
            [
                ("pr5 commit+check", f"{old_time * 1e3:.2f}ms"),
                ("fast path", f"{new_time * 1e3:.2f}ms"),
                (f"ratio={ratio:.2f}x ({CPUS} cpus, "
                 f"gate {'armed' if GATE_ARMED else 'recorded only'})",),
            ],
        )
        benchmark.extra_info["cpus"] = CPUS
        benchmark.extra_info["ratio"] = round(ratio, 3)
        if GATE_ARMED:
            assert ratio < 1.10, (
                "the single-shard fast path must stay within 10% of the "
                f"PR 5 commit-then-compensate sequence: {ratio:.2f}x"
            )
        benchmark(fast_path)
    finally:
        new.close()
        old.close()


def test_spanning_2pc_commit_overhead(benchmark, tmp_path):
    """A two-shard 2PC commit vs a single-shard commit of the same
    operation count — the price of atomicity across the cut
    (recorded, never gated)."""
    store = _build(tmp_path, "span")
    counter = [0]

    def single_shard():
        counter[0] += 1
        tx = random_transaction(
            store.shard("org0").instance, inserts=2, seed=counter[0]
        )
        assert store.apply(tx).applied

    def spanning():
        counter[0] += 1
        tx = UpdateTransaction()
        for name in ("org0", "org1"):
            part = random_transaction(
                store.shard(name).instance, inserts=1,
                seed=20_000 + counter[0],
            )
            tx.operations.extend(part.operations)
        outcome = store.apply(tx)
        assert outcome.applied
        assert any("2pc: committed" in check for check in outcome.checks)

    try:
        single_time = _median(single_shard)
        spanning_time = _median(spanning)
        ratio = spanning_time / max(single_time, 1e-9)
        print_series(
            "2PC: spanning commit vs single-shard commit (2 ops each)",
            [
                ("single-shard", f"{single_time * 1e3:.2f}ms"),
                ("spanning 2pc", f"{spanning_time * 1e3:.2f}ms"),
                (f"ratio={ratio:.2f}x (recorded only)",),
            ],
        )
        benchmark.extra_info["ratio"] = round(ratio, 3)
        benchmark(spanning)
    finally:
        store.close()
